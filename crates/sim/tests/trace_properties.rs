//! Property-based tests over execution traces: every trace the virtual
//! executor produces must satisfy the structural invariants of the
//! execution model, for any strategy and any stochastic environment.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{Environment, LatencyDistribution, MsModel, VirtualExecutor};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::{MsId, Strategy};

fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut ChaCha8Rng::seed_from_u64(seed))
}

fn random_env(m: usize, seed: u64, variable_latency: bool) -> Environment {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Environment::new(
        (0..m)
            .map(|i| {
                let mean = rng.gen_range(5.0..200.0);
                let latency = if variable_latency {
                    LatencyDistribution::Uniform {
                        min: mean * 0.5,
                        max: mean * 1.5,
                    }
                } else {
                    LatencyDistribution::Constant(mean)
                };
                MsModel::new(
                    MsId(i),
                    rng.gen_range(0.0..=1.0),
                    latency,
                    rng.gen_range(1.0..100.0),
                )
                .expect("valid")
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Core trace invariants, checked on every execution:
    /// * success ⇔ some started record succeeded;
    /// * latency = earliest success end (on success) / last end (on failure);
    /// * cost = Σ costs of started records;
    /// * records respect `start + sampled latency = end` ordering;
    /// * cancelled ⇒ started and still running at the finish time.
    #[test]
    fn trace_invariants(
        m in 1usize..6,
        s_seed in any::<u64>(),
        e_seed in any::<u64>(),
        x_seed in any::<u64>(),
        variable in any::<bool>(),
    ) {
        let strategy = sampled_strategy(m, s_seed);
        let env = random_env(m, e_seed, variable);
        let exec = VirtualExecutor::new();
        let mut rng = ChaCha8Rng::seed_from_u64(x_seed);
        let trace = exec.execute(&strategy, &env, &mut rng).unwrap();

        // 1. Success consistency.
        let any_success = trace.records.iter().any(|r| r.succeeded);
        prop_assert_eq!(trace.success, any_success);

        // 2. Latency consistency.
        if trace.success {
            let earliest_success = trace
                .records
                .iter()
                .filter(|r| r.succeeded)
                .map(|r| r.end)
                .fold(f64::INFINITY, f64::min);
            prop_assert!((trace.latency - earliest_success).abs() < 1e-9);
        } else {
            let last_end = trace
                .records
                .iter()
                .map(|r| r.end)
                .fold(0.0f64, f64::max);
            prop_assert!((trace.latency - last_end).abs() < 1e-9);
        }

        // 3. Cost = sum of started costs.
        let expected_cost: f64 = trace
            .records
            .iter()
            .filter(|r| r.started)
            .map(|r| env.get(r.ms).unwrap().cost)
            .sum();
        prop_assert!((trace.cost - expected_cost).abs() < 1e-9);

        // 4. Structural record sanity.
        for r in &trace.records {
            prop_assert!(r.start >= 0.0);
            prop_assert!(r.end >= r.start);
            if r.succeeded {
                prop_assert!(r.started, "success implies started");
                prop_assert!(r.end <= trace.latency + 1e-9);
            }
            if r.cancelled {
                prop_assert!(r.started);
                prop_assert!(trace.success, "cancellation implies a winner");
                prop_assert!(r.end > trace.latency - 1e-9);
            }
            if !r.started {
                prop_assert!(trace.success, "everything starts unless someone won");
                prop_assert!(r.start >= trace.latency - 1e-9);
                prop_assert!(!r.succeeded && !r.cancelled);
            }
        }

        // 5. No duplicate microservices in the schedule.
        let mut ids: Vec<usize> = trace.records.iter().map(|r| r.ms.index()).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), n);
    }

    /// With every reliability at 1.0, the fastest path always wins and
    /// nothing is cancelled in a pure fail-over chain.
    #[test]
    fn perfect_reliability_failover_runs_one_ms(m in 1usize..6, seed in any::<u64>()) {
        let env = Environment::from_triples(
            &(0..m).map(|i| (1.0, 10.0 * (i + 1) as f64, 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        let strategy = qce_strategy::enumerate::failover(&ids).unwrap();
        let exec = VirtualExecutor::new();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let trace = exec.execute(&strategy, &env, &mut rng).unwrap();
        prop_assert!(trace.success);
        prop_assert_eq!(trace.records.len(), 1, "head succeeds, tail never scheduled");
        prop_assert!((trace.cost - 1.0).abs() < 1e-9);
    }

    /// With every reliability at 0.0, everything runs, everything is
    /// charged, nothing is cancelled.
    #[test]
    fn zero_reliability_runs_everything(m in 1usize..6, s_seed in any::<u64>(), x_seed in any::<u64>()) {
        let env = Environment::from_triples(
            &(0..m).map(|i| (2.0, 10.0 * (i + 1) as f64, 0.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let strategy = sampled_strategy(m, s_seed);
        let exec = VirtualExecutor::new();
        let mut rng = ChaCha8Rng::seed_from_u64(x_seed);
        let trace = exec.execute(&strategy, &env, &mut rng).unwrap();
        prop_assert!(!trace.success);
        prop_assert_eq!(trace.records.len(), m);
        prop_assert!((trace.cost - 2.0 * m as f64).abs() < 1e-9);
        prop_assert!(trace.records.iter().all(|r| r.started && !r.cancelled));
    }

    /// The free-preemption ablation never charges more than Assumption 2.
    #[test]
    fn free_preemption_is_never_dearer(
        m in 1usize..6,
        s_seed in any::<u64>(),
        e_seed in any::<u64>(),
        x_seed in any::<u64>(),
    ) {
        let strategy = sampled_strategy(m, s_seed);
        let env = random_env(m, e_seed, false);
        let mut rng_a = ChaCha8Rng::seed_from_u64(x_seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(x_seed);
        let charged = VirtualExecutor::new().execute(&strategy, &env, &mut rng_a).unwrap();
        let free = VirtualExecutor::without_cancellation_charges()
            .execute(&strategy, &env, &mut rng_b)
            .unwrap();
        prop_assert!(free.cost <= charged.cost + 1e-9);
        // Same RNG stream ⇒ identical outcomes apart from the cost rule.
        prop_assert_eq!(free.success, charged.success);
        prop_assert!((free.latency - charged.latency).abs() < 1e-9);
    }
}

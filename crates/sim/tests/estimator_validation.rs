//! Integration test reproducing the paper's estimation-correctness
//! experiment (Section V.A.2) at test scale: random strategies, executed
//! repeatedly in virtual time, must measure to within a small relative
//! error of the Algorithm 1 estimate.
//!
//! The paper runs 100 strategies × 300 executions and reports < 1% error;
//! here we run fewer strategies with more executions per strategy (virtual
//! time is free) and a tolerance that accounts for Monte-Carlo noise. The
//! full-scale run lives in the `qce-bench` repro harness.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{relative_error_pct, simulate, Environment, RandomEnvConfig, VirtualExecutor};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::estimate::{estimate, estimate_folding};
use qce_strategy::{MsId, Strategy};

fn random_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut ChaCha8Rng::seed_from_u64(seed))
}

fn random_environment(m: usize, seed: u64) -> Environment {
    RandomEnvConfig {
        microservices: m,
        avg_cost: 70.0,
        avg_latency: 70.0,
        avg_reliability_pct: 70.0,
        delta: 50.0,
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1's cost and latency estimates match the virtual-time
    /// measurement within Monte-Carlo tolerance for random strategies over
    /// random environments.
    #[test]
    fn estimates_match_measurement(m in 2usize..6, s_seed in any::<u64>(), e_seed in any::<u64>()) {
        let strategy = random_strategy(m, s_seed);
        let env = random_environment(m, e_seed);
        let est = estimate(&strategy, &env.mean_qos_table()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(s_seed ^ e_seed);
        let stats = simulate(&strategy, &env, 20_000, &mut rng).unwrap();
        prop_assert!(
            relative_error_pct(stats.mean_latency, est.latency) < 3.0,
            "{strategy}: measured latency {} vs estimated {}",
            stats.mean_latency,
            est.latency
        );
        prop_assert!(
            relative_error_pct(stats.mean_cost, est.cost) < 3.0,
            "{strategy}: measured cost {} vs estimated {}",
            stats.mean_cost,
            est.cost
        );
        prop_assert!(
            (stats.success_rate - est.reliability.value()).abs() < 0.02,
            "{strategy}: measured reliability {} vs estimated {}",
            stats.success_rate,
            est.reliability.value()
        );
    }
}

/// The paper's own Section III.C.3 example, at the paper's scale (300
/// executions averaged over many batches): `a*b*c` measures ≈ 69.4, not
/// the folding method's 73.6.
#[test]
fn section_3c3_example_at_scale() {
    let env =
        Environment::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)]).unwrap();
    let s = Strategy::parse("a*b*c").unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(2020);
    let stats = simulate(&s, &env, 60_000, &mut rng).unwrap();
    assert!(
        (stats.mean_latency - 69.4).abs() < 0.7,
        "measured {}",
        stats.mean_latency
    );
    // The folding baseline is measurably wrong on this example.
    let folded = estimate_folding(&s, &env.mean_qos_table()).unwrap();
    assert!((folded.latency - 73.6).abs() < 1e-9);
    assert!(
        (stats.mean_latency - folded.latency).abs() > 2.0,
        "folding should disagree with the measurement"
    );
}

/// Every one of the 19 strategies over 3 microservices measures to its
/// estimate — exhaustive version of the property test above.
#[test]
fn all_f3_strategies_validate() {
    let env =
        Environment::from_triples(&[(50.0, 40.0, 0.3), (80.0, 90.0, 0.8), (20.0, 25.0, 0.55)])
            .unwrap();
    let table = env.mean_qos_table();
    let ids: Vec<MsId> = (0..3).map(MsId).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for strategy in qce_strategy::enumerate::enumerate_full(&ids) {
        let est = estimate(&strategy, &table).unwrap();
        let stats = simulate(&strategy, &env, 20_000, &mut rng).unwrap();
        assert!(
            relative_error_pct(stats.mean_latency, est.latency) < 3.0,
            "{strategy}: latency {} vs {}",
            stats.mean_latency,
            est.latency
        );
        assert!(
            relative_error_pct(stats.mean_cost, est.cost) < 3.0,
            "{strategy}: cost {} vs {}",
            stats.mean_cost,
            est.cost
        );
    }
}

/// With non-constant latency distributions, Algorithm 1 (which consumes
/// means) remains close for parallel-free strategies and bounded for
/// parallel ones — documents the mean-latency approximation explicitly.
#[test]
fn variable_latency_failover_still_matches() {
    use qce_sim::LatencyDistribution;
    use qce_sim::MsModel;
    let env = Environment::new(vec![
        MsModel::new(
            MsId(0),
            0.5,
            LatencyDistribution::Uniform {
                min: 20.0,
                max: 60.0,
            },
            10.0,
        )
        .unwrap(),
        MsModel::new(
            MsId(1),
            0.7,
            LatencyDistribution::Normal {
                mean: 50.0,
                std_dev: 5.0,
            },
            20.0,
        )
        .unwrap(),
    ]);
    let s = Strategy::parse("a-b").unwrap();
    let est = estimate(&s, &env.mean_qos_table()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let stats = simulate(&s, &env, 40_000, &mut rng).unwrap();
    // Fail-over latency is linear in the per-ms latencies, so the estimate
    // from means is exact up to sampling noise.
    assert!(relative_error_pct(stats.mean_latency, est.latency) < 2.0);
    assert!(relative_error_pct(stats.mean_cost, est.cost) < 2.0);
}

/// Drift scenario: after the scheduled reliability drop, measured
/// reliability of the strategy falls accordingly — and recovers.
#[test]
fn dynamic_environment_shifts_measurements() {
    use qce_sim::{ChangeKind, DynamicEnvironment, QosChange};
    let base =
        Environment::from_triples(&[(50.0, 30.0, 0.7), (50.0, 60.0, 0.7), (50.0, 80.0, 0.7)])
            .unwrap();
    let mut dyn_env = DynamicEnvironment::new(
        base,
        vec![
            QosChange {
                after_executions: 230,
                ms: MsId(0),
                change: ChangeKind::SetReliability(0.2),
            },
            QosChange {
                after_executions: 430,
                ms: MsId(0),
                change: ChangeKind::SetReliability(0.7),
            },
        ],
    );
    let s = Strategy::parse("a").unwrap();
    let exec = VirtualExecutor::new();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut slot_rates = Vec::new();
    for _slot in 0..6 {
        let mut ok = 0u32;
        for _ in 0..100 {
            let trace = exec.execute(&s, dyn_env.current(), &mut rng).unwrap();
            if trace.success {
                ok += 1;
            }
            dyn_env.record_execution();
        }
        slot_rates.push(f64::from(ok) / 100.0);
    }
    // Slots 0–1 healthy (~0.7), slots 2–3 degraded (~0.2), slot 4+ recovered.
    assert!(
        slot_rates[0] > 0.55 && slot_rates[1] > 0.55,
        "{slot_rates:?}"
    );
    assert!(
        slot_rates[2] < 0.35 && slot_rates[3] < 0.35,
        "{slot_rates:?}"
    );
    assert!(slot_rates[5] > 0.55, "{slot_rates:?}");
}

//! Device models: the unreliable, dynamic resource providers of edge
//! environments (paper Section II).
//!
//! Edge resources come from mobile devices whose owners walk away, from
//! energy-harvesting devices that duty-cycle with their power income, and
//! from the occasional wall-powered edge server. A [`Device`] modulates the
//! QoS of the microservices it hosts: availability gates reliability, and
//! the device's compute class scales latency.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qce_strategy::{MsId, QosError};

use crate::environment::Environment;
use crate::microservice::{LatencyDistribution, MsModel};

/// Hardware class of an edge device, with a latency scaling factor relative
/// to a desktop-class machine (the paper's testbed spans an i7 gateway, two
/// i5 desktops, and a Raspberry Pi 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DeviceKind {
    /// Rack or small-scale data-center hardware at the edge.
    EdgeServer,
    /// Desktop-class machine (ThinkCentre M92p/M900 in the paper).
    Desktop,
    /// Single-board computer (Raspberry Pi 3 in the paper).
    RaspberryPi,
    /// A bystander's phone contributing cycles.
    Mobile,
    /// Solar/kinetic/RF-powered device that computes intermittently.
    EnergyHarvesting,
}

impl DeviceKind {
    /// Latency multiplier relative to [`DeviceKind::Desktop`].
    ///
    /// These are coarse calibration constants: the paper's motivating
    /// example contrasts "high-performance edge servers" with "a
    /// solar-powered Raspberry Pi with much lower computational power".
    #[must_use]
    pub fn latency_factor(self) -> f64 {
        match self {
            DeviceKind::EdgeServer => 0.5,
            DeviceKind::Desktop => 1.0,
            DeviceKind::RaspberryPi => 4.0,
            DeviceKind::Mobile => 2.0,
            DeviceKind::EnergyHarvesting => 6.0,
        }
    }
}

/// Per-invocation availability model of a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Availability {
    /// Always reachable (wall-powered, stationary).
    AlwaysOn,
    /// Deterministic duty cycle in invocation counts: available for `on`
    /// invocations, then unavailable for `off`, repeating. Models
    /// energy-harvesting accumulation/discharge.
    DutyCycle {
        /// Invocations served per cycle.
        on: u64,
        /// Invocations missed per cycle while recharging.
        off: u64,
    },
    /// Independently available with this probability at each invocation.
    /// Models mobile devices drifting in and out of range.
    Probabilistic {
        /// Probability the device is reachable for a given invocation.
        up: f64,
    },
}

impl Availability {
    /// Whether the device is reachable for invocation number `invocation`
    /// (0-based).
    pub fn is_available<R: Rng + ?Sized>(&self, invocation: u64, rng: &mut R) -> bool {
        match *self {
            Availability::AlwaysOn => true,
            Availability::DutyCycle { on, off } => {
                if on == 0 {
                    return false;
                }
                if off == 0 {
                    return true;
                }
                invocation % (on + off) < on
            }
            Availability::Probabilistic { up } => rng.gen_bool(up.clamp(0.0, 1.0)),
        }
    }

    /// Long-run fraction of invocations for which the device is available.
    #[must_use]
    pub fn duty_factor(&self) -> f64 {
        match *self {
            Availability::AlwaysOn => 1.0,
            Availability::DutyCycle { on, off } => {
                if on == 0 {
                    0.0
                } else {
                    on as f64 / (on + off) as f64
                }
            }
            Availability::Probabilistic { up } => up.clamp(0.0, 1.0),
        }
    }
}

/// An edge device that can host microservices.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Human-readable name (e.g. `"raspberry-pi-kitchen"`).
    pub name: String,
    /// Hardware class.
    pub kind: DeviceKind,
    /// Availability model.
    pub availability: Availability,
}

impl Device {
    /// Creates a device.
    #[must_use]
    pub fn new(name: impl Into<String>, kind: DeviceKind, availability: Availability) -> Self {
        Device {
            name: name.into(),
            kind,
            availability,
        }
    }

    /// The *effective* model of a microservice hosted on this device:
    /// latency is scaled by the device's compute class and reliability is
    /// multiplied by the long-run availability.
    ///
    /// This is how dissimilar environments (paper Fig. 1) are synthesized:
    /// the same microservice binary exhibits different QoS depending on
    /// which device provides it.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if the scaled parameters leave their domains
    /// (cannot happen for valid inputs).
    ///
    /// # Examples
    ///
    /// ```
    /// use qce_sim::{Availability, Device, DeviceKind, LatencyDistribution, MsModel};
    /// use qce_strategy::MsId;
    ///
    /// let base = MsModel::new(MsId(0), 0.9, LatencyDistribution::Constant(100.0), 10.0)?;
    /// let pi = Device::new("pi", DeviceKind::RaspberryPi, Availability::DutyCycle { on: 3, off: 1 });
    /// let hosted = pi.host(&base)?;
    /// assert_eq!(hosted.latency.mean(), 400.0); // 4× slower
    /// assert!((hosted.reliability.value() - 0.675).abs() < 1e-9); // 0.9 × 0.75
    /// # Ok::<(), qce_strategy::QosError>(())
    /// ```
    pub fn host(&self, base: &MsModel) -> Result<MsModel, QosError> {
        let factor = self.kind.latency_factor();
        let latency = scale_latency(base.latency, factor);
        MsModel::new(
            base.id,
            base.reliability.value() * self.availability.duty_factor(),
            latency,
            base.cost,
        )
    }
}

fn scale_latency(dist: LatencyDistribution, factor: f64) -> LatencyDistribution {
    match dist {
        LatencyDistribution::Constant(v) => LatencyDistribution::Constant(v * factor),
        LatencyDistribution::Uniform { min, max } => LatencyDistribution::Uniform {
            min: min * factor,
            max: max * factor,
        },
        LatencyDistribution::Normal { mean, std_dev } => LatencyDistribution::Normal {
            mean: mean * factor,
            std_dev: std_dev * factor,
        },
        LatencyDistribution::Exponential { mean } => LatencyDistribution::Exponential {
            mean: mean * factor,
        },
    }
}

/// Builds an environment by hosting each `(device, base model)` pair — a
/// convenient way to materialize the paper's "dissimilar edge environments"
/// from one shared set of microservice definitions.
///
/// Models must be supplied in [`MsId`] order starting at 0.
///
/// # Errors
///
/// Returns a [`QosError`] if any hosted model leaves its QoS domain.
///
/// # Panics
///
/// Panics if model ids are not `0..n` in order.
pub fn environment_from_placements(
    placements: &[(Device, MsModel)],
) -> Result<Environment, QosError> {
    let models = placements
        .iter()
        .enumerate()
        .map(|(i, (device, base))| {
            assert_eq!(base.id, MsId(i), "models must be in MsId order");
            device.host(base)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Environment::new(models))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn latency_factors_ordered_by_capability() {
        assert!(DeviceKind::EdgeServer.latency_factor() < DeviceKind::Desktop.latency_factor());
        assert!(DeviceKind::Desktop.latency_factor() < DeviceKind::Mobile.latency_factor());
        assert!(DeviceKind::Mobile.latency_factor() < DeviceKind::RaspberryPi.latency_factor());
        assert!(
            DeviceKind::RaspberryPi.latency_factor()
                < DeviceKind::EnergyHarvesting.latency_factor()
        );
    }

    #[test]
    fn always_on_availability() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(Availability::AlwaysOn.is_available(0, &mut rng));
        assert_eq!(Availability::AlwaysOn.duty_factor(), 1.0);
    }

    #[test]
    fn duty_cycle_pattern() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = Availability::DutyCycle { on: 2, off: 1 };
        let pattern: Vec<bool> = (0..6).map(|i| a.is_available(i, &mut rng)).collect();
        assert_eq!(pattern, vec![true, true, false, true, true, false]);
        assert!((a.duty_factor() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_duty_cycles() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let never = Availability::DutyCycle { on: 0, off: 5 };
        assert!(!never.is_available(0, &mut rng));
        assert_eq!(never.duty_factor(), 0.0);
        let always = Availability::DutyCycle { on: 5, off: 0 };
        assert!(always.is_available(123, &mut rng));
        assert_eq!(always.duty_factor(), 1.0);
    }

    #[test]
    fn probabilistic_availability_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = Availability::Probabilistic { up: 0.3 };
        let n = 20_000u64;
        let up = (0..n).filter(|&i| a.is_available(i, &mut rng)).count();
        let rate = up as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        assert_eq!(a.duty_factor(), 0.3);
    }

    #[test]
    fn hosting_scales_latency_and_reliability() {
        let base = MsModel::new(
            MsId(0),
            0.8,
            LatencyDistribution::Uniform {
                min: 10.0,
                max: 20.0,
            },
            5.0,
        )
        .unwrap();
        let server = Device::new("rack", DeviceKind::EdgeServer, Availability::AlwaysOn);
        let hosted = server.host(&base).unwrap();
        assert_eq!(hosted.latency.mean(), 7.5);
        assert_eq!(hosted.reliability.value(), 0.8);

        let phone = Device::new(
            "phone",
            DeviceKind::Mobile,
            Availability::Probabilistic { up: 0.5 },
        );
        let hosted = phone.host(&base).unwrap();
        assert_eq!(hosted.latency.mean(), 30.0);
        assert!((hosted.reliability.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn scaling_covers_every_distribution() {
        for dist in [
            LatencyDistribution::Constant(10.0),
            LatencyDistribution::Uniform {
                min: 5.0,
                max: 15.0,
            },
            LatencyDistribution::Normal {
                mean: 10.0,
                std_dev: 2.0,
            },
            LatencyDistribution::Exponential { mean: 10.0 },
        ] {
            let scaled = scale_latency(dist, 3.0);
            assert!((scaled.mean() - dist.mean() * 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn placements_build_an_environment() {
        let placements = vec![
            (
                Device::new("rack", DeviceKind::EdgeServer, Availability::AlwaysOn),
                MsModel::new(MsId(0), 0.9, LatencyDistribution::Constant(100.0), 10.0).unwrap(),
            ),
            (
                Device::new(
                    "pi",
                    DeviceKind::RaspberryPi,
                    Availability::DutyCycle { on: 1, off: 1 },
                ),
                MsModel::new(MsId(1), 0.8, LatencyDistribution::Constant(100.0), 10.0).unwrap(),
            ),
        ];
        let env = environment_from_placements(&placements).unwrap();
        assert_eq!(env.len(), 2);
        assert_eq!(env.get(MsId(0)).unwrap().latency.mean(), 50.0);
        assert_eq!(env.get(MsId(1)).unwrap().latency.mean(), 400.0);
        assert!((env.get(MsId(1)).unwrap().reliability.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "MsId order")]
    fn out_of_order_placements_panic() {
        let placements = vec![(
            Device::new("rack", DeviceKind::EdgeServer, Availability::AlwaysOn),
            MsModel::new(MsId(3), 0.9, LatencyDistribution::Constant(1.0), 1.0).unwrap(),
        )];
        let _ = environment_from_placements(&placements);
    }
}

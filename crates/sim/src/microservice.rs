//! Stochastic models of individual edge microservices.
//!
//! A [`MsModel`] describes how one microservice behaves in a particular
//! edge environment: the probability that an invocation succeeds, how long
//! it takes (a latency *distribution*, not just a mean), and what it costs.
//! Per the paper's Assumption 2, cost is charged in full the moment an
//! invocation starts.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qce_strategy::{MsId, Qos, QosError, Reliability};

/// A latency distribution sampled once per invocation.
///
/// The paper's simulation imitates latency with fixed `system.sleep`
/// durations, i.e. [`LatencyDistribution::Constant`]; the other variants
/// model the jitter of real edge devices and power the estimator-robustness
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyDistribution {
    /// Always exactly this latency.
    Constant(f64),
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest possible latency.
        min: f64,
        /// Largest possible latency.
        max: f64,
    },
    /// Normal with the given mean and standard deviation, truncated at 0.
    Normal {
        /// Mean latency.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean latency (`1/λ`).
        mean: f64,
    },
}

impl LatencyDistribution {
    /// The distribution's mean — what the QoS collector would converge to
    /// and what Algorithm 1 consumes.
    ///
    /// ```
    /// use qce_sim::LatencyDistribution;
    /// assert_eq!(LatencyDistribution::Uniform { min: 40.0, max: 60.0 }.mean(), 50.0);
    /// assert_eq!(LatencyDistribution::Constant(75.0).mean(), 75.0);
    /// ```
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyDistribution::Constant(v) => v,
            LatencyDistribution::Uniform { min, max } => (min + max) / 2.0,
            LatencyDistribution::Normal { mean, .. }
            | LatencyDistribution::Exponential { mean } => mean,
        }
    }

    /// Draws one latency sample (always ≥ 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let v = match *self {
            LatencyDistribution::Constant(v) => v,
            LatencyDistribution::Uniform { min, max } => {
                if min == max {
                    min
                } else {
                    rng.gen_range(min..max)
                }
            }
            LatencyDistribution::Normal { mean, std_dev } => {
                // Box–Muller transform; avoids pulling in rand_distr.
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std_dev * z
            }
            LatencyDistribution::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
        };
        v.max(0.0)
    }

    /// Validates the distribution parameters.
    ///
    /// # Errors
    ///
    /// Returns [`QosError::InvalidLatency`] when any parameter is negative,
    /// non-finite, or (for uniform) `min > max`.
    pub fn validate(&self) -> Result<(), QosError> {
        let ok = match *self {
            LatencyDistribution::Constant(v) => v.is_finite() && v >= 0.0,
            LatencyDistribution::Uniform { min, max } => {
                min.is_finite() && max.is_finite() && 0.0 <= min && min <= max
            }
            LatencyDistribution::Normal { mean, std_dev } => {
                mean.is_finite() && std_dev.is_finite() && mean >= 0.0 && std_dev >= 0.0
            }
            LatencyDistribution::Exponential { mean } => mean.is_finite() && mean >= 0.0,
        };
        if ok {
            Ok(())
        } else {
            Err(QosError::InvalidLatency(self.mean()))
        }
    }
}

/// Stochastic model of one microservice in one environment.
///
/// # Examples
///
/// ```
/// use qce_sim::{LatencyDistribution, MsModel};
/// use qce_strategy::MsId;
///
/// let model = MsModel::new(
///     MsId(0),
///     0.7,
///     LatencyDistribution::Constant(950.0),
///     50.0,
/// )?;
/// assert_eq!(model.mean_qos().latency, 950.0);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsModel {
    /// Which microservice this models.
    pub id: MsId,
    /// Probability that an invocation succeeds.
    pub reliability: Reliability,
    /// Latency distribution of an invocation (success or failure).
    pub latency: LatencyDistribution,
    /// Cost charged per started invocation (Assumption 2).
    pub cost: f64,
}

impl MsModel {
    /// Creates a model, validating every parameter.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if `reliability` is outside `[0, 1]`, the
    /// latency distribution is malformed, or `cost` is negative.
    pub fn new(
        id: MsId,
        reliability: f64,
        latency: LatencyDistribution,
        cost: f64,
    ) -> Result<Self, QosError> {
        latency.validate()?;
        if !cost.is_finite() || cost < 0.0 {
            return Err(QosError::InvalidCost(cost));
        }
        Ok(MsModel {
            id,
            reliability: Reliability::new(reliability)?,
            latency,
            cost,
        })
    }

    /// The average QoS this model exhibits — the values an ideal collector
    /// would report and Algorithm 1 would consume.
    #[must_use]
    pub fn mean_qos(&self) -> Qos {
        Qos {
            cost: self.cost,
            latency: self.latency.mean(),
            reliability: self.reliability,
        }
    }

    /// Samples one invocation: `(succeeded, latency)`.
    pub fn sample_invocation<R: Rng + ?Sized>(&self, rng: &mut R) -> (bool, f64) {
        let success = rng.gen_bool(self.reliability.value());
        let latency = self.latency.sample(rng);
        (success, latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn distribution_means() {
        assert_eq!(LatencyDistribution::Constant(5.0).mean(), 5.0);
        assert_eq!(
            LatencyDistribution::Uniform {
                min: 0.0,
                max: 10.0
            }
            .mean(),
            5.0
        );
        assert_eq!(
            LatencyDistribution::Normal {
                mean: 7.0,
                std_dev: 2.0
            }
            .mean(),
            7.0
        );
        assert_eq!(LatencyDistribution::Exponential { mean: 3.0 }.mean(), 3.0);
    }

    #[test]
    fn distribution_validation() {
        assert!(LatencyDistribution::Constant(-1.0).validate().is_err());
        assert!(LatencyDistribution::Uniform { min: 5.0, max: 1.0 }
            .validate()
            .is_err());
        assert!(LatencyDistribution::Uniform { min: 1.0, max: 5.0 }
            .validate()
            .is_ok());
        assert!(LatencyDistribution::Normal {
            mean: 1.0,
            std_dev: -1.0
        }
        .validate()
        .is_err());
        assert!(LatencyDistribution::Exponential { mean: f64::NAN }
            .validate()
            .is_err());
    }

    #[test]
    fn constant_sampling_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = LatencyDistribution::Constant(42.0);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 42.0);
        }
    }

    #[test]
    fn uniform_sampling_within_bounds_and_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = LatencyDistribution::Uniform {
            min: 10.0,
            max: 20.0,
        };
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 15.0).abs() < 0.2);
    }

    #[test]
    fn degenerate_uniform_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = LatencyDistribution::Uniform { min: 5.0, max: 5.0 };
        assert_eq!(d.sample(&mut rng), 5.0);
    }

    #[test]
    fn normal_sampling_converges_and_clamps() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d = LatencyDistribution::Normal {
            mean: 50.0,
            std_dev: 10.0,
        };
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!(v >= 0.0);
            sum += v;
        }
        assert!((sum / f64::from(n) - 50.0).abs() < 0.5);
    }

    #[test]
    fn exponential_sampling_converges() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let d = LatencyDistribution::Exponential { mean: 30.0 };
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        assert!((sum / f64::from(n) - 30.0).abs() < 1.0);
    }

    #[test]
    fn model_validation() {
        let d = LatencyDistribution::Constant(1.0);
        assert!(MsModel::new(MsId(0), 0.5, d, 10.0).is_ok());
        assert!(MsModel::new(MsId(0), 1.5, d, 10.0).is_err());
        assert!(MsModel::new(MsId(0), 0.5, d, -1.0).is_err());
        assert!(MsModel::new(MsId(0), 0.5, LatencyDistribution::Constant(-2.0), 1.0).is_err());
    }

    #[test]
    fn invocation_success_rate_converges() {
        let model = MsModel::new(MsId(0), 0.7, LatencyDistribution::Constant(1.0), 5.0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 20_000;
        let successes = (0..n)
            .filter(|_| model.sample_invocation(&mut rng).0)
            .count();
        let rate = successes as f64 / f64::from(n);
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_qos_mirrors_model() {
        let model = MsModel::new(
            MsId(3),
            0.6,
            LatencyDistribution::Uniform {
                min: 40.0,
                max: 60.0,
            },
            25.0,
        )
        .unwrap();
        let qos = model.mean_qos();
        assert_eq!(qos.cost, 25.0);
        assert_eq!(qos.latency, 50.0);
        assert_eq!(qos.reliability.value(), 0.6);
    }

    #[test]
    fn serde_round_trip() {
        let model = MsModel::new(
            MsId(1),
            0.8,
            LatencyDistribution::Normal {
                mean: 10.0,
                std_dev: 1.0,
            },
            2.0,
        )
        .unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: MsModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
    }
}

//! Monte-Carlo measurement of strategy QoS, used to validate the analytic
//! estimator (paper Section V.A.2: 100 random strategies × 300 executions,
//! estimation error below 1%).

use rand::Rng;
use serde::{Deserialize, Serialize};

use qce_strategy::{EstimateError, Qos, Strategy};

use crate::environment::Environment;
use crate::exec::VirtualExecutor;

/// Aggregate statistics over repeated simulated executions of one strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McStats {
    /// Number of executions.
    pub runs: u32,
    /// Fraction of executions that succeeded (measured reliability).
    pub success_rate: f64,
    /// Mean completion time across all executions.
    pub mean_latency: f64,
    /// Mean charged cost across all executions.
    pub mean_cost: f64,
    /// Sample standard deviation of the completion time.
    pub std_latency: f64,
    /// Sample standard deviation of the charged cost.
    pub std_cost: f64,
}

impl McStats {
    /// The measured QoS triple (means), comparable to an Algorithm 1
    /// estimate.
    ///
    /// # Panics
    ///
    /// Panics if the measured values fall outside their domains, which
    /// cannot happen for stats produced by [`simulate`].
    #[must_use]
    pub fn as_qos(&self) -> Qos {
        Qos::new(self.mean_cost, self.mean_latency, self.success_rate)
            .expect("measured statistics are in domain")
    }

    /// Standard error of the mean latency.
    #[must_use]
    pub fn sem_latency(&self) -> f64 {
        self.std_latency / f64::from(self.runs).sqrt()
    }
}

/// Runs `strategy` `runs` times against `env` in virtual time and
/// aggregates the outcomes.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
///
/// # Examples
///
/// The paper's Section III.C.3 example: `a*b*c` with latencies
/// `(10, 90, 70)` and reliabilities `(10%, 90%, 70%)` measures ≈ 69.4 —
/// matching Algorithm 1 and refuting the folding estimate of 73.6:
///
/// ```
/// use qce_sim::{simulate, Environment};
/// use qce_strategy::Strategy;
/// use rand::SeedableRng;
///
/// let env = Environment::from_triples(&[
///     (1.0, 10.0, 0.1),
///     (1.0, 90.0, 0.9),
///     (1.0, 70.0, 0.7),
/// ])?;
/// let s = Strategy::parse("a*b*c")?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let stats = simulate(&s, &env, 30_000, &mut rng)?;
/// assert!((stats.mean_latency - 69.4).abs() < 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate<R: Rng + ?Sized>(
    strategy: &Strategy,
    env: &Environment,
    runs: u32,
    rng: &mut R,
) -> Result<McStats, EstimateError> {
    simulate_with(&VirtualExecutor::new(), strategy, env, runs, rng)
}

/// Like [`simulate`] but with a caller-provided executor (e.g. the
/// no-cancellation-charge ablation).
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn simulate_with<R: Rng + ?Sized>(
    executor: &VirtualExecutor,
    strategy: &Strategy,
    env: &Environment,
    runs: u32,
    rng: &mut R,
) -> Result<McStats, EstimateError> {
    assert!(runs > 0, "at least one run is required");
    let mut latencies = Vec::with_capacity(runs as usize);
    let mut costs = Vec::with_capacity(runs as usize);
    let mut successes = 0u32;
    for _ in 0..runs {
        let trace = executor.execute(strategy, env, rng)?;
        if trace.success {
            successes += 1;
        }
        latencies.push(trace.latency);
        costs.push(trace.cost);
    }
    let (mean_latency, std_latency) = mean_std(&latencies);
    let (mean_cost, std_cost) = mean_std(&costs);
    Ok(McStats {
        runs,
        success_rate: f64::from(successes) / f64::from(runs),
        mean_latency,
        mean_cost,
        std_latency,
        std_cost,
    })
}

/// Relative error (in percent) between a measured mean and an estimate,
/// `|measured − estimated| / estimated × 100`.
///
/// The paper reports this below 1% for all validated strategies.
#[must_use]
pub fn relative_error_pct(measured: f64, estimated: f64) -> f64 {
    if estimated == 0.0 {
        if measured == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((measured - estimated) / estimated).abs() * 100.0
    }
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_strategy::estimate::estimate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env_3c3() -> Environment {
        Environment::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)]).unwrap()
    }

    #[test]
    fn paper_worked_example_measures_to_estimate() {
        let env = env_3c3();
        let s = Strategy::parse("a*b*c").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let stats = simulate(&s, &env, 50_000, &mut rng).unwrap();
        let est = estimate(&s, &env.mean_qos_table()).unwrap();
        assert!(
            relative_error_pct(stats.mean_latency, est.latency) < 1.0,
            "measured {} vs estimated {}",
            stats.mean_latency,
            est.latency
        );
        assert!(relative_error_pct(stats.mean_cost, est.cost) < 1.0);
        assert!((stats.success_rate - est.reliability.value()).abs() < 0.01);
    }

    #[test]
    fn failover_measures_to_estimate() {
        let env = Environment::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap();
        let s = Strategy::parse("a-b-c-d-e").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let stats = simulate(&s, &env, 50_000, &mut rng).unwrap();
        let est = estimate(&s, &env.mean_qos_table()).unwrap();
        assert!(relative_error_pct(stats.mean_latency, est.latency) < 1.5);
        assert!(relative_error_pct(stats.mean_cost, est.cost) < 1.5);
    }

    #[test]
    fn table2_strategy4_measures_to_estimate() {
        let env = Environment::from_triples(&[
            (50.0, 50.0, 0.6),
            (100.0, 100.0, 0.6),
            (150.0, 150.0, 0.7),
            (200.0, 200.0, 0.7),
            (250.0, 250.0, 0.8),
        ])
        .unwrap();
        let s = Strategy::parse("c*(a*b-d*e)").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(44);
        let stats = simulate(&s, &env, 50_000, &mut rng).unwrap();
        let est = estimate(&s, &env.mean_qos_table()).unwrap();
        assert!(relative_error_pct(stats.mean_latency, est.latency) < 1.5);
        assert!(relative_error_pct(stats.mean_cost, est.cost) < 1.5);
        assert!((stats.success_rate - 0.99712).abs() < 0.005);
    }

    #[test]
    fn deterministic_strategy_has_zero_variance() {
        let env = Environment::from_triples(&[(5.0, 10.0, 1.0)]).unwrap();
        let s = Strategy::parse("a").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = simulate(&s, &env, 100, &mut rng).unwrap();
        assert_eq!(stats.mean_latency, 10.0);
        assert_eq!(stats.std_latency, 0.0);
        assert_eq!(stats.success_rate, 1.0);
        assert_eq!(stats.as_qos().cost, 5.0);
        assert_eq!(stats.sem_latency(), 0.0);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert!(relative_error_pct(1.0, 0.0).is_infinite());
        assert!((relative_error_pct(101.0, 100.0) - 1.0).abs() < 1e-12);
        assert!((relative_error_pct(99.0, 100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_panics() {
        let env = env_3c3();
        let s = Strategy::parse("a").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = simulate(&s, &env, 0, &mut rng);
    }

    #[test]
    fn missing_ms_propagates() {
        let env = Environment::from_triples(&[(1.0, 1.0, 0.5)]).unwrap();
        let s = Strategy::parse("a-b").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(simulate(&s, &env, 10, &mut rng).is_err());
    }

    #[test]
    fn simulate_with_ablation_executor_costs_less() {
        let env = Environment::from_triples(&[(50.0, 100.0, 0.9), (50.0, 5.0, 0.9)]).unwrap();
        let s = Strategy::parse("a*b").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let charged = simulate(&s, &env, 5_000, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let free = simulate_with(
            &VirtualExecutor::without_cancellation_charges(),
            &s,
            &env,
            5_000,
            &mut rng,
        )
        .unwrap();
        assert!(free.mean_cost < charged.mean_cost);
    }
}

//! Correlated failures: microservices that share a physical host share its
//! fate.
//!
//! Algorithm 1 (and the collector feeding it) treats microservice failures
//! as independent — reliability of a strategy is `1 − Π(1 − r_m)`. That is
//! exactly right when every equivalent microservice lives on its own
//! device, but edge deployments sometimes co-locate several equivalents on
//! one host (one Raspberry Pi running both the smoke-sensor reader and the
//! camera analyzer). When the *host* browns out, both fail together, and
//! the independence-based estimate overstates the strategy's reliability.
//!
//! This module simulates such shared-fate groups so the gap can be
//! measured (see the correlation ablation in `qce-bench`), quantifying how
//! much redundancy is really bought by equivalents that aren't
//! failure-isolated.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qce_strategy::{EstimateError, MsId, Strategy};

use crate::environment::Environment;
use crate::exec::VirtualExecutor;
use crate::trace::ExecutionTrace;

/// A group of microservices sharing one physical host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedHost {
    /// Microservices hosted on this device.
    pub members: Vec<MsId>,
    /// Probability that the host is up for a given execution. When the
    /// host is down, every member fails regardless of its own reliability.
    pub availability: f64,
}

impl SharedHost {
    /// Creates a shared host.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is not within `[0, 1]`.
    #[must_use]
    pub fn new(members: Vec<MsId>, availability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be a probability"
        );
        SharedHost {
            members,
            availability,
        }
    }
}

/// Adjusts `env` so that each microservice's *marginal* reliability equals
/// the original value even under the host-availability factor: members of a
/// group with availability `h` get conditional reliability `r / h`.
///
/// This is the fair comparison setup: the collector (which observes
/// marginals) reports the same per-microservice reliabilities with or
/// without correlation, so any gap in *strategy* reliability is purely a
/// joint-distribution effect.
///
/// Returns `None` if some member's `r > h` (the marginal cannot be
/// preserved) or a member id is missing from the environment.
#[must_use]
pub fn preserve_marginals(env: &Environment, hosts: &[SharedHost]) -> Option<Environment> {
    let mut adjusted = env.clone();
    for host in hosts {
        for &id in &host.members {
            let model = adjusted.get_mut(id)?;
            let marginal = model.reliability.value();
            if host.availability == 0.0 {
                if marginal > 0.0 {
                    return None;
                }
                continue;
            }
            let conditional = marginal / host.availability;
            if conditional > 1.0 + 1e-12 {
                return None;
            }
            model.reliability = qce_strategy::Reliability::clamped(conditional);
        }
    }
    Some(adjusted)
}

/// Executes `strategy` once with shared-fate failures: host up/down states
/// are sampled first, then members of down hosts fail unconditionally
/// (their latency still elapses — the caller times out on an unreachable
/// device).
///
/// `env` must hold the *conditional* reliabilities (see
/// [`preserve_marginals`]).
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
pub fn execute_with_shared_fate<R: Rng + ?Sized>(
    executor: &VirtualExecutor,
    strategy: &Strategy,
    env: &Environment,
    hosts: &[SharedHost],
    rng: &mut R,
) -> Result<ExecutionTrace, EstimateError> {
    // Sample host states, then materialize an environment view where down
    // hosts' members have zero reliability for this one execution.
    let mut effective = env.clone();
    for host in hosts {
        if !rng.gen_bool(host.availability) {
            for &id in &host.members {
                if let Some(model) = effective.get_mut(id) {
                    model.reliability = qce_strategy::Reliability::NEVER;
                }
            }
        }
    }
    executor.execute(strategy, &effective, rng)
}

/// Measured reliability of `strategy` over `runs` shared-fate executions.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_reliability<R: Rng + ?Sized>(
    strategy: &Strategy,
    env: &Environment,
    hosts: &[SharedHost],
    runs: u32,
    rng: &mut R,
) -> Result<f64, EstimateError> {
    assert!(runs > 0, "at least one run is required");
    let executor = VirtualExecutor::new();
    let mut successes = 0u32;
    for _ in 0..runs {
        if execute_with_shared_fate(&executor, strategy, env, hosts, rng)?.success {
            successes += 1;
        }
    }
    Ok(f64::from(successes) / f64::from(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_strategy::estimate::estimate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env() -> Environment {
        // Two equivalents with marginal reliability 0.6 each.
        Environment::from_triples(&[(10.0, 5.0, 0.6), (10.0, 8.0, 0.6)]).unwrap()
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_availability_rejected() {
        let _ = SharedHost::new(vec![MsId(0)], 1.5);
    }

    #[test]
    fn preserve_marginals_divides_by_availability() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        assert!((adjusted.get(MsId(0)).unwrap().reliability.value() - 0.8).abs() < 1e-12);
        assert!((adjusted.get(MsId(1)).unwrap().reliability.value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn preserve_marginals_rejects_impossible() {
        // Marginal 0.6 cannot come from a host that is up half the time.
        let hosts = [SharedHost::new(vec![MsId(0)], 0.5)];
        assert!(preserve_marginals(&env(), &hosts).is_none());
        let hosts = [SharedHost::new(vec![MsId(9)], 0.9)];
        assert!(preserve_marginals(&env(), &hosts).is_none(), "unknown id");
    }

    #[test]
    fn marginal_reliability_is_preserved_empirically() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - 0.6).abs() < 0.01,
            "marginal drifted: {measured}"
        );
    }

    #[test]
    fn correlation_erodes_strategy_reliability() {
        // Independent estimate: 1 - 0.4² = 0.84. Shared fate at h = 0.75:
        // true reliability = h·(1-(1-0.8)²) = 0.75·0.96 = 0.72.
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a-b").unwrap();
        let independent = estimate(&s, &env().mean_qos_table()).unwrap();
        assert!((independent.reliability.value() - 0.84).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - 0.72).abs() < 0.01,
            "shared-fate reliability should be ~0.72, got {measured}"
        );
        assert!(measured < independent.reliability.value() - 0.08);
    }

    #[test]
    fn isolated_hosts_match_the_independent_estimate() {
        // One host per microservice: correlation disappears.
        let hosts = [
            SharedHost::new(vec![MsId(0)], 0.75),
            SharedHost::new(vec![MsId(1)], 0.75),
        ];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a-b").unwrap();
        let independent = estimate(&s, &env().mean_qos_table()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - independent.reliability.value()).abs() < 0.01,
            "isolated hosts: {measured} vs {}",
            independent.reliability
        );
    }

    #[test]
    fn always_up_host_changes_nothing() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 1.0)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        assert_eq!(adjusted, env());
    }
}

//! Correlated failures: microservices that share a physical host share its
//! fate.
//!
//! Algorithm 1 (and the collector feeding it) treats microservice failures
//! as independent — reliability of a strategy is `1 − Π(1 − r_m)`. That is
//! exactly right when every equivalent microservice lives on its own
//! device, but edge deployments sometimes co-locate several equivalents on
//! one host (one Raspberry Pi running both the smoke-sensor reader and the
//! camera analyzer). When the *host* browns out, both fail together, and
//! the independence-based estimate overstates the strategy's reliability.
//!
//! This module simulates such shared-fate groups so the gap can be
//! measured (see the correlation ablation in `qce-bench`), quantifying how
//! much redundancy is really bought by equivalents that aren't
//! failure-isolated.

use std::time::Duration;

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use qce_strategy::{EstimateError, MsId, Strategy};

use crate::environment::Environment;
use crate::exec::VirtualExecutor;
use crate::trace::ExecutionTrace;

/// A group of microservices sharing one physical host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedHost {
    /// Microservices hosted on this device.
    pub members: Vec<MsId>,
    /// Probability that the host is up for a given execution. When the
    /// host is down, every member fails regardless of its own reliability.
    pub availability: f64,
}

impl SharedHost {
    /// Creates a shared host.
    ///
    /// # Panics
    ///
    /// Panics if `availability` is not within `[0, 1]`.
    #[must_use]
    pub fn new(members: Vec<MsId>, availability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&availability),
            "availability must be a probability"
        );
        SharedHost {
            members,
            availability,
        }
    }
}

/// Adjusts `env` so that each microservice's *marginal* reliability equals
/// the original value even under the host-availability factor: members of a
/// group with availability `h` get conditional reliability `r / h`.
///
/// This is the fair comparison setup: the collector (which observes
/// marginals) reports the same per-microservice reliabilities with or
/// without correlation, so any gap in *strategy* reliability is purely a
/// joint-distribution effect.
///
/// Returns `None` if some member's `r > h` (the marginal cannot be
/// preserved) or a member id is missing from the environment.
#[must_use]
pub fn preserve_marginals(env: &Environment, hosts: &[SharedHost]) -> Option<Environment> {
    let mut adjusted = env.clone();
    for host in hosts {
        for &id in &host.members {
            let model = adjusted.get_mut(id)?;
            let marginal = model.reliability.value();
            if host.availability == 0.0 {
                if marginal > 0.0 {
                    return None;
                }
                continue;
            }
            let conditional = marginal / host.availability;
            if conditional > 1.0 + 1e-12 {
                return None;
            }
            model.reliability = qce_strategy::Reliability::clamped(conditional);
        }
    }
    Some(adjusted)
}

/// Executes `strategy` once with shared-fate failures: host up/down states
/// are sampled first, then members of down hosts fail unconditionally
/// (their latency still elapses — the caller times out on an unreachable
/// device).
///
/// `env` must hold the *conditional* reliabilities (see
/// [`preserve_marginals`]).
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
pub fn execute_with_shared_fate<R: Rng + ?Sized>(
    executor: &VirtualExecutor,
    strategy: &Strategy,
    env: &Environment,
    hosts: &[SharedHost],
    rng: &mut R,
) -> Result<ExecutionTrace, EstimateError> {
    // Sample host states, then materialize an environment view where down
    // hosts' members have zero reliability for this one execution.
    let mut effective = env.clone();
    for host in hosts {
        if !rng.gen_bool(host.availability) {
            for &id in &host.members {
                if let Some(model) = effective.get_mut(id) {
                    model.reliability = qce_strategy::Reliability::NEVER;
                }
            }
        }
    }
    executor.execute(strategy, &effective, rng)
}

/// Measured reliability of `strategy` over `runs` shared-fate executions.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn measure_reliability<R: Rng + ?Sized>(
    strategy: &Strategy,
    env: &Environment,
    hosts: &[SharedHost],
    runs: u32,
    rng: &mut R,
) -> Result<f64, EstimateError> {
    assert!(runs > 0, "at least one run is required");
    let executor = VirtualExecutor::new();
    let mut successes = 0u32;
    for _ in 0..runs {
        if execute_with_shared_fate(&executor, strategy, env, hosts, rng)?.success {
            successes += 1;
        }
    }
    Ok(f64::from(successes) / f64::from(runs))
}

// ---------------------------------------------------------------------------
// Scheduled correlated outages (failure storms)
// ---------------------------------------------------------------------------

/// A named failure domain: a shared radio link or power domain whose outage
/// takes down every member microservice at once, for a *scheduled window*
/// of virtual time.
///
/// This extends [`SharedHost`] beyond per-execution QoS correlation: a
/// shared host flips a coin independently for every execution, while a
/// failure domain is down for contiguous windows — the correlated-failure
/// *storms* of the adversarial scenario suite. Windows are half-open
/// `[start, end)`, sorted, and non-overlapping, so the domain state at any
/// instant is well-defined and replay is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureDomain {
    /// Human-readable domain name (e.g. `"cell-tower-7"`).
    pub name: String,
    /// Microservices that lose connectivity when the domain is down.
    pub members: Vec<MsId>,
    /// Outage windows, half-open `[start, end)`, sorted and disjoint.
    pub windows: Vec<(Duration, Duration)>,
}

impl FailureDomain {
    /// Creates a failure domain from explicit outage windows.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, a window is empty or reversed
    /// (`end <= start`), or windows are unsorted/overlapping.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        members: Vec<MsId>,
        windows: Vec<(Duration, Duration)>,
    ) -> Self {
        assert!(!members.is_empty(), "a failure domain needs members");
        for w in &windows {
            assert!(w.0 < w.1, "outage windows must satisfy start < end");
        }
        for pair in windows.windows(2) {
            assert!(
                pair[0].1 <= pair[1].0,
                "outage windows must be sorted and disjoint"
            );
        }
        FailureDomain {
            name: name.into(),
            members,
            windows,
        }
    }

    /// Generates a domain with seeded outage windows over `horizon`:
    /// exponential gaps with mean `mean_time_between`, exponential outage
    /// lengths with mean `mean_duration`. Same seed ⇒ same windows.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or either mean is not positive.
    #[must_use]
    pub fn seeded(
        name: impl Into<String>,
        members: Vec<MsId>,
        seed: u64,
        horizon: Duration,
        mean_time_between: Duration,
        mean_duration: Duration,
    ) -> Self {
        assert!(
            mean_time_between > Duration::ZERO && mean_duration > Duration::ZERO,
            "outage process means must be positive"
        );
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut exp = |mean: Duration| {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            mean.mul_f64(-u.ln())
        };
        let mut windows = Vec::new();
        let mut t = Duration::ZERO;
        loop {
            t += exp(mean_time_between);
            if t >= horizon {
                break;
            }
            let end = (t + exp(mean_duration)).min(horizon);
            if end > t {
                windows.push((t, end));
            }
            t = end;
        }
        FailureDomain::new(name, members, windows)
    }

    /// Whether the domain is down at instant `at`.
    #[must_use]
    pub fn down_at(&self, at: Duration) -> bool {
        self.windows.iter().any(|&(s, e)| s <= at && at < e)
    }

    /// Total outage time within `[0, horizon)`.
    #[must_use]
    pub fn downtime(&self, horizon: Duration) -> Duration {
        self.windows
            .iter()
            .map(|&(s, e)| e.min(horizon).saturating_sub(s.min(horizon)))
            .sum()
    }
}

/// Executes `strategy` once at virtual instant `at`: members of every
/// domain that is down at `at` fail unconditionally (reliability zero for
/// this execution), members of up domains behave per `env`.
///
/// Unlike [`execute_with_shared_fate`], the domain states are *not*
/// sampled — they follow deterministically from the outage schedule — so
/// the only randomness left is the members' own behaviour.
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
pub fn execute_with_outages<R: Rng + ?Sized>(
    executor: &VirtualExecutor,
    strategy: &Strategy,
    env: &Environment,
    domains: &[FailureDomain],
    at: Duration,
    rng: &mut R,
) -> Result<ExecutionTrace, EstimateError> {
    let mut effective = env.clone();
    for domain in domains.iter().filter(|d| d.down_at(at)) {
        for &id in &domain.members {
            if let Some(model) = effective.get_mut(id) {
                model.reliability = qce_strategy::Reliability::NEVER;
            }
        }
    }
    executor.execute(strategy, &effective, rng)
}

/// Measured reliability of `strategy` over `runs` executions spread evenly
/// across `[0, horizon)`, under the scheduled outages of `domains` — the
/// time-averaged counterpart of [`measure_reliability`].
///
/// # Errors
///
/// Returns [`EstimateError::MissingMicroservice`] if the strategy
/// references a microservice absent from `env`.
///
/// # Panics
///
/// Panics if `runs == 0` or `horizon` is zero.
pub fn measure_reliability_over<R: Rng + ?Sized>(
    strategy: &Strategy,
    env: &Environment,
    domains: &[FailureDomain],
    horizon: Duration,
    runs: u32,
    rng: &mut R,
) -> Result<f64, EstimateError> {
    assert!(runs > 0, "at least one run is required");
    assert!(horizon > Duration::ZERO, "horizon must be positive");
    let executor = VirtualExecutor::new();
    let mut successes = 0u32;
    for k in 0..runs {
        let at = horizon.mul_f64(f64::from(k) / f64::from(runs));
        if execute_with_outages(&executor, strategy, env, domains, at, rng)?.success {
            successes += 1;
        }
    }
    Ok(f64::from(successes) / f64::from(runs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_strategy::estimate::estimate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn env() -> Environment {
        // Two equivalents with marginal reliability 0.6 each.
        Environment::from_triples(&[(10.0, 5.0, 0.6), (10.0, 8.0, 0.6)]).unwrap()
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_availability_rejected() {
        let _ = SharedHost::new(vec![MsId(0)], 1.5);
    }

    #[test]
    fn preserve_marginals_divides_by_availability() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        assert!((adjusted.get(MsId(0)).unwrap().reliability.value() - 0.8).abs() < 1e-12);
        assert!((adjusted.get(MsId(1)).unwrap().reliability.value() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn preserve_marginals_rejects_impossible() {
        // Marginal 0.6 cannot come from a host that is up half the time.
        let hosts = [SharedHost::new(vec![MsId(0)], 0.5)];
        assert!(preserve_marginals(&env(), &hosts).is_none());
        let hosts = [SharedHost::new(vec![MsId(9)], 0.9)];
        assert!(preserve_marginals(&env(), &hosts).is_none(), "unknown id");
    }

    #[test]
    fn marginal_reliability_is_preserved_empirically() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - 0.6).abs() < 0.01,
            "marginal drifted: {measured}"
        );
    }

    #[test]
    fn correlation_erodes_strategy_reliability() {
        // Independent estimate: 1 - 0.4² = 0.84. Shared fate at h = 0.75:
        // true reliability = h·(1-(1-0.8)²) = 0.75·0.96 = 0.72.
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 0.75)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a-b").unwrap();
        let independent = estimate(&s, &env().mean_qos_table()).unwrap();
        assert!((independent.reliability.value() - 0.84).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - 0.72).abs() < 0.01,
            "shared-fate reliability should be ~0.72, got {measured}"
        );
        assert!(measured < independent.reliability.value() - 0.08);
    }

    #[test]
    fn isolated_hosts_match_the_independent_estimate() {
        // One host per microservice: correlation disappears.
        let hosts = [
            SharedHost::new(vec![MsId(0)], 0.75),
            SharedHost::new(vec![MsId(1)], 0.75),
        ];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        let s = qce_strategy::Strategy::parse("a-b").unwrap();
        let independent = estimate(&s, &env().mean_qos_table()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let measured = measure_reliability(&s, &adjusted, &hosts, 40_000, &mut rng).unwrap();
        assert!(
            (measured - independent.reliability.value()).abs() < 0.01,
            "isolated hosts: {measured} vs {}",
            independent.reliability
        );
    }

    #[test]
    fn always_up_host_changes_nothing() {
        let hosts = [SharedHost::new(vec![MsId(0), MsId(1)], 1.0)];
        let adjusted = preserve_marginals(&env(), &hosts).unwrap();
        assert_eq!(adjusted, env());
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    #[should_panic(expected = "members")]
    fn domain_without_members_rejected() {
        let _ = FailureDomain::new("d", vec![], vec![(ms(0), ms(1))]);
    }

    #[test]
    #[should_panic(expected = "start < end")]
    fn empty_outage_window_rejected() {
        let _ = FailureDomain::new("d", vec![MsId(0)], vec![(ms(5), ms(5))]);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_outage_windows_rejected() {
        let _ = FailureDomain::new("d", vec![MsId(0)], vec![(ms(0), ms(10)), (ms(5), ms(20))]);
    }

    #[test]
    fn down_at_windows_are_half_open() {
        let d = FailureDomain::new("d", vec![MsId(0)], vec![(ms(10), ms(20)), (ms(40), ms(50))]);
        assert!(!d.down_at(ms(9)));
        assert!(d.down_at(ms(10)));
        assert!(d.down_at(ms(19)));
        assert!(!d.down_at(ms(20)));
        assert!(d.down_at(ms(45)));
        assert_eq!(d.downtime(ms(100)), ms(20));
        assert_eq!(d.downtime(ms(45)), ms(15));
    }

    #[test]
    fn seeded_domains_are_deterministic() {
        let mk = |seed| {
            FailureDomain::seeded(
                "radio",
                vec![MsId(0), MsId(1)],
                seed,
                Duration::from_secs(10),
                Duration::from_millis(800),
                Duration::from_millis(200),
            )
        };
        assert_eq!(mk(7), mk(7), "same seed ⇒ same windows");
        assert_ne!(mk(7), mk(8), "different seeds ⇒ different storms");
        assert!(!mk(7).windows.is_empty(), "10 s horizon should see storms");
    }

    #[test]
    fn outage_blackout_erodes_reliability_by_exact_uptime() {
        // Perfectly reliable members + a domain covering 30% of the
        // horizon: the time-averaged reliability is exactly the uptime
        // fraction of the sampling instants — no randomness left.
        let env = Environment::from_triples(&[(10.0, 5.0, 1.0), (10.0, 8.0, 1.0)]).unwrap();
        let d = FailureDomain::new(
            "power",
            vec![MsId(0), MsId(1)],
            vec![(Duration::from_secs(2), Duration::from_secs(5))],
        );
        let s = Strategy::parse("a-b").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let measured =
            measure_reliability_over(&s, &env, &[d], Duration::from_secs(10), 1000, &mut rng)
                .unwrap();
        assert!((measured - 0.7).abs() < 1e-9, "got {measured}");
    }

    #[test]
    fn partial_outage_leaves_isolated_equivalents_standing() {
        // Only ms0 is in the domain: the redundant pair still succeeds via
        // ms1 while the storm rages.
        let env = Environment::from_triples(&[(10.0, 5.0, 1.0), (10.0, 8.0, 1.0)]).unwrap();
        let d = FailureDomain::new(
            "radio",
            vec![MsId(0)],
            vec![(Duration::ZERO, Duration::from_secs(10))],
        );
        let s = Strategy::parse("a-b").unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let measured =
            measure_reliability_over(&s, &env, &[d], Duration::from_secs(10), 200, &mut rng)
                .unwrap();
        assert_eq!(measured, 1.0);
    }

    #[test]
    fn failure_domain_serde_round_trips() {
        let d = FailureDomain::seeded(
            "radio",
            vec![MsId(0), MsId(2)],
            11,
            Duration::from_secs(5),
            Duration::from_millis(700),
            Duration::from_millis(300),
        );
        let text = serde_json::to_string(&d).unwrap();
        let back: FailureDomain = serde_json::from_str(&text).unwrap();
        assert_eq!(back, d);
    }
}

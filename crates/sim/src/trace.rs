//! Execution traces produced by the virtual-time executor.

use serde::{Deserialize, Serialize};

use qce_strategy::MsId;

/// What happened to one microservice during one strategy execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MsRecord {
    /// The microservice.
    pub ms: MsId,
    /// Virtual time at which its invocation was scheduled to start.
    pub start: f64,
    /// Virtual time at which its invocation would complete.
    pub end: f64,
    /// Whether the invocation actually started (and was therefore charged,
    /// per Assumption 2). `false` when the strategy already succeeded at or
    /// before `start`.
    pub started: bool,
    /// Whether the invocation completed successfully. Always `false` when
    /// `started` is `false`.
    pub succeeded: bool,
    /// Whether the invocation was started but cut short because another
    /// microservice won the race (`started && end > overall latency`).
    pub cancelled: bool,
}

/// The outcome of one simulated strategy execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    /// Whether any microservice succeeded.
    pub success: bool,
    /// Virtual time at which the strategy returned: the first success, or —
    /// when everything fails — the completion of the last invocation.
    pub latency: f64,
    /// Total cost charged: the sum of the costs of all *started*
    /// invocations (Assumption 2: failures and cancellations pay full
    /// price).
    pub cost: f64,
    /// Records for every invocation that was *scheduled*, in scheduling
    /// order. A microservice skipped because an earlier member of its own
    /// sequence succeeded has no record; one scheduled at or after the
    /// moment the strategy succeeded has a record with `started == false`.
    pub records: Vec<MsRecord>,
}

impl ExecutionTrace {
    /// Ids of the microservices that actually started.
    #[must_use]
    pub fn started(&self) -> Vec<MsId> {
        self.records
            .iter()
            .filter(|r| r.started)
            .map(|r| r.ms)
            .collect()
    }

    /// The microservice whose success ended the execution, if any.
    #[must_use]
    pub fn winner(&self) -> Option<MsId> {
        self.records
            .iter()
            .filter(|r| r.succeeded && r.end <= self.latency)
            .min_by(|a, b| a.end.partial_cmp(&b.end).expect("ends are finite"))
            .map(|r| r.ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(ms: usize, start: f64, end: f64, started: bool, succeeded: bool) -> MsRecord {
        MsRecord {
            ms: MsId(ms),
            start,
            end,
            started,
            succeeded,
            cancelled: false,
        }
    }

    #[test]
    fn started_filters_records() {
        let trace = ExecutionTrace {
            success: true,
            latency: 10.0,
            cost: 5.0,
            records: vec![
                record(0, 0.0, 10.0, true, true),
                record(1, 10.0, 20.0, false, false),
            ],
        };
        assert_eq!(trace.started(), vec![MsId(0)]);
        assert_eq!(trace.winner(), Some(MsId(0)));
    }

    #[test]
    fn winner_is_earliest_success() {
        let trace = ExecutionTrace {
            success: true,
            latency: 8.0,
            cost: 5.0,
            records: vec![
                record(0, 0.0, 12.0, true, true), // succeeded but after the win
                record(1, 0.0, 8.0, true, true),
            ],
        };
        assert_eq!(trace.winner(), Some(MsId(1)));
    }

    #[test]
    fn no_winner_on_failure() {
        let trace = ExecutionTrace {
            success: false,
            latency: 20.0,
            cost: 5.0,
            records: vec![record(0, 0.0, 20.0, true, false)],
        };
        assert_eq!(trace.winner(), None);
    }
}

//! Event-free virtual-time execution of strategies against stochastic
//! microservice models.
//!
//! The paper validates its QoS estimation by actually executing strategies
//! with `system.sleep`-imitated latencies, using *seconds* as the unit "to
//! filter out the costs of scheduling multi-threaded executions". This
//! module achieves the same isolation more directly: executions happen in
//! **virtual time**, so 300 repetitions of a 750 ms strategy take
//! microseconds and contain zero scheduler noise. The threaded real-time
//! executor lives in the companion crate `qce-runtime`.
//!
//! ## Semantics
//!
//! * A **leaf** invocation starts at its scheduled time, lasts a sampled
//!   latency, and succeeds with the model's reliability.
//! * A **sequential** node runs its children left to right; a child starts
//!   when the previous child has *failed completely* (all of its
//!   microservices failed — the failure time is the makespan of the failed
//!   child's invocations).
//! * A **parallel** node starts all children simultaneously.
//! * The first success anywhere terminates the whole strategy
//!   (short-circuit). Invocations that started strictly before that moment
//!   are charged in full (Assumption 2) and marked *cancelled* if still
//!   running; invocations scheduled at or after it never start and are not
//!   charged. (Ties go to the success: completions are processed before
//!   activations, mirroring the `e ≤ s` gating of the estimator.)
//! * If every microservice fails, the strategy fails at the completion of
//!   the last invocation and every invocation is charged.

use rand::Rng;

use qce_strategy::{CompletionPolicy, EstimateError, MsId, Node, Strategy};

use crate::environment::Environment;
use crate::trace::{ExecutionTrace, MsRecord};

/// Virtual-time strategy executor.
///
/// # Examples
///
/// ```
/// use qce_sim::{Environment, VirtualExecutor};
/// use qce_strategy::Strategy;
/// use rand::SeedableRng;
///
/// // a is useless (never succeeds), b always succeeds after 5 time units.
/// let env = Environment::from_triples(&[(10.0, 2.0, 0.0), (20.0, 5.0, 1.0)])?;
/// let strategy = Strategy::parse("a-b")?;
/// let exec = VirtualExecutor::new();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let trace = exec.execute(&strategy, &env, &mut rng)?;
/// assert!(trace.success);
/// assert_eq!(trace.latency, 7.0); // a fails at 2, b runs 2→7
/// assert_eq!(trace.cost, 30.0);   // both started, both charged
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualExecutor {
    charge_cancelled: bool,
}

impl VirtualExecutor {
    /// Creates an executor with the paper's cost semantics (Assumption 2:
    /// started invocations are charged in full even when cancelled).
    #[must_use]
    pub fn new() -> Self {
        VirtualExecutor {
            charge_cancelled: true,
        }
    }

    /// Ablation variant that does **not** charge invocations cancelled by an
    /// earlier success — i.e. a hypothetical platform with free preemption.
    /// Used by the ablation benchmarks to quantify how much of a parallel
    /// strategy's cost comes from cancelled losers.
    #[must_use]
    pub fn without_cancellation_charges() -> Self {
        VirtualExecutor {
            charge_cancelled: false,
        }
    }

    /// Executes `strategy` once against `env`, drawing all randomness from
    /// `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::MissingMicroservice`] if the strategy
    /// references a microservice absent from `env`.
    pub fn execute<R: Rng + ?Sized>(
        &self,
        strategy: &Strategy,
        env: &Environment,
        rng: &mut R,
    ) -> Result<ExecutionTrace, EstimateError> {
        // Validate up front so the recursion can't fail halfway through.
        for id in strategy.leaves() {
            if env.get(id).is_none() {
                return Err(EstimateError::MissingMicroservice(id));
            }
        }

        let mut schedule = Vec::with_capacity(strategy.len());
        let outcome = walk(strategy.node(), 0.0, env, rng, &mut schedule);

        // Determine when (and whether) the whole strategy finished. The
        // schedule already encodes within-branch gating; the first success
        // cancels everything else.
        let (success, finish) = match outcome {
            WalkOutcome::Success(t) => (true, t),
            WalkOutcome::Failure(_) => {
                let last_end = schedule.iter().map(|s| s.end).fold(0.0f64, f64::max);
                (false, last_end)
            }
        };

        let mut cost = 0.0;
        let records: Vec<MsRecord> = schedule
            .into_iter()
            .map(|s| {
                // Ties (start == finish) go to the success: not started.
                let started = !success || s.start < finish;
                let cancelled = started && success && s.end > finish;
                let charged = started && (self.charge_cancelled || !cancelled);
                if charged {
                    cost += env.get(s.ms).expect("validated above").cost;
                }
                MsRecord {
                    ms: s.ms,
                    start: s.start,
                    end: s.end,
                    started,
                    succeeded: started && s.succeeded && s.end <= finish,
                    cancelled,
                }
            })
            .collect();

        Ok(ExecutionTrace {
            success,
            latency: finish,
            cost,
            records,
        })
    }
}

/// Trace of a policy-aware virtual execution (see
/// [`VirtualExecutor::execute_with_policy`]).
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTrace {
    /// The underlying execution trace. `success` means the policy was
    /// satisfied: first success under
    /// [`CompletionPolicy::FirstSuccess`], quorum agreement under
    /// [`CompletionPolicy::Quorum`].
    pub trace: ExecutionTrace,
    /// Successful invocations that completed by the decision instant.
    /// Under first-success semantics this is `1` on success and `0`
    /// otherwise; under a quorum it is the number of agreeing votes (the
    /// simulator models honest equivalent microservices, so every success
    /// votes for the same answer).
    pub votes: usize,
}

impl VirtualExecutor {
    /// Executes `strategy` once under `policy`, drawing all randomness from
    /// `rng`.
    ///
    /// Under [`CompletionPolicy::FirstSuccess`] this is exactly
    /// [`VirtualExecutor::execute`]. Under [`CompletionPolicy::Quorum`] the
    /// walk mirrors the runtime engine's quorum semantics in virtual time:
    /// a success no longer absorbs its sequential chain (the next stage
    /// starts when the previous one *completes*, success or failure), and
    /// the run decides at the `k`-th success. Invocations scheduled at or
    /// after the decision instant never start; invocations still running
    /// are cancelled and charged per this executor's cost semantics.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::MissingMicroservice`] if the strategy
    /// references a microservice absent from `env`.
    ///
    /// # Panics
    ///
    /// Panics if `policy` is a quorum of zero.
    pub fn execute_with_policy<R: Rng + ?Sized>(
        &self,
        strategy: &Strategy,
        env: &Environment,
        policy: CompletionPolicy,
        rng: &mut R,
    ) -> Result<PolicyTrace, EstimateError> {
        let quorum = match policy {
            CompletionPolicy::FirstSuccess => {
                let trace = self.execute(strategy, env, rng)?;
                let votes = usize::from(trace.success);
                return Ok(PolicyTrace { trace, votes });
            }
            CompletionPolicy::Quorum { quorum } => {
                assert!(quorum >= 1, "quorum must be at least 1");
                quorum
            }
        };

        for id in strategy.leaves() {
            if env.get(id).is_none() {
                return Err(EstimateError::MissingMicroservice(id));
            }
        }

        // Schedule the whole strategy without short-circuiting (a success
        // does not absorb its Seq chain under quorum), then decide at the
        // k-th success and drop everything scheduled at or after it.
        let mut schedule = Vec::with_capacity(strategy.len());
        walk_quorum(strategy.node(), 0.0, env, rng, &mut schedule);

        let mut success_ends: Vec<f64> = schedule
            .iter()
            .filter(|s| s.succeeded)
            .map(|s| s.end)
            .collect();
        success_ends.sort_by(f64::total_cmp);
        let agreed = success_ends.len() >= quorum;
        let finish = if agreed {
            success_ends[quorum - 1]
        } else {
            schedule.iter().map(|s| s.end).fold(0.0f64, f64::max)
        };

        let mut cost = 0.0;
        let mut votes = 0;
        let records: Vec<MsRecord> = schedule
            .into_iter()
            .map(|s| {
                // Ties (start == finish) go to the decision: not started.
                let started = !agreed || s.start < finish;
                let cancelled = started && agreed && s.end > finish;
                let charged = started && (self.charge_cancelled || !cancelled);
                if charged {
                    cost += env.get(s.ms).expect("validated above").cost;
                }
                let succeeded = started && s.succeeded && s.end <= finish;
                votes += usize::from(succeeded);
                MsRecord {
                    ms: s.ms,
                    start: s.start,
                    end: s.end,
                    started,
                    succeeded,
                    cancelled,
                }
            })
            .collect();

        Ok(PolicyTrace {
            trace: ExecutionTrace {
                success: agreed,
                latency: finish,
                cost,
                records,
            },
            votes,
        })
    }
}

/// One scheduled invocation with its sampled outcome.
struct Scheduled {
    ms: MsId,
    start: f64,
    end: f64,
    succeeded: bool,
}

enum WalkOutcome {
    /// The subtree produced a success at this virtual time.
    Success(f64),
    /// Every microservice in the subtree failed; the last one finished at
    /// this virtual time.
    Failure(f64),
}

/// Schedules `node` starting at `t0`, appending invocations (with sampled
/// outcomes) to `schedule` and reporting the subtree's outcome.
fn walk<R: Rng + ?Sized>(
    node: &Node,
    t0: f64,
    env: &Environment,
    rng: &mut R,
    schedule: &mut Vec<Scheduled>,
) -> WalkOutcome {
    match node {
        Node::Leaf(id) => {
            let model = env.get(*id).expect("caller validated availability");
            let (succeeded, latency) = model.sample_invocation(rng);
            let end = t0 + latency;
            schedule.push(Scheduled {
                ms: *id,
                start: t0,
                end,
                succeeded,
            });
            if succeeded {
                WalkOutcome::Success(end)
            } else {
                WalkOutcome::Failure(end)
            }
        }
        Node::Seq(children) => {
            let mut cursor = t0;
            for child in children {
                match walk(child, cursor, env, rng, schedule) {
                    WalkOutcome::Success(t) => return WalkOutcome::Success(t),
                    WalkOutcome::Failure(t) => cursor = t,
                }
            }
            WalkOutcome::Failure(cursor)
        }
        Node::Par(children) => {
            let mut first_success: Option<f64> = None;
            let mut last_failure = t0;
            for child in children {
                match walk(child, t0, env, rng, schedule) {
                    WalkOutcome::Success(t) => {
                        first_success = Some(match first_success {
                            Some(prev) => prev.min(t),
                            None => t,
                        });
                    }
                    WalkOutcome::Failure(t) => last_failure = last_failure.max(t),
                }
            }
            match first_success {
                Some(t) => WalkOutcome::Success(t),
                None => WalkOutcome::Failure(last_failure),
            }
        }
    }
}

/// Schedules `node` for quorum execution starting at `t0`: nothing
/// short-circuits (a Seq stage starts when its predecessor *completes*),
/// and the returned time is the subtree's completion (makespan). The
/// global k-th-success cut is applied by the caller.
fn walk_quorum<R: Rng + ?Sized>(
    node: &Node,
    t0: f64,
    env: &Environment,
    rng: &mut R,
    schedule: &mut Vec<Scheduled>,
) -> f64 {
    match node {
        Node::Leaf(id) => {
            let model = env.get(*id).expect("caller validated availability");
            let (succeeded, latency) = model.sample_invocation(rng);
            let end = t0 + latency;
            schedule.push(Scheduled {
                ms: *id,
                start: t0,
                end,
                succeeded,
            });
            end
        }
        Node::Seq(children) => {
            let mut cursor = t0;
            for child in children {
                cursor = walk_quorum(child, cursor, env, rng, schedule);
            }
            cursor
        }
        Node::Par(children) => children
            .iter()
            .map(|child| walk_quorum(child, t0, env, rng, schedule))
            .fold(t0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    /// Environment where reliability is 0 or 1 so outcomes are
    /// deterministic regardless of the RNG.
    fn det_env(spec: &[(f64, f64, bool)]) -> Environment {
        Environment::from_triples(
            &spec
                .iter()
                .map(|&(c, l, ok)| (c, l, if ok { 1.0 } else { 0.0 }))
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    #[test]
    fn single_success() {
        let env = det_env(&[(10.0, 5.0, true)]);
        let s = Strategy::parse("a").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(t.success);
        assert_eq!(t.latency, 5.0);
        assert_eq!(t.cost, 10.0);
        assert_eq!(t.winner(), Some(MsId(0)));
    }

    #[test]
    fn single_failure() {
        let env = det_env(&[(10.0, 5.0, false)]);
        let s = Strategy::parse("a").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(!t.success);
        assert_eq!(t.latency, 5.0);
        assert_eq!(t.cost, 10.0);
    }

    #[test]
    fn failover_skips_tail_after_success() {
        let env = det_env(&[(10.0, 5.0, true), (20.0, 5.0, true)]);
        let s = Strategy::parse("a-b").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(t.success);
        assert_eq!(t.latency, 5.0);
        assert_eq!(t.cost, 10.0, "b never starts");
        // b was never even scheduled: its own sequence short-circuited.
        assert_eq!(t.records.len(), 1);
        assert_eq!(t.records[0].ms, MsId(0));
    }

    #[test]
    fn failover_falls_through_on_failure() {
        let env = det_env(&[(10.0, 2.0, false), (20.0, 5.0, true)]);
        let s = Strategy::parse("a-b").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(t.success);
        assert_eq!(t.latency, 7.0);
        assert_eq!(t.cost, 30.0);
        assert_eq!(t.winner(), Some(MsId(1)));
    }

    #[test]
    fn parallel_first_success_wins_and_cancels() {
        // b succeeds at 5; c would succeed at 50 → cancelled but charged.
        let env = det_env(&[(10.0, 100.0, false), (20.0, 5.0, true), (30.0, 50.0, true)]);
        let s = Strategy::parse("a*b*c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(t.success);
        assert_eq!(t.latency, 5.0);
        assert_eq!(t.cost, 60.0, "all three started at t=0");
        let a = &t.records[0];
        assert!(a.started && a.cancelled && !a.succeeded);
        let c = t.records.iter().find(|r| r.ms == MsId(2)).unwrap();
        assert!(c.cancelled, "still running when b won");
        assert_eq!(t.winner(), Some(MsId(1)));
    }

    #[test]
    fn parallel_all_fail_waits_for_slowest() {
        let env = det_env(&[(10.0, 3.0, false), (20.0, 9.0, false)]);
        let s = Strategy::parse("a*b").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(!t.success);
        assert_eq!(t.latency, 9.0);
        assert_eq!(t.cost, 30.0);
    }

    #[test]
    fn sequential_inside_parallel_is_gated_locally() {
        // (a-b)*c: a fails at 2 → b runs 2..12; c succeeds at 4 → b is
        // charged (started at 2 < 4) and cancelled.
        let env = det_env(&[(10.0, 2.0, false), (20.0, 10.0, true), (30.0, 4.0, true)]);
        let s = Strategy::parse("(a-b)*c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert!(t.success);
        assert_eq!(t.latency, 4.0);
        assert_eq!(t.cost, 60.0);
        let b = t.records.iter().find(|r| r.ms == MsId(1)).unwrap();
        assert!(b.started && b.cancelled);
    }

    #[test]
    fn tail_scheduled_after_win_never_starts() {
        // (a-b)*c: a fails at 6, so b would start at 6; c succeeds at 4 < 6
        // → b never starts and is not charged.
        let env = det_env(&[(10.0, 6.0, false), (20.0, 10.0, true), (30.0, 4.0, true)]);
        let s = Strategy::parse("(a-b)*c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert_eq!(t.latency, 4.0);
        assert_eq!(t.cost, 40.0, "only a and c are charged");
        let b = t.records.iter().find(|r| r.ms == MsId(1)).unwrap();
        assert!(!b.started);
    }

    #[test]
    fn tie_goes_to_the_success() {
        // a fails exactly when c succeeds (t=4): b scheduled at 4 must NOT
        // start (completions processed before activations).
        let env = det_env(&[(10.0, 4.0, false), (20.0, 10.0, true), (30.0, 4.0, true)]);
        let s = Strategy::parse("(a-b)*c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert_eq!(t.latency, 4.0);
        assert_eq!(t.cost, 40.0);
        assert!(!t.records.iter().find(|r| r.ms == MsId(1)).unwrap().started);
    }

    #[test]
    fn nested_sequential_failure_times_chain() {
        // a fails at 2, b fails at 2+3=5, c runs 5..6.
        let env = det_env(&[(1.0, 2.0, false), (1.0, 3.0, false), (1.0, 1.0, true)]);
        let s = Strategy::parse("a-b-c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert_eq!(t.latency, 6.0);
        let c = &t.records[2];
        assert_eq!(c.start, 5.0);
        assert_eq!(c.end, 6.0);
    }

    #[test]
    fn seq_after_parallel_waits_for_parallel_makespan() {
        // a*b both fail (at 3 and 8) → c starts at 8.
        let env = det_env(&[(1.0, 3.0, false), (1.0, 8.0, false), (1.0, 1.0, true)]);
        let s = Strategy::parse("a*b-c").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        let c = t.records.iter().find(|r| r.ms == MsId(2)).unwrap();
        assert_eq!(c.start, 8.0);
        assert_eq!(t.latency, 9.0);
    }

    #[test]
    fn without_cancellation_charges_skips_losers() {
        let env = det_env(&[(10.0, 100.0, true), (20.0, 5.0, true)]);
        let s = Strategy::parse("a*b").unwrap();
        let charged = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert_eq!(charged.cost, 30.0);
        let free = VirtualExecutor::without_cancellation_charges()
            .execute(&s, &env, &mut rng(1))
            .unwrap();
        assert_eq!(free.cost, 20.0, "cancelled a is not charged");
    }

    #[test]
    fn missing_microservice_is_an_error() {
        let env = det_env(&[(1.0, 1.0, true)]);
        let s = Strategy::parse("a*b").unwrap();
        assert_eq!(
            VirtualExecutor::new()
                .execute(&s, &env, &mut rng(1))
                .unwrap_err(),
            EstimateError::MissingMicroservice(MsId(1))
        );
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_policy_rejected() {
        let env = det_env(&[(1.0, 1.0, true)]);
        let s = Strategy::parse("a").unwrap();
        let _ = VirtualExecutor::new().execute_with_policy(
            &s,
            &env,
            CompletionPolicy::Quorum { quorum: 0 },
            &mut rng(1),
        );
    }

    #[test]
    fn first_success_policy_matches_plain_execute() {
        let env = det_env(&[(10.0, 2.0, false), (20.0, 5.0, true), (30.0, 9.0, true)]);
        for expr in ["a-b-c", "a*b*c", "(a-b)*c", "a*b-c"] {
            let s = Strategy::parse(expr).unwrap();
            let exec = VirtualExecutor::new();
            let plain = exec.execute(&s, &env, &mut rng(7)).unwrap();
            let policy = exec
                .execute_with_policy(&s, &env, CompletionPolicy::FirstSuccess, &mut rng(7))
                .unwrap();
            assert_eq!(policy.trace, plain, "{expr}");
            assert_eq!(policy.votes, usize::from(plain.success));
        }
    }

    #[test]
    fn quorum_seq_does_not_absorb_successes() {
        // a ok at 2, b ok at 2+3=5 → quorum of 2 met at 5; c never starts.
        let env = det_env(&[(10.0, 2.0, true), (20.0, 3.0, true), (30.0, 4.0, true)]);
        let s = Strategy::parse("a-b-c").unwrap();
        let t = VirtualExecutor::new()
            .execute_with_policy(
                &s,
                &env,
                CompletionPolicy::Quorum { quorum: 2 },
                &mut rng(1),
            )
            .unwrap();
        assert!(t.trace.success);
        assert_eq!(t.votes, 2);
        assert_eq!(t.trace.latency, 5.0);
        assert_eq!(t.trace.cost, 30.0, "c is pruned by the agreement");
        assert!(!t.trace.records.iter().any(|r| r.ms == MsId(2) && r.started));
    }

    #[test]
    fn quorum_par_decides_at_kth_success_and_cancels_the_rest() {
        // Successes at 3 (b) and 5 (a); c would succeed at 8 → cancelled
        // but charged (it started at 0).
        let env = det_env(&[(10.0, 5.0, true), (20.0, 3.0, true), (30.0, 8.0, true)]);
        let s = Strategy::parse("a*b*c").unwrap();
        let t = VirtualExecutor::new()
            .execute_with_policy(
                &s,
                &env,
                CompletionPolicy::Quorum { quorum: 2 },
                &mut rng(1),
            )
            .unwrap();
        assert!(t.trace.success);
        assert_eq!(t.votes, 2);
        assert_eq!(t.trace.latency, 5.0);
        assert_eq!(t.trace.cost, 60.0);
        let c = t.trace.records.iter().find(|r| r.ms == MsId(2)).unwrap();
        assert!(c.started && c.cancelled && !c.succeeded);
    }

    #[test]
    fn unmet_quorum_runs_everything_and_reports_votes() {
        let env = det_env(&[(10.0, 2.0, true), (20.0, 3.0, false)]);
        let s = Strategy::parse("a-b").unwrap();
        let t = VirtualExecutor::new()
            .execute_with_policy(
                &s,
                &env,
                CompletionPolicy::Quorum { quorum: 2 },
                &mut rng(1),
            )
            .unwrap();
        assert!(!t.trace.success);
        assert_eq!(t.votes, 1);
        assert_eq!(t.trace.latency, 5.0, "b runs 2..5 after a's success");
        assert_eq!(t.trace.cost, 30.0, "nothing short-circuits");
    }

    #[test]
    fn quorum_one_outcome_matches_first_success() {
        // Same decision instant and cost as first-success on deterministic
        // environments (records may differ in unreached tails).
        let env = det_env(&[(10.0, 2.0, false), (20.0, 5.0, true), (30.0, 9.0, true)]);
        for expr in ["a-b-c", "a*b*c", "(a-b)*c", "a*b-c"] {
            let s = Strategy::parse(expr).unwrap();
            let exec = VirtualExecutor::new();
            let plain = exec.execute(&s, &env, &mut rng(9)).unwrap();
            let q1 = exec
                .execute_with_policy(
                    &s,
                    &env,
                    CompletionPolicy::Quorum { quorum: 1 },
                    &mut rng(9),
                )
                .unwrap();
            assert_eq!(q1.trace.success, plain.success, "{expr}");
            assert_eq!(q1.trace.latency, plain.latency, "{expr}");
            assert_eq!(q1.trace.cost, plain.cost, "{expr}");
        }
    }

    #[test]
    fn stochastic_success_rate_matches_reliability() {
        // a-b with r = 0.5 each → overall reliability 0.75.
        let env = Environment::from_triples(&[(1.0, 1.0, 0.5), (1.0, 1.0, 0.5)]).unwrap();
        let s = Strategy::parse("a-b").unwrap();
        let exec = VirtualExecutor::new();
        let mut r = rng(12);
        let n = 20_000;
        let ok = (0..n)
            .filter(|_| exec.execute(&s, &env, &mut r).unwrap().success)
            .count();
        let rate = ok as f64 / f64::from(n);
        assert!((rate - 0.75).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn records_cover_every_leaf_when_all_fail() {
        // With zero reliability, nothing short-circuits: every microservice
        // is scheduled exactly once.
        let env = det_env(&[
            (1.0, 1.0, false),
            (1.0, 2.0, false),
            (1.0, 3.0, false),
            (1.0, 4.0, false),
            (1.0, 5.0, false),
        ]);
        let s = Strategy::parse("c*(a*b-d*e)").unwrap();
        let t = VirtualExecutor::new()
            .execute(&s, &env, &mut rng(3))
            .unwrap();
        let mut ids: Vec<usize> = t.records.iter().map(|r| r.ms.index()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.cost, 5.0, "everything is charged on total failure");
        assert!(!t.success);
    }

    #[test]
    fn records_never_duplicate_a_leaf() {
        let env = Environment::from_triples(&[
            (1.0, 1.0, 0.5),
            (1.0, 2.0, 0.5),
            (1.0, 3.0, 0.5),
            (1.0, 4.0, 0.5),
            (1.0, 5.0, 0.5),
        ])
        .unwrap();
        let s = Strategy::parse("c*(a*b-d*e)").unwrap();
        let exec = VirtualExecutor::new();
        let mut r = rng(3);
        for _ in 0..200 {
            let t = exec.execute(&s, &env, &mut r).unwrap();
            let mut ids: Vec<usize> = t.records.iter().map(|rec| rec.ms.index()).collect();
            ids.sort_unstable();
            let mut dedup = ids.clone();
            dedup.dedup();
            assert_eq!(ids, dedup, "no microservice scheduled twice");
            assert!(!ids.is_empty());
        }
    }
}

//! # qce-sim
//!
//! Stochastic edge-environment simulator for the QoS-consistent edge
//! services system (Song & Tilevich, ICDCS 2020). This crate is the
//! substrate behind the paper's simulation experiments (Section V.A):
//!
//! * [`MsModel`] / [`LatencyDistribution`] — per-microservice stochastic
//!   behaviour (success probability, latency distribution, cost);
//! * [`Environment`] — a set of equivalent microservices, with the random
//!   generators of Table III ([`RandomEnvConfig`], [`table3_configurations`]);
//! * [`Device`] / [`Availability`] — mobile and energy-harvesting resource
//!   providers whose dynamics make microservices unreliable in the first
//!   place;
//! * [`VirtualExecutor`] — executes a strategy in *virtual time* with exact
//!   short-circuit and cost semantics (Assumption 2), replacing the paper's
//!   `system.sleep` testbed with a noise-free equivalent;
//! * [`simulate`] — Monte-Carlo aggregation used to validate Algorithm 1's
//!   estimates (Section V.A.2: errors below 1%);
//! * [`DynamicEnvironment`] — scheduled QoS drift (Fig. 8's reliability
//!   drop/recovery);
//! * [`SharedHost`] — correlated (shared-fate) failures for microservices
//!   co-located on one device, quantifying when Algorithm 1's independence
//!   assumption breaks;
//! * [`FailureDomain`] — scheduled correlated *outages* (failure storms): a
//!   shared radio link or power domain whose down-windows crash every
//!   member at once, the adversarial-scenario counterpart of `SharedHost`.
//!
//! ## Quick start
//!
//! ```
//! use qce_sim::{simulate, Environment};
//! use qce_strategy::{estimate::estimate, Strategy};
//! use rand::SeedableRng;
//!
//! let env = Environment::from_triples(&[
//!     (50.0, 50.0, 0.6),
//!     (100.0, 100.0, 0.6),
//!     (150.0, 150.0, 0.7),
//! ])?;
//! let strategy = Strategy::parse("a-b*c")?;
//!
//! // Analytic estimate (Algorithm 1) …
//! let estimated = estimate(&strategy, &env.mean_qos_table())?;
//! // … validated by 10 000 virtual-time executions.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let measured = simulate(&strategy, &env, 10_000, &mut rng)?;
//! assert!((measured.mean_latency - estimated.latency).abs() / estimated.latency < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod correlation;
pub mod device;
pub mod dynamics;
pub mod environment;
pub mod exec;
pub mod microservice;
pub mod montecarlo;
pub mod trace;

pub use correlation::{
    execute_with_outages, execute_with_shared_fate, measure_reliability_over, preserve_marginals,
    FailureDomain, SharedHost,
};
pub use device::{environment_from_placements, Availability, Device, DeviceKind};
pub use dynamics::{ChangeKind, DynamicEnvironment, QosChange};
pub use environment::{table3_configurations, Environment, RandomEnvConfig};
pub use exec::{PolicyTrace, VirtualExecutor};
pub use microservice::{LatencyDistribution, MsModel};
pub use montecarlo::{relative_error_pct, simulate, simulate_with, McStats};
pub use trace::{ExecutionTrace, MsRecord};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Environment>();
        assert_send_sync::<MsModel>();
        assert_send_sync::<VirtualExecutor>();
        assert_send_sync::<DynamicEnvironment>();
        assert_send_sync::<ExecutionTrace>();
        assert_send_sync::<Device>();
    }
}

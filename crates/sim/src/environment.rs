//! Edge environments: collections of equivalent-microservice models, plus
//! the random-environment generators of the paper's Table III.

use rand::Rng;
use serde::{Deserialize, Serialize};

use qce_strategy::{EnvQos, MsId, QosError};

use crate::microservice::{LatencyDistribution, MsModel};

/// A simulated edge environment: the stochastic models of every equivalent
/// microservice available in it, indexed by [`MsId`].
///
/// # Examples
///
/// ```
/// use qce_sim::{Environment, LatencyDistribution, MsModel};
/// use qce_strategy::MsId;
///
/// let env = Environment::new(vec![
///     MsModel::new(MsId(0), 0.7, LatencyDistribution::Constant(10.0), 50.0)?,
///     MsModel::new(MsId(1), 0.9, LatencyDistribution::Constant(90.0), 50.0)?,
/// ]);
/// assert_eq!(env.len(), 2);
/// assert_eq!(env.mean_qos_table().get(MsId(1)).unwrap().latency, 90.0);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Environment {
    models: Vec<MsModel>,
}

impl Environment {
    /// Creates an environment from models; model `i` must describe
    /// `MsId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if a model's id does not match its position.
    #[must_use]
    pub fn new(models: Vec<MsModel>) -> Self {
        for (i, model) in models.iter().enumerate() {
            assert_eq!(
                model.id,
                MsId(i),
                "model at position {i} must describe MsId({i})"
            );
        }
        Environment { models }
    }

    /// Builds an environment of [`LatencyDistribution::Constant`] models
    /// from `(cost, latency, reliability)` triples — the shape of all of
    /// the paper's worked examples.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if any triple is out of domain.
    pub fn from_triples(triples: &[(f64, f64, f64)]) -> Result<Self, QosError> {
        let models = triples
            .iter()
            .enumerate()
            .map(|(i, &(c, l, r))| MsModel::new(MsId(i), r, LatencyDistribution::Constant(l), c))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Environment { models })
    }

    /// Number of microservices in the environment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if the environment has no microservices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// Ids of all microservices, ascending.
    #[must_use]
    pub fn ids(&self) -> Vec<MsId> {
        (0..self.models.len()).map(MsId).collect()
    }

    /// The model for `id`, if present.
    #[must_use]
    pub fn get(&self, id: MsId) -> Option<&MsModel> {
        self.models.get(id.index())
    }

    /// Mutable access to the model for `id`, if present. Used by
    /// [`DynamicEnvironment`](crate::dynamics::DynamicEnvironment) to apply
    /// scheduled QoS changes.
    #[must_use]
    pub fn get_mut(&mut self, id: MsId) -> Option<&mut MsModel> {
        self.models.get_mut(id.index())
    }

    /// Appends a model, assigning and returning the next id.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if the model parameters are invalid.
    pub fn push(
        &mut self,
        reliability: f64,
        latency: LatencyDistribution,
        cost: f64,
    ) -> Result<MsId, QosError> {
        let id = MsId(self.models.len());
        self.models
            .push(MsModel::new(id, reliability, latency, cost)?);
        Ok(id)
    }

    /// Iterates over the models in id order.
    pub fn iter(&self) -> impl Iterator<Item = &MsModel> {
        self.models.iter()
    }

    /// The table of *mean* QoS values — what an ideal collector reports and
    /// what the generator/estimator consume.
    #[must_use]
    pub fn mean_qos_table(&self) -> EnvQos {
        self.models.iter().map(|m| m.mean_qos()).collect()
    }
}

/// Configuration for the random environments of the paper's Table III.
///
/// Each attribute of each microservice is drawn uniformly from
/// `avg ± Δ/2` (the paper: `cost = rand(c − Δ/2, c + Δ/2)`), with cost and
/// latency clamped to be positive and reliability (given in percent)
/// clamped into `[1, 100]`.
///
/// # Examples
///
/// ```
/// use qce_sim::RandomEnvConfig;
/// use rand::SeedableRng;
///
/// // Table III, exp1 config 1: 4 microservices, avg [60, 60, 80%], Δ = 50.
/// let cfg = RandomEnvConfig {
///     microservices: 4,
///     avg_cost: 60.0,
///     avg_latency: 60.0,
///     avg_reliability_pct: 80.0,
///     delta: 50.0,
/// };
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let env = cfg.generate(&mut rng);
/// assert_eq!(env.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomEnvConfig {
    /// Number of equivalent microservices.
    pub microservices: usize,
    /// Average cost `c`.
    pub avg_cost: f64,
    /// Average latency `l`.
    pub avg_latency: f64,
    /// Average reliability `r`, in percent (the paper's unit).
    pub avg_reliability_pct: f64,
    /// Range Δ applied to every attribute.
    pub delta: f64,
}

impl RandomEnvConfig {
    /// Draws one random environment.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Environment {
        let mut env = Environment::default();
        for _ in 0..self.microservices {
            let cost = sample_around(rng, self.avg_cost, self.delta).max(1.0);
            let latency = sample_around(rng, self.avg_latency, self.delta).max(1.0);
            let rel_pct =
                sample_around(rng, self.avg_reliability_pct, self.delta).clamp(1.0, 100.0);
            env.push(
                rel_pct / 100.0,
                LatencyDistribution::Constant(latency),
                cost,
            )
            .expect("sampled values are in domain");
        }
        env
    }
}

fn sample_around<R: Rng + ?Sized>(rng: &mut R, avg: f64, delta: f64) -> f64 {
    if delta <= 0.0 {
        avg
    } else {
        rng.gen_range(avg - delta / 2.0..avg + delta / 2.0)
    }
}

/// The full set of simulation configurations from the paper's Table III.
///
/// * **exp1** — 4 microservices, Δ = 50, average QoS swept over
///   `[60,60,80] … [90,90,50]` (configs 1–4);
/// * **exp2** — 4 microservices, average `[70,70,70]`, Δ swept over
///   `50, 40, 30, 20` (configs 1–4);
/// * **exp3** — average `[90,90,50]`, Δ = 100, microservice count swept
///   over `3, 4, 5` (configs 1–3).
///
/// Returns `(experiment, config_index, config)` triples in paper order.
#[must_use]
pub fn table3_configurations() -> Vec<(&'static str, usize, RandomEnvConfig)> {
    let mut out = Vec::new();
    for (i, (c, l, r)) in [
        (60.0, 60.0, 80.0),
        (70.0, 70.0, 70.0),
        (80.0, 80.0, 60.0),
        (90.0, 90.0, 50.0),
    ]
    .into_iter()
    .enumerate()
    {
        out.push((
            "exp1",
            i + 1,
            RandomEnvConfig {
                microservices: 4,
                avg_cost: c,
                avg_latency: l,
                avg_reliability_pct: r,
                delta: 50.0,
            },
        ));
    }
    for (i, delta) in [50.0, 40.0, 30.0, 20.0].into_iter().enumerate() {
        out.push((
            "exp2",
            i + 1,
            RandomEnvConfig {
                microservices: 4,
                avg_cost: 70.0,
                avg_latency: 70.0,
                avg_reliability_pct: 70.0,
                delta,
            },
        ));
    }
    for (i, m) in [3usize, 4, 5].into_iter().enumerate() {
        out.push((
            "exp3",
            i + 1,
            RandomEnvConfig {
                microservices: m,
                avg_cost: 90.0,
                avg_latency: 90.0,
                avg_reliability_pct: 50.0,
                delta: 100.0,
            },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn environment_accessors() {
        let mut env = Environment::from_triples(&[(1.0, 2.0, 0.5), (3.0, 4.0, 0.6)]).unwrap();
        assert_eq!(env.len(), 2);
        assert!(!env.is_empty());
        assert_eq!(env.ids(), vec![MsId(0), MsId(1)]);
        assert!(env.get(MsId(1)).is_some());
        assert!(env.get(MsId(2)).is_none());
        let id = env
            .push(0.9, LatencyDistribution::Constant(7.0), 8.0)
            .unwrap();
        assert_eq!(id, MsId(2));
        env.get_mut(MsId(0)).unwrap().cost = 99.0;
        assert_eq!(env.get(MsId(0)).unwrap().cost, 99.0);
        assert_eq!(env.iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "must describe MsId")]
    fn misindexed_models_rejected() {
        let model = MsModel::new(MsId(5), 0.5, LatencyDistribution::Constant(1.0), 1.0).unwrap();
        let _ = Environment::new(vec![model]);
    }

    #[test]
    fn mean_table_matches_models() {
        let env = Environment::from_triples(&[(10.0, 20.0, 0.5), (30.0, 40.0, 0.6)]).unwrap();
        let table = env.mean_qos_table();
        assert_eq!(table.get(MsId(0)).unwrap().cost, 10.0);
        assert_eq!(table.get(MsId(1)).unwrap().latency, 40.0);
    }

    #[test]
    fn random_env_respects_ranges() {
        let cfg = RandomEnvConfig {
            microservices: 50,
            avg_cost: 70.0,
            avg_latency: 70.0,
            avg_reliability_pct: 70.0,
            delta: 40.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let env = cfg.generate(&mut rng);
        assert_eq!(env.len(), 50);
        for model in env.iter() {
            assert!((50.0..=90.0).contains(&model.cost), "cost {}", model.cost);
            let l = model.latency.mean();
            assert!((50.0..=90.0).contains(&l), "latency {l}");
            let r = model.reliability.percent();
            assert!((50.0..=90.0).contains(&r), "reliability {r}");
        }
    }

    #[test]
    fn random_env_clamps_reliability() {
        // exp3: avg 50%, Δ = 100 → raw range [0, 100]; must clamp to ≥ 1%.
        let cfg = RandomEnvConfig {
            microservices: 200,
            avg_cost: 90.0,
            avg_latency: 90.0,
            avg_reliability_pct: 50.0,
            delta: 100.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let env = cfg.generate(&mut rng);
        for model in env.iter() {
            let r = model.reliability.percent();
            assert!((1.0..=100.0).contains(&r));
            assert!(model.cost >= 1.0);
        }
    }

    #[test]
    fn zero_delta_is_deterministic() {
        let cfg = RandomEnvConfig {
            microservices: 3,
            avg_cost: 70.0,
            avg_latency: 70.0,
            avg_reliability_pct: 70.0,
            delta: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let env = cfg.generate(&mut rng);
        for model in env.iter() {
            assert_eq!(model.cost, 70.0);
            assert_eq!(model.latency.mean(), 70.0);
            assert_eq!(model.reliability.percent(), 70.0);
        }
    }

    #[test]
    fn table3_has_eleven_configurations() {
        let configs = table3_configurations();
        assert_eq!(configs.len(), 11);
        assert_eq!(configs.iter().filter(|(e, _, _)| *e == "exp1").count(), 4);
        assert_eq!(configs.iter().filter(|(e, _, _)| *e == "exp2").count(), 4);
        assert_eq!(configs.iter().filter(|(e, _, _)| *e == "exp3").count(), 3);
        // exp3 sweeps the microservice count.
        let exp3: Vec<usize> = configs
            .iter()
            .filter(|(e, _, _)| *e == "exp3")
            .map(|(_, _, c)| c.microservices)
            .collect();
        assert_eq!(exp3, vec![3, 4, 5]);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = table3_configurations()[0].2;
        let a = cfg.generate(&mut ChaCha8Rng::seed_from_u64(42));
        let b = cfg.generate(&mut ChaCha8Rng::seed_from_u64(42));
        assert_eq!(a, b);
    }
}

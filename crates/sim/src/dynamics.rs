//! Resource dynamics: scheduled QoS changes that model mobile devices
//! leaving, energy-harvesting devices browning out, and recoveries.
//!
//! The paper's adaptation experiment (Fig. 8) drops the reliability of
//! `readTempSensor` from 70% to 20% after 230 executions and restores it
//! after 430; the feedback loop must notice and re-generate the strategy.

use serde::{Deserialize, Serialize};

use qce_strategy::MsId;

use crate::environment::Environment;
use crate::microservice::LatencyDistribution;

/// One scheduled change to a microservice's QoS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosChange {
    /// The change takes effect once this many executions have been
    /// recorded (i.e. starting with execution number `after + 1`).
    pub after_executions: u64,
    /// Which microservice changes.
    pub ms: MsId,
    /// What changes.
    pub change: ChangeKind,
}

/// The kinds of QoS drift the simulator can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ChangeKind {
    /// Set the success probability (e.g. a sensor becoming flaky).
    SetReliability(f64),
    /// Replace the latency distribution (e.g. a device switching to a
    /// low-power mode).
    SetLatency(LatencyDistribution),
    /// Set the per-invocation cost (e.g. a provider re-pricing).
    SetCost(f64),
    /// The device leaves entirely: reliability drops to zero.
    Depart,
}

/// An [`Environment`] whose microservice QoS changes at scheduled execution
/// counts.
///
/// # Examples
///
/// ```
/// use qce_sim::{ChangeKind, DynamicEnvironment, Environment, QosChange};
/// use qce_strategy::MsId;
///
/// // Fig. 8: readTempSensor reliability drops to 20% after 230 executions
/// // and recovers to 70% after 430.
/// let base = Environment::from_triples(&[
///     (50.0, 30.0, 0.7),
///     (50.0, 60.0, 0.7),
///     (50.0, 80.0, 0.7),
/// ])?;
/// let mut env = DynamicEnvironment::new(base, vec![
///     QosChange { after_executions: 230, ms: MsId(0), change: ChangeKind::SetReliability(0.2) },
///     QosChange { after_executions: 430, ms: MsId(0), change: ChangeKind::SetReliability(0.7) },
/// ]);
///
/// env.advance(230);
/// assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.2);
/// env.advance(200);
/// assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.7);
/// # Ok::<(), qce_strategy::QosError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicEnvironment {
    current: Environment,
    /// Remaining changes, sorted by `after_executions` ascending.
    pending: Vec<QosChange>,
    executions: u64,
}

impl DynamicEnvironment {
    /// Creates a dynamic environment from a base environment and a change
    /// schedule (applied in `after_executions` order; ties apply in the
    /// order given).
    #[must_use]
    pub fn new(base: Environment, mut schedule: Vec<QosChange>) -> Self {
        schedule.sort_by_key(|c| c.after_executions);
        schedule.reverse(); // pop from the back = earliest first
        DynamicEnvironment {
            current: base,
            pending: schedule,
            executions: 0,
        }
    }

    /// A static environment that never changes.
    #[must_use]
    pub fn from_static(base: Environment) -> Self {
        DynamicEnvironment::new(base, Vec::new())
    }

    /// The environment as of the current execution count.
    #[must_use]
    pub fn current(&self) -> &Environment {
        &self.current
    }

    /// Total executions recorded so far.
    #[must_use]
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Number of scheduled changes that have not fired yet.
    #[must_use]
    pub fn pending_changes(&self) -> usize {
        self.pending.len()
    }

    /// Records one execution, applying any change whose threshold has been
    /// reached. Returns `true` if the environment changed.
    pub fn record_execution(&mut self) -> bool {
        self.advance(1)
    }

    /// Records `n` executions at once. Returns `true` if any change fired.
    pub fn advance(&mut self, n: u64) -> bool {
        self.executions += n;
        let mut changed = false;
        while let Some(next) = self.pending.last() {
            if next.after_executions > self.executions {
                break;
            }
            let change = self.pending.pop().expect("peeked above");
            self.apply(&change);
            changed = true;
        }
        changed
    }

    fn apply(&mut self, change: &QosChange) {
        let Some(model) = self.current.get_mut(change.ms) else {
            // A change for an unknown microservice is ignored rather than
            // panicking: schedules may be written against a superset
            // environment.
            return;
        };
        match change.change {
            ChangeKind::SetReliability(r) => {
                model.reliability = qce_strategy::Reliability::clamped(r);
            }
            ChangeKind::SetLatency(dist) => {
                if dist.validate().is_ok() {
                    model.latency = dist;
                }
            }
            ChangeKind::SetCost(c) => {
                if c.is_finite() && c >= 0.0 {
                    model.cost = c;
                }
            }
            ChangeKind::Depart => {
                model.reliability = qce_strategy::Reliability::NEVER;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Environment {
        Environment::from_triples(&[(50.0, 30.0, 0.7), (50.0, 60.0, 0.7)]).unwrap()
    }

    #[test]
    fn static_environment_never_changes() {
        let mut env = DynamicEnvironment::from_static(base());
        assert!(!env.advance(10_000));
        assert_eq!(env.executions(), 10_000);
        assert_eq!(env.pending_changes(), 0);
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.7);
    }

    #[test]
    fn change_fires_exactly_at_threshold() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![QosChange {
                after_executions: 5,
                ms: MsId(0),
                change: ChangeKind::SetReliability(0.2),
            }],
        );
        assert!(!env.advance(4));
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.7);
        assert!(env.record_execution(), "fires at the 5th execution");
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.2);
        assert!(!env.record_execution());
    }

    #[test]
    fn fig8_drop_and_recovery() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![
                QosChange {
                    after_executions: 430,
                    ms: MsId(0),
                    change: ChangeKind::SetReliability(0.7),
                },
                QosChange {
                    after_executions: 230,
                    ms: MsId(0),
                    change: ChangeKind::SetReliability(0.2),
                },
            ],
        );
        env.advance(230);
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.2);
        env.advance(199);
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.2);
        env.advance(1);
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 0.7);
        assert_eq!(env.pending_changes(), 0);
    }

    #[test]
    fn bulk_advance_applies_all_crossed_changes() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![
                QosChange {
                    after_executions: 10,
                    ms: MsId(0),
                    change: ChangeKind::SetCost(99.0),
                },
                QosChange {
                    after_executions: 20,
                    ms: MsId(1),
                    change: ChangeKind::SetLatency(LatencyDistribution::Constant(5.0)),
                },
            ],
        );
        assert!(env.advance(25));
        assert_eq!(env.current().get(MsId(0)).unwrap().cost, 99.0);
        assert_eq!(env.current().get(MsId(1)).unwrap().latency.mean(), 5.0);
    }

    #[test]
    fn departure_zeroes_reliability() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![QosChange {
                after_executions: 1,
                ms: MsId(1),
                change: ChangeKind::Depart,
            }],
        );
        env.record_execution();
        assert_eq!(env.current().get(MsId(1)).unwrap().reliability.value(), 0.0);
    }

    #[test]
    fn unknown_ms_change_is_ignored() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![QosChange {
                after_executions: 1,
                ms: MsId(42),
                change: ChangeKind::SetCost(1.0),
            }],
        );
        assert!(env.record_execution(), "change fires but is a no-op");
        assert_eq!(env.current(), &base());
    }

    #[test]
    fn invalid_change_values_are_ignored() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![
                QosChange {
                    after_executions: 1,
                    ms: MsId(0),
                    change: ChangeKind::SetCost(-5.0),
                },
                QosChange {
                    after_executions: 1,
                    ms: MsId(0),
                    change: ChangeKind::SetLatency(LatencyDistribution::Constant(-1.0)),
                },
            ],
        );
        env.record_execution();
        assert_eq!(env.current().get(MsId(0)).unwrap().cost, 50.0);
        assert_eq!(env.current().get(MsId(0)).unwrap().latency.mean(), 30.0);
    }

    #[test]
    fn reliability_change_is_clamped() {
        let mut env = DynamicEnvironment::new(
            base(),
            vec![QosChange {
                after_executions: 1,
                ms: MsId(0),
                change: ChangeKind::SetReliability(1.7),
            }],
        );
        env.record_execution();
        assert_eq!(env.current().get(MsId(0)).unwrap().reliability.value(), 1.0);
    }
}

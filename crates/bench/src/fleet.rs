//! `bench-fleet`: the sharded gateway fleet under 10^5 async clients.
//!
//! Each sweep point stands up a [`GatewayFleet`] of 1/8/32 shards on a
//! fresh virtual clock: 40 identically-armed services (two requirement
//! shapes) behind the consistent-hash router, fleet-registered providers,
//! and one shared plan-cache store. The workload runs in waves; per wave,
//! every service takes one sequential blocking *pathfinder* request —
//! serializing the slot re-plans so the plan-cache hit/miss/remote
//! counters are a deterministic function of the rig — followed by one
//! async batch across all services, submitted while a [`WorkerGuard`]
//! pins virtual time so the whole batch starts at the same instant. The
//! batch cycles the request class `Critical → Interactive → Bulk →
//! Scavenger`.
//!
//! Gates (returned as errors *after* the artifacts are written, so CI
//! keys on the exit code but can still inspect the run):
//!
//! * **zero sheds at capacity** — admission is unbounded, so any shed is
//!   a fleet routing/accounting bug;
//! * **every request succeeds** — the providers are reliability-1.0;
//! * **aggregate Critical satisfaction** over all shards stays at or
//!   above the floor (`QCE_FLEET_CRITICAL_MIN_SATISFACTION` overrides it,
//!   which CI uses to prove the gate trips);
//! * **p99 latency** under the ceiling;
//! * **cross-shard plan economics** — every multi-shard point must serve
//!   at least one *remote* plan-cache hit (a plan synthesized on one
//!   shard reused warm by another);
//! * **drained cores** — no shard leaks an in-flight slot or frame.
//!
//! Every reported field is a deterministic function of the rig (virtual
//! time, sequential planning), so CI double-runs the bench and `cmp`s the
//! JSON byte for byte.
//!
//! [`GatewayFleet`]: qce_runtime::GatewayFleet
//! [`WorkerGuard`]: qce_runtime::WorkerGuard

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use qce_runtime::fleet::{FleetConfig, GatewayFleet};
use qce_runtime::{
    Clock, GatewayConfig, InMemoryMarket, MsSpec, QosClass, Request, ServiceScript,
    SimulatedProvider, VirtualClock, WorkerGuard,
};
use qce_strategy::{PlanCacheStats, Qos, Requirements};

use crate::report::{fmt_f, Report};

/// Services sharing the fleet (two requirement shapes, so the shared
/// plan store holds two distinct keys per environment).
const SERVICES: usize = 40;
/// Waves per point; each wave closes every service's slot, so every wave
/// re-plans (warm from the shared store after the first).
const WAVES: usize = 5;
/// Equivalent microservices per service, with capabilities shared across
/// services so one fleet-wide provider set serves everyone.
const ARMS: usize = 3;
/// The full-scale shard sweep.
const SHARD_POINTS: [usize; 3] = [1, 8, 32];
/// Default aggregate-Critical-satisfaction floor
/// (`QCE_FLEET_CRITICAL_MIN_SATISFACTION` overrides it).
const CRITICAL_FLOOR: f64 = 0.99;
/// Client-observed p99 ceiling in virtual milliseconds.
const P99_CEILING_MS: f64 = 50.0;
/// The async batch cycles through the classes in priority order.
const CLASS_MIX: [QosClass; 4] = [
    QosClass::Critical,
    QosClass::Interactive,
    QosClass::Bulk,
    QosClass::Scavenger,
];

fn script(service: &str, shape: usize) -> ServiceScript {
    // Two shapes differing only in requirements: distinct plan-cache
    // keys, identical provider footprint.
    let require = if shape == 0 {
        Requirements::new(1000.0, 1000.0, 0.5)
    } else {
        Requirements::new(600.0, 800.0, 0.5)
    }
    .expect("valid requirements");
    let mut script = ServiceScript::new(
        service,
        (0..ARMS)
            .map(|i| MsSpec {
                name: format!("m{i}"),
                capability: format!("cap{i}"),
                prior: Qos::new(50.0, 2.0 + i as f64, 0.9).expect("valid prior"),
            })
            .collect(),
        require,
    );
    // Slots close explicitly at wave boundaries, never by request count.
    script.slot_size = 1_000_000;
    script
}

/// A fresh fleet on a fresh virtual clock: `shards` shards, shared plan
/// store, 1-hour script TTL (nothing expires mid-run), and one
/// reliability-1.0 clock-bound provider per shared capability.
fn rig(shards: usize) -> (Arc<VirtualClock>, GatewayFleet, Vec<String>) {
    let clock = Arc::new(VirtualClock::new());
    let market = InMemoryMarket::new();
    let services: Vec<String> = (0..SERVICES).map(|i| format!("fleet-svc-{i:02}")).collect();
    for (i, service) in services.iter().enumerate() {
        market
            .publish(script(service, i % 2))
            .expect("scripts validate");
    }
    let config = FleetConfig::default()
        .shards(shards)
        .script_ttl(Duration::from_secs(3600))
        .gateway(GatewayConfig::builder().plan_cache(true).build());
    let fleet = GatewayFleet::with_clock(
        Arc::new(market),
        config,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    for i in 0..ARMS {
        fleet.register(
            SimulatedProvider::builder(format!("dev{i}"), format!("cap{i}"))
                .cost(10.0)
                .latency(Duration::from_millis(1 + i as u64))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
    }
    (clock, fleet, services)
}

/// What one shard point measured. Deterministic by construction.
struct PointOutcome {
    shards: usize,
    clients: usize,
    ok: usize,
    shed: u64,
    critical_requests: u64,
    critical_ok: u64,
    p50: Duration,
    p99: Duration,
    critical_p99: Duration,
    makespan: Duration,
    plan: PlanCacheStats,
    script_hits: u64,
    script_misses: u64,
    script_expired: u64,
    drained: bool,
}

impl PointOutcome {
    fn critical_satisfaction(&self) -> f64 {
        if self.critical_requests == 0 {
            1.0
        } else {
            self.critical_ok as f64 / self.critical_requests as f64
        }
    }

    fn row(&self, report: &mut Report) {
        report.row([
            self.shards.to_string(),
            self.clients.to_string(),
            self.ok.to_string(),
            self.shed.to_string(),
            fmt_f(self.critical_satisfaction(), 4),
            fmt_f(millis(self.p50), 3),
            fmt_f(millis(self.p99), 3),
            fmt_f(millis(self.makespan), 3),
            self.plan.hits.to_string(),
            self.plan.remote_hits.to_string(),
            self.plan.misses.to_string(),
            self.script_misses.to_string(),
        ]);
    }

    fn json(&self) -> String {
        format!(
            "{{\"shards\": {}, \"clients\": {}, \"ok\": {}, \"shed\": {}, \
             \"critical\": {{\"requests\": {}, \"ok\": {}, \"satisfaction\": {}, \
             \"p99_ms\": {}}}, \"p50_ms\": {}, \"p99_ms\": {}, \"makespan_ms\": {}, \
             \"plan_cache\": {{\"hits\": {}, \"remote_hits\": {}, \"misses\": {}, \
             \"stale\": {}}}, \"script_cache\": {{\"hits\": {}, \"misses\": {}, \
             \"expired\": {}}}}}",
            self.shards,
            self.clients,
            self.ok,
            self.shed,
            self.critical_requests,
            self.critical_ok,
            fmt_f(self.critical_satisfaction(), 4),
            fmt_f(millis(self.critical_p99), 3),
            fmt_f(millis(self.p50), 3),
            fmt_f(millis(self.p99), 3),
            fmt_f(millis(self.makespan), 3),
            self.plan.hits,
            self.plan.remote_hits,
            self.plan.misses,
            self.plan.stale,
            self.script_hits,
            self.script_misses,
            self.script_expired,
        )
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Drives one shard point: `WAVES` waves of sequential pathfinders plus
/// pinned async batches totalling ~`max_clients` async requests.
fn point(shards: usize, max_clients: usize) -> io::Result<PointOutcome> {
    let fail =
        |message: String| io::Error::other(format!("bench-fleet [{shards} shard(s)]: {message}"));
    let per_service = (max_clients / (WAVES * SERVICES)).max(1);
    let (clock, fleet, services) = rig(shards);

    // Wave 0 (slot 0): one pathfinder per service establishes identical
    // observations everywhere — the seed for the shared plan keys.
    for service in &services {
        let response = fleet
            .submit(Request::new(service.as_str()))
            .map_err(|error| fail(format!("slot-0 pathfinder failed: {error}")))?;
        if !response.success {
            return Err(fail(format!(
                "slot-0 pathfinder on {service} did not succeed"
            )));
        }
    }
    for service in &services {
        fleet.end_slot(service);
    }

    let mut clients = 0usize;
    let mut ok = 0usize;
    let mut latencies = Vec::with_capacity(WAVES * SERVICES * per_service);
    let mut critical_latencies = Vec::new();
    let mut class_cursor = 0usize;
    for _ in 0..WAVES {
        // Sequential pathfinders: the wave's re-plans happen one at a
        // time, so cold stores, local hits, and remote hits land in a
        // deterministic order.
        for service in &services {
            let response = fleet
                .submit(Request::new(service.as_str()))
                .map_err(|error| fail(format!("pathfinder failed: {error}")))?;
            if !response.success {
                return Err(fail(format!("pathfinder on {service} did not succeed")));
            }
        }
        // The async batch: everything submitted at one pinned virtual
        // instant, classes cycled deterministically.
        let handles = {
            let _pin = WorkerGuard::enter(clock.as_ref());
            let mut handles = Vec::with_capacity(SERVICES * per_service);
            for service in &services {
                for _ in 0..per_service {
                    let class = CLASS_MIX[class_cursor % CLASS_MIX.len()];
                    class_cursor += 1;
                    let handle = fleet
                        .submit_async(Request::new(service.as_str()).class(class))
                        .map_err(|error| fail(format!("async submission failed: {error}")))?;
                    handles.push((class, handle));
                }
            }
            handles
        };
        for (class, handle) in handles {
            let response = handle
                .wait()
                .map_err(|error| fail(format!("async request failed: {error}")))?;
            clients += 1;
            if response.success {
                ok += 1;
            }
            latencies.push(response.latency);
            if class == QosClass::Critical {
                critical_latencies.push(response.latency);
            }
        }
        for service in &services {
            fleet.end_slot(service);
        }
    }
    latencies.sort();
    critical_latencies.sort();

    // Aggregate over every shard's telemetry.
    let mut shed = 0u64;
    let mut critical_requests = 0u64;
    let mut critical_ok = 0u64;
    let mut drained = true;
    for shard in fleet.shards() {
        let snapshot = shard.gateway().telemetry().snapshot();
        for service in &snapshot.services {
            shed += service.requests_shed;
            if let Some(critical) = service.class(QosClass::Critical) {
                critical_requests += critical.requests;
                critical_ok += critical.successes;
            }
        }
        let engine = shard.engine_stats();
        drained &= engine.in_flight == 0 && engine.frames_live == 0;
    }
    let stats = fleet.stats();

    Ok(PointOutcome {
        shards,
        clients,
        ok,
        shed,
        critical_requests,
        critical_ok,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        critical_p99: percentile(&critical_latencies, 99.0),
        makespan: clock.now(),
        plan: stats.plan_cache,
        script_hits: stats.market.hits,
        script_misses: stats.market.misses,
        script_expired: stats.market.expired,
        drained,
    })
}

/// Appends every gate violation of `outcome` to `violations`.
fn check_gates(outcome: &PointOutcome, floor: f64, violations: &mut Vec<String>) {
    let shards = outcome.shards;
    if outcome.shed > 0 {
        violations.push(format!(
            "{shards} shard(s): {} request(s) shed with unbounded admission",
            outcome.shed
        ));
    }
    if outcome.ok != outcome.clients {
        violations.push(format!(
            "{shards} shard(s): {}/{} async requests succeeded",
            outcome.ok, outcome.clients
        ));
    }
    if outcome.critical_satisfaction() < floor {
        violations.push(format!(
            "{shards} shard(s): Critical satisfaction {} below floor {}",
            fmt_f(outcome.critical_satisfaction(), 4),
            fmt_f(floor, 4)
        ));
    }
    if millis(outcome.p99) > P99_CEILING_MS {
        violations.push(format!(
            "{shards} shard(s): p99 {} ms above ceiling {} ms",
            fmt_f(millis(outcome.p99), 3),
            fmt_f(P99_CEILING_MS, 3)
        ));
    }
    if shards > 1 && outcome.plan.remote_hits == 0 {
        violations.push(format!(
            "{shards} shard(s): no remote plan-cache hit — cross-shard sharing is dead"
        ));
    }
    if !outcome.drained {
        violations.push(format!(
            "{shards} shard(s): a shard's event core was not drained after the run"
        ));
    }
}

/// [`run`] with an explicit Critical-satisfaction floor (the public entry
/// reads it from `QCE_FLEET_CRITICAL_MIN_SATISFACTION`). Artifacts are
/// written before any gate error is returned.
fn run_with_floor(
    reports: &Path,
    json_out: &Path,
    max_clients: usize,
    shards: Option<usize>,
    floor: f64,
) -> io::Result<()> {
    let points: Vec<usize> = match shards {
        Some(n) if n <= 1 => vec![1],
        Some(n) => vec![1, n],
        None => SHARD_POINTS.to_vec(),
    };

    let mut outcomes = Vec::with_capacity(points.len());
    let mut violations = Vec::new();
    for shards in points {
        let outcome = point(shards, max_clients)?;
        check_gates(&outcome, floor, &mut violations);
        outcomes.push(outcome);
    }

    let clients = outcomes.first().map_or(0, |o| o.clients);
    let mut report = Report::new(
        format!(
            "bench-fleet: {clients} async clients x {} shard point(s), \
             {SERVICES} services, {WAVES} waves",
            outcomes.len()
        ),
        &[
            "shards",
            "clients",
            "ok",
            "shed",
            "crit_sat",
            "p50_ms",
            "p99_ms",
            "makespan_ms",
            "plan_hits",
            "plan_remote",
            "plan_miss",
            "script_fetch",
        ],
    );
    for outcome in &outcomes {
        outcome.row(&mut report);
    }
    report.note(format!(
        "per wave: {SERVICES} sequential pathfinder re-plans, then one pinned async \
         batch of {} requests cycling Critical/Interactive/Bulk/Scavenger",
        clients / WAVES.max(1),
    ));
    report.note(
        "plan_remote counts plans synthesized on one shard and served warm to \
         another through the shared store",
    );
    report.emit(reports, "bench_fleet")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-fleet\",\n  \"services\": {SERVICES},\n  \
         \"waves\": {WAVES},\n  \"arms\": {ARMS},\n  \"async_clients_per_point\": {clients},\n  \
         \"points\": [\n    {}\n  ]\n}}\n",
        outcomes
            .iter()
            .map(PointOutcome::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    if let Some(parent) = json_out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(json_out, json)?;
    println!("bench-fleet: wrote {}", json_out.display());

    if violations.is_empty() {
        Ok(())
    } else {
        Err(io::Error::other(format!(
            "bench-fleet gate failed:\n  {}",
            violations.join("\n  ")
        )))
    }
}

/// Runs the shard sweep (1/8/32, or `[1, N]` when `--shards N` caps it)
/// and writes `reports/bench_fleet.tsv` plus `json_out` (committed as
/// `BENCH_fleet.json`).
///
/// # Errors
///
/// Returns an I/O error if an artifact cannot be written — or, after the
/// artifacts are written so CI can key on the exit code, if any point
/// sheds or fails a request, misses the Critical satisfaction floor or
/// the p99 ceiling, serves no remote plan-cache hit on a multi-shard
/// point, or leaves a shard's event core undrained (see the module docs).
pub fn run(
    reports: &Path,
    json_out: &Path,
    max_clients: usize,
    shards: Option<usize>,
) -> io::Result<()> {
    let floor = std::env::var("QCE_FLEET_CRITICAL_MIN_SATISFACTION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(CRITICAL_FLOOR);
    run_with_floor(reports, json_out, max_clients, shards, floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_serves_everyone_and_shares_plans_across_shards() {
        let outcome = point(2, 200).unwrap();
        assert_eq!(outcome.clients, WAVES * SERVICES); // one per service per wave
        assert_eq!(outcome.ok, outcome.clients);
        assert_eq!(outcome.shed, 0);
        assert!(outcome.drained);
        assert!(
            outcome.plan.remote_hits > 0,
            "40 services over 2 shards must reuse plans remotely: {:?}",
            outcome.plan
        );
        assert!(outcome.critical_requests > 0);
        assert_eq!(outcome.critical_ok, outcome.critical_requests);
    }

    #[test]
    fn single_shard_point_has_no_remote_hits() {
        let outcome = point(1, 200).unwrap();
        assert_eq!(outcome.ok, outcome.clients);
        assert_eq!(
            outcome.plan.remote_hits, 0,
            "one shard, one view: every hit is local"
        );
        assert!(outcome.plan.hits > 0);
    }

    #[test]
    fn run_writes_deterministic_json() {
        let dir = std::env::temp_dir().join(format!("qce-fleet-{}", std::process::id()));
        let json = dir.join("BENCH_fleet.json");
        run_with_floor(&dir, &json, 200, Some(2), CRITICAL_FLOOR).unwrap();
        let first = std::fs::read_to_string(&json).unwrap();
        assert!(first.contains("\"benchmark\": \"bench-fleet\""));
        assert!(first.contains("\"remote_hits\""));
        let tsv = std::fs::read_to_string(dir.join("bench_fleet.tsv")).unwrap();
        assert!(tsv.contains("plan_remote"));
        run_with_floor(&dir, &json, 200, Some(2), CRITICAL_FLOOR).unwrap();
        let second = std::fs::read_to_string(&json).unwrap();
        assert_eq!(first, second, "fleet JSON must reproduce byte-for-byte");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn impossible_critical_floor_trips_the_gate_after_writing_artifacts() {
        let dir = std::env::temp_dir().join(format!("qce-fleet-gate-{}", std::process::id()));
        let json = dir.join("BENCH_fleet.json");
        let error = run_with_floor(&dir, &json, 200, Some(1), 1.1).unwrap_err();
        assert!(
            error.to_string().contains("Critical satisfaction"),
            "unexpected gate message: {error}"
        );
        assert!(
            json.exists(),
            "artifacts must be written before the gate trips"
        );
        assert!(dir.join("bench_fleet.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Reproduction of **Fig. 6**: utilities of *generated* strategies
//! (exhaustive search and approximation heuristic) versus the *predefined*
//! patterns (fail-over, speculative parallel) across the Table III
//! configurations.
//!
//! The paper's findings to reproduce:
//!
//! * generated strategies clearly outperform the predefined ones
//!   (Fig. 6a–c);
//! * exhaustive and approximation produce strategies of comparable utility;
//! * the number of QoS-satisfied services roughly doubles under generation
//!   (Fig. 6d), and average utility rises (Fig. 6e);
//! * performance depends on the number of microservices and their average
//!   QoS, but not on the range Δ.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{table3_configurations, RandomEnvConfig};
use qce_strategy::{Generated, Generator};

use crate::fig5::sim_requirements;
use crate::report::{fmt_f, Report};

/// The four strategy sources compared in Fig. 6.
pub const METHODS: [&str; 4] = [
    "exhaustive",
    "approximation",
    "failover (script order)",
    "parallel",
];

/// Per-configuration aggregate for one generation method.
#[derive(Debug, Clone, Copy, Default)]
pub struct MethodStats {
    /// Services whose chosen strategy satisfies every QoS requirement
    /// (judged on the estimated QoS, as in the paper).
    pub satisfied: usize,
    /// Sum of utilities (divide by services for the average).
    pub utility_sum: f64,
}

/// Result of running one Table III configuration.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// Experiment name (`exp1` …).
    pub exp: &'static str,
    /// 1-based configuration index within the experiment.
    pub cfg: usize,
    /// Stats per method, in [`METHODS`] order.
    pub stats: [MethodStats; 4],
    /// Number of simulated services.
    pub services: usize,
}

impl ConfigResult {
    /// `satisfied(generated) / satisfied(best predefined)`, the paper's
    /// headline ≈2× ratio. `None` when no predefined strategy satisfies any
    /// service.
    #[must_use]
    pub fn satisfaction_ratio(&self) -> Option<f64> {
        let generated = self.stats[0].satisfied.max(self.stats[1].satisfied);
        let predefined = self.stats[2].satisfied.max(self.stats[3].satisfied);
        (predefined > 0).then(|| generated as f64 / predefined as f64)
    }
}

/// Runs one configuration: `services` random environments, each planned by
/// all four methods.
#[must_use]
pub fn run_config(
    exp: &'static str,
    cfg: usize,
    config: &RandomEnvConfig,
    services: usize,
    seed: u64,
) -> ConfigResult {
    let requirements = sim_requirements();
    let generator = Generator::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut stats = [MethodStats::default(); 4];
    for _ in 0..services {
        let env = config.generate(&mut rng).mean_qos_table();
        let ids = env.ids();
        let outputs: [Generated; 4] = [
            generator
                .exhaustive(&env, &ids, &requirements)
                .expect("valid environment"),
            generator
                .approximation(&env, &ids, &requirements)
                .expect("valid environment"),
            generator
                .failover_in_order(&env, &ids, &requirements)
                .expect("valid environment"),
            generator
                .speculative_parallel(&env, &ids, &requirements)
                .expect("valid environment"),
        ];
        for (slot, generated) in stats.iter_mut().zip(outputs) {
            if requirements.satisfied_by(&generated.qos) {
                slot.satisfied += 1;
            }
            slot.utility_sum += generated.utility;
        }
    }
    ConfigResult {
        exp,
        cfg,
        stats,
        services,
    }
}

/// Runs the full Fig. 6 reproduction over all Table III configurations and
/// writes `fig6.tsv`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(reports: &Path, services: usize, seed: u64) -> std::io::Result<()> {
    let mut report = Report::new(
        format!("Fig. 6: generated vs predefined strategies ({services} services/config)"),
        &[
            "exp",
            "cfg",
            "sat exh",
            "sat approx",
            "sat failover",
            "sat parallel",
            "avgU exh",
            "avgU approx",
            "avgU failover",
            "avgU parallel",
            "sat ratio",
        ],
    );

    let mut ratios = Vec::new();
    for (exp, cfg, config) in table3_configurations() {
        let result = run_config(exp, cfg, &config, services, seed ^ ((cfg as u64) << 16));
        if let Some(r) = result.satisfaction_ratio() {
            ratios.push(r);
        }
        let n = result.services as f64;
        report.row([
            exp.to_string(),
            cfg.to_string(),
            result.stats[0].satisfied.to_string(),
            result.stats[1].satisfied.to_string(),
            result.stats[2].satisfied.to_string(),
            result.stats[3].satisfied.to_string(),
            fmt_f(result.stats[0].utility_sum / n, 3),
            fmt_f(result.stats[1].utility_sum / n, 3),
            fmt_f(result.stats[2].utility_sum / n, 3),
            fmt_f(result.stats[3].utility_sum / n, 3),
            result
                .satisfaction_ratio()
                .map_or_else(|| "-".to_string(), |r| fmt_f(r, 2)),
        ]);
    }
    if !ratios.is_empty() {
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
        report.note(format!(
            "mean satisfied-services ratio (generated / best predefined): {mean_ratio:.2}x \
             (paper reports ~2x)"
        ));
    }
    report.note("satisfaction judged on estimated QoS, as in the paper");
    report.emit(reports, "fig6")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp1_cfg1() -> RandomEnvConfig {
        RandomEnvConfig {
            microservices: 4,
            avg_cost: 60.0,
            avg_latency: 60.0,
            avg_reliability_pct: 80.0,
            delta: 50.0,
        }
    }

    #[test]
    fn generated_dominates_predefined_on_utility() {
        let result = run_config("exp1", 1, &exp1_cfg1(), 15, 1);
        let [exh, approx, failover, parallel] = result.stats;
        assert!(
            exh.utility_sum >= approx.utility_sum - 1e-9,
            "exhaustive is optimal"
        );
        assert!(exh.utility_sum > failover.utility_sum);
        assert!(exh.utility_sum > parallel.utility_sum);
    }

    #[test]
    fn generated_satisfies_at_least_as_many_services() {
        let result = run_config("exp1", 1, &exp1_cfg1(), 15, 2);
        let generated = result.stats[0].satisfied;
        let predefined = result.stats[2].satisfied.max(result.stats[3].satisfied);
        assert!(generated >= predefined);
    }

    #[test]
    fn approximation_close_to_exhaustive() {
        // Paper: "the exhaustive search and Approximation produce strategies
        // with comparable performance".
        let result = run_config("exp1", 1, &exp1_cfg1(), 20, 3);
        let exh_avg = result.stats[0].utility_sum / 20.0;
        let approx_avg = result.stats[1].utility_sum / 20.0;
        assert!(
            exh_avg - approx_avg < 0.5,
            "gap {:.3}",
            exh_avg - approx_avg
        );
    }

    #[test]
    fn run_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-fig6-{}", std::process::id()));
        run(&dir, 3, 4).unwrap();
        assert!(dir.join("fig6.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro <experiment> [options]
//!
//! experiments:
//!   table1        Table I   strategy counts
//!   table2        Table II  example strategy QoS (+ §III.C.3 example)
//!   fig5          Fig. 5    utility of all strategies per Table III config
//!   estimation    §V.A.2    estimator vs virtual-time measurement
//!   fig6          Fig. 6    generated vs predefined strategies
//!   fig7          Fig. 7    generation scaling for M > 5
//!   table4        Table IV  testbed default vs generated
//!   fig8          Fig. 8    per-slot QoS under reliability drift
//!   ablations     design-choice ablations (k, window, cost, latency shapes)
//!   contention    §VII scarce-resource contention
//!   bench-synth   synthesis engine: baseline vs pruned/parallel exhaustive search
//!   bench-replan  slot re-planning: cold vs warm-start vs plan-cache
//!   bench-throughput  gateway concurrency: N clients, admission control, worker pool
//!   bench-fleet   sharded gateway fleet: consistent-hash routing, shared plan store
//!   bench-scenarios   adversarial scenario pack: storms, flash crowds, churn + QoS gate
//!   all           everything above
//!
//! options:
//!   --services N      random services per configuration   (default 100)
//!   --runs N          executions per strategy, estimation  (default 300)
//!   --strategies N    strategies validated, estimation     (default 100)
//!   --max-m N         largest M for fig7                   (default 10)
//!   --exhaustive-m N  largest M searched exhaustively      (default 6)
//!   --per-slot N      invocations per slot, table4/fig8    (default 100)
//!   --slots N         slots for fig8/bench-replan          (default 8)
//!   --latency-scale F testbed latency multiplier           (default 0.05)
//!   --seed N          RNG seed                             (default 2020)
//!   --reports DIR     report directory                     (default reports)
//!   --sweep           bench-throughput: 10^2..10^5 async-client sweep
//!   --max-clients N   largest sweep point / fleet clients  (default 100000)
//!   --shards N        bench-fleet: cap the shard sweep at [1, N]
//!   --quick           small preset for smoke runs
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Options {
    services: usize,
    runs: u32,
    strategies: usize,
    max_m: usize,
    exhaustive_m: usize,
    per_slot: u32,
    slots: u32,
    latency_scale: f64,
    seed: u64,
    reports: PathBuf,
    sweep: bool,
    max_clients: usize,
    shards: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            services: 100,
            runs: 300,
            strategies: 100,
            max_m: 10,
            exhaustive_m: 6,
            per_slot: 100,
            slots: 8,
            latency_scale: 0.05,
            seed: 2020,
            reports: PathBuf::from("reports"),
            sweep: false,
            max_clients: 100_000,
            shards: None,
        }
    }
}

impl Options {
    fn quick(mut self) -> Self {
        self.services = 10;
        self.runs = 300;
        self.strategies = 20;
        self.max_m = 8;
        self.exhaustive_m = 6;
        self.per_slot = 50;
        self.slots = 7;
        // Below ~1 ms the scheduler's sleep granularity distorts measured
        // latency, so quick mode keeps the default scale.
        self.latency_scale = 0.05;
        self
    }
}

fn parse(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut experiments = Vec::new();
    let mut options = Options::default();
    let mut quick = false;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| -> Result<String, String> {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} expects a value"))
        };
        match arg.as_str() {
            "--services" => {
                options.services = value("--services")?
                    .parse()
                    .map_err(|e| format!("--services: {e}"))?
            }
            "--runs" => {
                options.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("--runs: {e}"))?
            }
            "--strategies" => {
                options.strategies = value("--strategies")?
                    .parse()
                    .map_err(|e| format!("--strategies: {e}"))?
            }
            "--max-m" => {
                options.max_m = value("--max-m")?
                    .parse()
                    .map_err(|e| format!("--max-m: {e}"))?
            }
            "--exhaustive-m" => {
                options.exhaustive_m = value("--exhaustive-m")?
                    .parse()
                    .map_err(|e| format!("--exhaustive-m: {e}"))?
            }
            "--per-slot" => {
                options.per_slot = value("--per-slot")?
                    .parse()
                    .map_err(|e| format!("--per-slot: {e}"))?
            }
            "--slots" => {
                options.slots = value("--slots")?
                    .parse()
                    .map_err(|e| format!("--slots: {e}"))?
            }
            "--latency-scale" => {
                options.latency_scale = value("--latency-scale")?
                    .parse()
                    .map_err(|e| format!("--latency-scale: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--reports" => options.reports = PathBuf::from(value("--reports")?),
            "--sweep" => options.sweep = true,
            "--max-clients" => {
                options.max_clients = value("--max-clients")?
                    .parse()
                    .map_err(|e| format!("--max-clients: {e}"))?
            }
            "--shards" => {
                options.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?,
                )
            }
            "--quick" => quick = true,
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            experiment => experiments.push(experiment.to_string()),
        }
    }
    if quick {
        options = options.quick();
    }
    if experiments.is_empty() {
        return Err("no experiment named; try `repro all`".to_string());
    }
    Ok((experiments, options))
}

fn run_experiment(name: &str, options: &Options) -> std::io::Result<bool> {
    let reports = &options.reports;
    match name {
        "table1" => qce_bench::table1::run(reports)?,
        "table2" => qce_bench::table2::run(reports)?,
        "fig5" => qce_bench::fig5::run(reports, options.services, options.seed)?,
        "estimation" => {
            qce_bench::estimation::run(reports, options.strategies, options.runs, options.seed)?
        }
        "fig6" => qce_bench::fig6::run(reports, options.services, options.seed)?,
        "fig7" => qce_bench::fig7::run(
            reports,
            options.services.min(20),
            options.max_m,
            options.exhaustive_m,
            options.seed,
        )?,
        "table4" => qce_bench::table4::run(reports, options.per_slot, options.latency_scale)?,
        "fig8" => qce_bench::fig8::run(
            reports,
            options.slots,
            options.per_slot,
            options.latency_scale,
        )?,
        "ablations" => {
            qce_bench::ablation::run(reports, options.per_slot.min(50), options.latency_scale)?
        }
        "contention" => qce_bench::contention::run(reports, 6, options.per_slot.min(30))?,
        "bench-synth" => qce_bench::synth::run(
            reports,
            std::path::Path::new("BENCH_synth.json"),
            options.exhaustive_m,
            options.services.min(10),
            options.seed,
        )?,
        "bench-replan" => qce_bench::replan::run(
            reports,
            std::path::Path::new("BENCH_replan.json"),
            options.exhaustive_m,
            options.slots as usize,
            options.seed,
        )?,
        "bench-throughput" => {
            if options.sweep {
                qce_bench::throughput::run_sweep(
                    reports,
                    std::path::Path::new("BENCH_throughput.json"),
                    options.max_clients,
                )?
            } else {
                qce_bench::throughput::run(
                    reports,
                    std::path::Path::new("BENCH_throughput.json"),
                    8,
                )?
            }
        }
        "bench-fleet" => qce_bench::fleet::run(
            reports,
            std::path::Path::new("BENCH_fleet.json"),
            options.max_clients,
            options.shards,
        )?,
        "bench-scenarios" => qce_bench::scenarios::run(
            reports,
            std::path::Path::new("BENCH_scenarios.json"),
            options.per_slot / 2,
        )?,
        _ => return Ok(false),
    }
    Ok(true)
}

const ALL: [&str; 15] = [
    "table1",
    "table2",
    "fig5",
    "estimation",
    "fig6",
    "fig7",
    "table4",
    "fig8",
    "ablations",
    "contention",
    "bench-synth",
    "bench-replan",
    "bench-throughput",
    "bench-fleet",
    "bench-scenarios",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (experiments, options) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!(
                "usage: repro <table1|table2|fig5|estimation|fig6|fig7|table4|fig8|bench-synth|bench-replan|bench-throughput|bench-fleet|bench-scenarios|all> [options]"
            );
            return ExitCode::FAILURE;
        }
    };

    let list: Vec<&str> = if experiments.iter().any(|e| e == "all") {
        ALL.to_vec()
    } else {
        experiments.iter().map(String::as_str).collect()
    };

    for name in list {
        let started = std::time::Instant::now();
        match run_experiment(name, &options) {
            Ok(true) => {
                println!("[{name} completed in {:.1?}]\n", started.elapsed());
            }
            Ok(false) => {
                eprintln!("error: unknown experiment {name:?}");
                return ExitCode::FAILURE;
            }
            Err(error) => {
                eprintln!("error: {name} failed: {error}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("reports written to {}", options.reports.display());
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parse_defaults() {
        let (experiments, options) = parse(&args(&["all"])).unwrap();
        assert_eq!(experiments, vec!["all".to_string()]);
        assert_eq!(options.services, 100);
        assert_eq!(options.seed, 2020);
    }

    #[test]
    fn parse_options_and_quick() {
        let (experiments, options) = parse(&args(&[
            "fig6",
            "fig7",
            "--services",
            "7",
            "--seed",
            "9",
            "--quick",
        ]))
        .unwrap();
        assert_eq!(experiments.len(), 2);
        // --quick overrides scale knobs but not the seed.
        assert_eq!(options.services, 10);
        assert_eq!(options.seed, 9);
    }

    #[test]
    fn parse_fleet_flags() {
        let (experiments, options) = parse(&args(&[
            "bench-fleet",
            "--shards",
            "4",
            "--max-clients",
            "1000",
        ]))
        .unwrap();
        assert_eq!(experiments, vec!["bench-fleet".to_string()]);
        assert_eq!(options.shards, Some(4));
        assert_eq!(options.max_clients, 1000);
        let (_, options) = parse(&args(&["bench-fleet"])).unwrap();
        assert_eq!(options.shards, None, "full 1/8/32 sweep by default");
        assert!(parse(&args(&["bench-fleet", "--shards", "x"])).is_err());
        assert!(parse(&args(&["bench-fleet", "--shards"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&args(&[])).is_err());
        assert!(parse(&args(&["--services"])).is_err());
        assert!(parse(&args(&["--bogus", "1"])).is_err());
        assert!(parse(&args(&["fig5", "--services", "many"])).is_err());
    }

    #[test]
    fn unknown_experiment_is_reported() {
        let options = Options::default().quick();
        assert!(!run_experiment("nonsense", &options).unwrap());
    }

    #[test]
    fn all_list_covers_every_dispatch_arm() {
        // Guard against adding an experiment to the dispatcher but not to
        // `ALL` (or vice versa): every ALL entry must dispatch.
        for name in ALL {
            assert_ne!(name, "all");
        }
        assert_eq!(ALL.len(), 15);
    }
}

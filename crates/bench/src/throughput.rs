//! `bench-throughput`: the gateway's concurrency story under load.
//!
//! N concurrent clients hammer *one* service whose Par-heavy strategy
//! (`a*b*c`) runs on the gateway's shared [`ExecutionEngine`] worker pool,
//! with microservice `a` under a fault plan (crashed from `t = 0`, so every
//! request is charged a failing leg). Three phases on fresh virtual-time
//! harnesses:
//!
//! 1. **sequential baseline** — one client issues all requests
//!    back-to-back; its per-request outcomes are the ground truth.
//! 2. **concurrent, unbounded admission** — N clients issue the same
//!    requests at once. The bench *fails* (non-zero exit, for CI) unless
//!    (a) nothing was shed at this low load, (b) every per-request outcome
//!    (success, payload, cost, latency, slot, votes, strategy) is
//!    bit-identical to the baseline's, and (c) the concurrent makespan is
//!    below 2x one request's makespan — i.e. same-service requests really
//!    ran in parallel.
//! 3. **concurrent, bounded admission** — `max_in_flight = 2` with a
//!    2-deep admission queue sheds the overflow; the report shows the shed
//!    rate, client-observed p50/p99 latency (queueing included), and
//!    worker-pool occupancy.
//!
//! All three phases are deterministic in *outcome* because the providers
//! are time-independent (reliability 0 or 1, constant fault condition):
//! thread interleaving can stagger virtual start times but can never
//! change what a request returns.
//!
//! [`ExecutionEngine`]: qce_runtime::ExecutionEngine

use std::io;
use std::path::Path;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use qce_runtime::{
    Clock, FaultEvent, FaultKind, FaultPlan, GatewayConfig, Harness, MsSpec, PoolStats, Request,
    RuntimeError, ServiceResponse, ServiceScript, SimulatedProvider, WorkerGuard,
};
use qce_strategy::{Qos, Requirements};

use crate::report::{fmt_f, fmt_pct, Report};

/// The one service every client invokes.
const SERVICE: &str = "relay";
/// The forced slot-0 strategy: all three legs race.
const STRATEGY: &str = "a*b*c";
/// The winning leg's latency (microservice `b`).
const WINNER_MS: u64 = 4;
/// The slowest leg's latency (microservice `c`): one request's makespan.
const SLOWEST_MS: u64 = 8;

/// Everything that identifies one request's outcome. Two runs are
/// equivalent iff they produce the same multiset of keys.
type OutcomeKey = (
    bool,
    Option<Vec<u8>>,
    u64,
    Duration,
    Option<(usize, usize)>,
    u64,
    String,
);

fn key(response: &ServiceResponse) -> OutcomeKey {
    (
        response.success,
        response.payload.clone(),
        response.cost.to_bits(),
        response.latency,
        response.votes,
        response.slot,
        response.strategy_text.clone(),
    )
}

fn script() -> ServiceScript {
    let prior = Qos::new(10.0, 10.0, 0.9).expect("valid prior");
    let spec = |name: &str| MsSpec {
        name: name.into(),
        capability: format!("cap-{name}"),
        prior,
    };
    let mut script = ServiceScript::new(
        SERVICE,
        vec![spec("a"), spec("b"), spec("c")],
        Requirements::new(1000.0, 1000.0, 0.5).expect("valid requirements"),
    );
    // Pin the slot-0 plan so every request in every phase runs the same
    // Par-heavy strategy, and make the slot outlast the whole bench so the
    // generator never re-plans mid-run.
    script.default_strategy = Some(STRATEGY.into());
    script.slot_size = 1_000;
    script
}

/// A fresh virtual-time rig: `a` crashed from `t = 0` (fails instantly,
/// still charged), `b` the 4 ms winner, `c` an 8 ms charged loser.
fn rig(config: GatewayConfig) -> Harness {
    rig_scripted(config, script())
}

/// [`rig`] with a caller-supplied script — the sweep widens the slot so
/// a 10^5-request batch stays on the slot-0 strategy.
fn rig_scripted(config: GatewayConfig, script: ServiceScript) -> Harness {
    let crashed_forever = FaultPlan::new(vec![FaultEvent {
        at: Duration::ZERO,
        kind: FaultKind::Crash,
    }]);
    let device = |name: &str, ms: u64| {
        SimulatedProvider::builder(format!("dev-{name}/cap-{name}"), format!("cap-{name}"))
            .latency(Duration::from_millis(ms))
            .cost(10.0)
            .reliability(1.0)
            .response(name.as_bytes().to_vec())
    };
    Harness::builder()
        .script(script)
        .config(config)
        .faulty(device("a", 2), crashed_forever)
        .provider(device("b", WINNER_MS))
        .provider(device("c", SLOWEST_MS))
        .build()
}

/// What one phase measured.
struct Phase {
    clients: usize,
    requests: usize,
    ok: usize,
    shed: u64,
    makespan: Duration,
    /// Client-observed latencies of successful requests (admission wait
    /// included), sorted ascending.
    latencies: Vec<Duration>,
    keys: Vec<OutcomeKey>,
    pool: PoolStats,
    queue_peak: u64,
}

impl Phase {
    fn row(&self, name: &str, report: &mut Report) {
        report.row([
            name.to_string(),
            self.clients.to_string(),
            self.requests.to_string(),
            self.ok.to_string(),
            self.shed.to_string(),
            fmt_f(millis(self.makespan), 3),
            fmt_f(millis(percentile(&self.latencies, 50.0)), 3),
            fmt_f(millis(percentile(&self.latencies, 99.0)), 3),
            self.pool.peak_running.to_string(),
            self.pool.spilled.to_string(),
            self.queue_peak.to_string(),
        ]);
    }

    fn json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \
             \"shed_rate\": {}, \"makespan_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"pool\": {{\"capacity\": {}, \"peak_running\": {}, \"submitted\": {}, \
             \"spilled\": {}}}, \"queue_peak\": {}}}",
            self.clients,
            self.requests,
            self.ok,
            self.shed,
            fmt_f(self.shed as f64 / self.requests.max(1) as f64, 4),
            fmt_f(millis(self.makespan), 3),
            fmt_f(millis(percentile(&self.latencies, 50.0)), 3),
            fmt_f(millis(percentile(&self.latencies, 99.0)), 3),
            self.pool.capacity,
            self.pool.peak_running,
            self.pool.submitted,
            self.pool.spilled,
            self.queue_peak,
        )
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Collects a finished harness + per-client results into a [`Phase`].
fn collect(
    harness: &Harness,
    clients: usize,
    results: Vec<(Duration, Result<ServiceResponse, RuntimeError>)>,
) -> Phase {
    let requests = results.len();
    let mut latencies = Vec::new();
    let mut keys = Vec::new();
    let mut ok = 0;
    for (observed, result) in results {
        match result {
            Ok(response) => {
                ok += 1;
                latencies.push(observed);
                keys.push(key(&response));
            }
            Err(RuntimeError::Overloaded { .. }) => {}
            Err(other) => panic!("bench-throughput: unexpected gateway error: {other}"),
        }
    }
    latencies.sort();
    keys.sort();
    let snapshot = harness.telemetry().snapshot();
    let service = snapshot.service(SERVICE);
    Phase {
        clients,
        requests,
        ok,
        shed: service.map_or(0, |s| s.requests_shed),
        makespan: harness.clock().now(),
        latencies,
        keys,
        pool: harness.gateway().pool_stats(),
        queue_peak: service.map_or(0, |s| s.admission_queue_peak),
    }
}

/// One client, `requests` invocations back-to-back.
fn sequential_phase(requests: usize) -> Phase {
    let harness = rig(GatewayConfig::default());
    let results = (0..requests)
        .map(|_| {
            let t0 = harness.clock().now();
            let result = harness.invoke(SERVICE);
            (harness.clock().now().saturating_sub(t0), result)
        })
        .collect();
    collect(&harness, 1, results)
}

/// `clients` threads, one invocation each, released together.
///
/// Each client registers itself as a worker of the harness clock *before*
/// the barrier, so virtual time cannot advance until every client is
/// clock-visibly blocked: a client the OS is slow to schedule can no
/// longer start its request at a later virtual instant than its peers
/// (which would stagger the phase and inflate the makespan). The engine
/// runs the request inline on the already-registered thread, and the
/// admission gate parks a registered waiter passively, so the extra
/// registration composes with both the unbounded and bounded phases.
fn concurrent_phase(clients: usize, config: GatewayConfig) -> Phase {
    let harness = rig(config);
    let barrier = Barrier::new(clients);
    let results: Vec<(Duration, Result<ServiceResponse, RuntimeError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let harness = &harness;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let _worker = WorkerGuard::enter(harness.clock().as_ref());
                        barrier.wait();
                        let t0 = harness.clock().now();
                        let result = harness.invoke(SERVICE);
                        (harness.clock().now().saturating_sub(t0), result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("client thread panicked"))
                .collect()
        });
    collect(&harness, clients, results)
}

/// Runs the three phases and writes `reports/bench_throughput.tsv` plus
/// `json_out` (committed as `BENCH_throughput.json`).
///
/// # Errors
///
/// Returns an I/O error if a report cannot be written — or, so CI can key
/// on the exit code, if the unbounded concurrent phase shed a request,
/// diverged from the sequential baseline, or failed to overlap same-service
/// requests (makespan at or above 2x one request's).
pub fn run(reports: &Path, json_out: &Path, clients: usize) -> io::Result<()> {
    let clients = clients.max(1);

    let baseline = sequential_phase(clients);
    let single_request = Duration::from_millis(SLOWEST_MS);
    let unbounded = concurrent_phase(clients, GatewayConfig::default());
    let bounded = concurrent_phase(
        clients,
        GatewayConfig::builder()
            .max_in_flight(2)
            .admission_queue(2)
            .build(),
    );

    // The CI-keyed checks (see module docs).
    if unbounded.shed > 0 {
        return Err(io::Error::other(format!(
            "bench-throughput: {} request(s) shed with unlimited admission",
            unbounded.shed
        )));
    }
    if unbounded.keys != baseline.keys {
        return Err(io::Error::other(
            "bench-throughput: concurrent per-request outcomes diverge from the \
             sequential baseline",
        ));
    }
    if unbounded.makespan >= 2 * single_request {
        return Err(io::Error::other(format!(
            "bench-throughput: {} concurrent requests took {:.3} ms, expected under \
             {:.3} ms (2x one request) — same-service requests did not overlap",
            clients,
            millis(unbounded.makespan),
            millis(2 * single_request),
        )));
    }
    let speedup = baseline.makespan.as_secs_f64() / unbounded.makespan.as_secs_f64().max(1e-9);

    let mut report = Report::new(
        format!("bench-throughput: {clients} clients x 1 request, strategy {STRATEGY}"),
        &[
            "phase",
            "clients",
            "requests",
            "ok",
            "shed",
            "makespan_ms",
            "p50_ms",
            "p99_ms",
            "pool_peak",
            "pool_spilled",
            "queue_peak",
        ],
    );
    baseline.row("sequential-baseline", &mut report);
    unbounded.row("concurrent-unbounded", &mut report);
    bounded.row("concurrent-bounded", &mut report);
    report.note(format!(
        "outcomes bit-identical to baseline; speedup {} over sequential ({} vs {} ms)",
        fmt_f(speedup, 2),
        fmt_f(millis(unbounded.makespan), 3),
        fmt_f(millis(baseline.makespan), 3),
    ));
    report.note(format!(
        "bounded phase: max_in_flight=2, admission_queue=2 -> shed rate {}",
        fmt_pct(bounded.shed as f64 / bounded.requests.max(1) as f64),
    ));
    report.note(
        "latencies are client-observed virtual time (admission wait included); \
         microservice a is crashed from t=0 by its fault plan",
    );
    report.emit(reports, "bench_throughput")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-throughput\",\n  \"service\": \"{SERVICE}\",\n  \
         \"strategy\": \"{STRATEGY}\",\n  \"clients\": {clients},\n  \
         \"single_request_ms\": {},\n  \"speedup_vs_sequential\": {},\n  \
         \"outcomes_match_baseline\": true,\n  \"sequential_baseline\": {},\n  \
         \"concurrent_unbounded\": {},\n  \"concurrent_bounded\": {}\n}}\n",
        fmt_f(millis(single_request), 3),
        fmt_f(speedup, 2),
        baseline.json(),
        unbounded.json(),
        bounded.json(),
    );
    if let Some(parent) = json_out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(json_out, json)?;
    println!("bench-throughput: wrote {}", json_out.display());
    Ok(())
}

/// The client counts of `--sweep` mode: 10^2 → 10^5 concurrent virtual
/// clients per point (capped by `--max-clients` for CI turnaround).
const SWEEP_POINTS: [usize; 4] = [100, 1_000, 10_000, 100_000];

/// One OS thread's default stack reservation — what the pre-event-core
/// execution model paid per *running leg* of every in-flight request
/// (each leg parked a thread on the virtual clock for its full latency).
const THREAD_STACK_BYTES: usize = 2 * 1024 * 1024;

/// Running legs per request under `a*b*c`: all three race.
const LEGS: usize = 3;

/// What one sweep point measured. Every field is a deterministic function
/// of the rig (virtual time, core-lock-serialized frame counts), so the
/// sweep JSON reproduces byte-for-byte across runs.
struct SweepPoint {
    clients: usize,
    makespan: Duration,
    p50: Duration,
    p99: Duration,
    frames_peak: usize,
    frame_bytes: usize,
}

impl SweepPoint {
    fn bytes_per_request(&self) -> f64 {
        (self.frames_peak * self.frame_bytes) as f64 / self.clients.max(1) as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"ok\": {}, \"shed\": 0, \"makespan_ms\": {}, \
             \"p50_ms\": {}, \"p99_ms\": {}, \"frames_peak\": {}, \
             \"frames_per_request\": {}, \"bytes_per_request\": {}}}",
            self.clients,
            self.clients,
            fmt_f(millis(self.makespan), 3),
            fmt_f(millis(self.p50), 3),
            fmt_f(millis(self.p99), 3),
            self.frames_peak,
            fmt_f(self.frames_peak as f64 / self.clients.max(1) as f64, 2),
            fmt_f(self.bytes_per_request(), 1),
        )
    }
}

/// `clients` concurrent virtual clients on one fresh rig, all submitted
/// through [`Gateway::submit_async`] while a [`WorkerGuard`] pins virtual
/// time at `t = 0` — so every request starts at the same instant and no
/// request can finish before all are resident. No client threads exist:
/// queued and in-flight requests are heap frames on the event loop, and
/// every leaf is a completion event on the clock (no worker-pool thread).
///
/// Gates (returned as errors so CI keys on the exit code):
/// shed-free admission, every outcome bit-identical to `expected`, the
/// whole batch finishing in one request's makespan, a peak-resident-frame
/// ceiling of 2 frames/request, and a drained core afterwards.
///
/// [`Gateway::submit_async`]: qce_runtime::Gateway::submit_async
fn sweep_point(clients: usize, expected: &OutcomeKey) -> io::Result<SweepPoint> {
    let fail = |message: String| io::Error::other(format!("bench-throughput sweep: {message}"));
    // `slot_size` counts invocations per re-plan: the slot must hold the
    // whole batch or requests past it would run a regenerated slot-1
    // strategy and (correctly) diverge from the slot-0 baseline.
    let mut script = script();
    script.slot_size = script
        .slot_size
        .max(u32::try_from(clients).unwrap_or(u32::MAX));
    let harness = rig_scripted(GatewayConfig::default(), script);
    let gateway = Arc::clone(harness.gateway());
    let handles: Vec<_> = {
        let _pin = WorkerGuard::enter(harness.clock().as_ref());
        (0..clients)
            .map(|_| gateway.submit_async(Request::new(SERVICE)))
            .collect::<Result<_, _>>()
            .map_err(|error| fail(format!("submission failed: {error}")))?
    };
    let mut latencies = Vec::with_capacity(clients);
    let mut diverged: std::collections::BTreeMap<(u64, String, Duration), usize> =
        Default::default();
    for handle in handles {
        let response = handle
            .wait()
            .map_err(|error| fail(format!("{clients} clients: request failed: {error}")))?;
        let observed = key(&response);
        if observed != *expected {
            diverged
                .entry((observed.5, observed.6.clone(), observed.3))
                .and_modify(|n| *n += 1)
                .or_insert(1usize);
        }
        latencies.push(response.latency);
    }
    if !diverged.is_empty() {
        return Err(fail(format!(
            "{clients} clients: outcomes diverged from the sequential baseline \
             (expected {expected:?}; divergent (slot, strategy, latency) -> count: {diverged:?})"
        )));
    }
    latencies.sort();

    let shed = harness
        .telemetry()
        .snapshot()
        .service(SERVICE)
        .map_or(0, |s| s.requests_shed);
    if shed > 0 {
        return Err(fail(format!(
            "{clients} clients: {shed} request(s) shed with unlimited admission"
        )));
    }
    let makespan = harness.clock().now();
    if makespan != Duration::from_millis(SLOWEST_MS) {
        return Err(fail(format!(
            "{clients} clients took {:.3} ms, expected exactly one request's {SLOWEST_MS} ms — \
             requests did not all overlap",
            millis(makespan),
        )));
    }
    let stats = gateway.engine_stats();
    if stats.frames_peak < clients || stats.frames_peak > 2 * clients {
        return Err(fail(format!(
            "{clients} clients: peak resident frames {} outside [{clients}, {}] — \
             not O(1) frames per request",
            stats.frames_peak,
            2 * clients,
        )));
    }
    if stats.in_flight != 0 || stats.frames_live != 0 {
        return Err(fail(format!(
            "{clients} clients: core not drained after the batch \
             (in_flight {}, frames_live {})",
            stats.in_flight, stats.frames_live,
        )));
    }
    Ok(SweepPoint {
        clients,
        makespan,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        frames_peak: stats.frames_peak,
        frame_bytes: stats.frame_bytes,
    })
}

/// `--sweep` mode: 10^2 → 10^5 concurrent virtual clients per point
/// through the asynchronous submission path, written as
/// `reports/bench_throughput_sweep.tsv` plus `json_out`. The JSON is a
/// deterministic function of the rig, so CI double-runs it and `cmp`s the
/// bytes.
///
/// # Errors
///
/// Returns an I/O error if a report cannot be written, or — so CI can key
/// on the exit code — if any point sheds a request, diverges from the
/// sequential baseline, fails to overlap the whole batch into one
/// request's makespan, or exceeds the peak-resident-frame ceiling (see
/// `sweep_point`).
pub fn run_sweep(reports: &Path, json_out: &Path, max_clients: usize) -> io::Result<()> {
    let max_clients = max_clients.max(SWEEP_POINTS[0]);
    let points: Vec<usize> = SWEEP_POINTS
        .into_iter()
        .filter(|n| *n <= max_clients)
        .collect();

    // Ground truth: a short sequential run. The providers are
    // time-independent and every request lands in slot 0, so all
    // sequential outcomes are identical and one key is the oracle for the
    // whole sweep.
    let baseline = sequential_phase(8);
    let expected = baseline
        .keys
        .first()
        .cloned()
        .ok_or_else(|| io::Error::other("bench-throughput sweep: empty sequential baseline"))?;
    if baseline.keys.iter().any(|k| *k != expected) {
        return Err(io::Error::other(
            "bench-throughput sweep: sequential baseline outcomes are not uniform",
        ));
    }

    let mut sweep = Vec::with_capacity(points.len());
    for clients in points {
        sweep.push(sweep_point(clients, &expected)?);
    }

    let mut report = Report::new(
        format!(
            "bench-throughput --sweep: up to {max_clients} concurrent clients, strategy {STRATEGY}"
        ),
        &[
            "clients",
            "ok",
            "shed",
            "makespan_ms",
            "p50_ms",
            "p99_ms",
            "frames_peak",
            "frames_per_req",
            "bytes_per_req",
        ],
    );
    for point in &sweep {
        report.row([
            point.clients.to_string(),
            point.clients.to_string(),
            "0".to_string(),
            fmt_f(millis(point.makespan), 3),
            fmt_f(millis(point.p50), 3),
            fmt_f(millis(point.p99), 3),
            point.frames_peak.to_string(),
            fmt_f(point.frames_peak as f64 / point.clients as f64, 2),
            fmt_f(point.bytes_per_request(), 1),
        ]);
    }
    let largest = sweep.last().expect("at least one sweep point");
    let threaded = (LEGS * THREAD_STACK_BYTES) as f64;
    report.note(format!(
        "every batch finishes in one request's makespan ({SLOWEST_MS} ms) with outcomes \
         bit-identical to the sequential baseline",
    ));
    report.note(format!(
        "memory per in-flight request: {} B of event-core frames vs {} B of thread stacks \
         under the per-leg-thread model ({}x)",
        fmt_f(largest.bytes_per_request(), 1),
        threaded,
        fmt_f(threaded / largest.bytes_per_request().max(1.0), 1),
    ));
    report.emit(reports, "bench_throughput_sweep")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-throughput-sweep\",\n  \"service\": \"{SERVICE}\",\n  \
         \"strategy\": \"{STRATEGY}\",\n  \"single_request_ms\": {},\n  \
         \"outcomes_match_sequential_baseline\": true,\n  \"sweep\": [\n    {}\n  ],\n  \
         \"memory_per_request\": {{\n    \"frame_bytes\": {},\n    \
         \"event_core_bytes_per_request\": {},\n    \
         \"threaded_walker_bytes_per_request\": {},\n    \
         \"threaded_walker_model\": \"{LEGS} running legs x {THREAD_STACK_BYTES} B default \
         thread stack (pre-event-core execution model)\",\n    \
         \"reduction_factor\": {}\n  }}\n}}\n",
        fmt_f(millis(Duration::from_millis(SLOWEST_MS)), 3),
        sweep
            .iter()
            .map(SweepPoint::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        largest.frame_bytes,
        fmt_f(largest.bytes_per_request(), 1),
        LEGS * THREAD_STACK_BYTES,
        fmt_f(threaded / largest.bytes_per_request().max(1.0), 1),
    );
    if let Some(parent) = json_out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(json_out, json)?;
    println!("bench-throughput --sweep: wrote {}", json_out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = [1u64, 2, 3, 4, 10].map(Duration::from_millis).into();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(3));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(10));
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn sequential_phase_matches_the_rigged_arithmetic() {
        let phase = sequential_phase(3);
        assert_eq!(phase.ok, 3);
        assert_eq!(phase.shed, 0);
        // Each request holds the walk until c completes at 8 ms.
        assert_eq!(phase.makespan, Duration::from_millis(3 * SLOWEST_MS));
        // Gateway latency is the decision instant: b's 4 ms win.
        assert!(phase
            .keys
            .iter()
            .all(|k| k.0 && k.3 == Duration::from_millis(WINNER_MS)));
        // a (crashed) + b + c all started: 30.0 charged per request.
        assert!(phase.keys.iter().all(|k| f64::from_bits(k.2) == 30.0));
    }

    #[test]
    fn concurrent_unbounded_matches_baseline_and_overlaps() {
        let baseline = sequential_phase(4);
        let concurrent = concurrent_phase(4, GatewayConfig::default());
        assert_eq!(concurrent.shed, 0);
        assert_eq!(concurrent.keys, baseline.keys);
        assert!(
            concurrent.makespan < baseline.makespan,
            "4 overlapped requests must beat 4 sequential ones ({:?} vs {:?})",
            concurrent.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn bounded_phase_sheds_nothing_when_capacity_covers_the_clients() {
        // 2 in flight + 2 queued covers 4 clients: nobody is shed.
        let phase = concurrent_phase(
            4,
            GatewayConfig::builder()
                .max_in_flight(2)
                .admission_queue(2)
                .build(),
        );
        assert_eq!(phase.shed, 0);
        assert_eq!(phase.ok, 4);
    }

    #[test]
    fn sweep_point_overlaps_all_clients_and_matches_the_baseline() {
        let baseline = sequential_phase(4);
        let point = sweep_point(64, &baseline.keys[0]).unwrap();
        assert_eq!(point.makespan, Duration::from_millis(SLOWEST_MS));
        assert!(point.frames_peak >= 64, "all 64 walks resident at once");
        assert!(point.bytes_per_request() < THREAD_STACK_BYTES as f64);
        // Gateway latency is the decision instant: b's 4 ms win.
        assert_eq!(point.p50, Duration::from_millis(WINNER_MS));
        assert_eq!(point.p99, Duration::from_millis(WINNER_MS));
    }

    #[test]
    fn run_sweep_writes_deterministic_json() {
        let dir = std::env::temp_dir().join(format!("qce-sweep-{}", std::process::id()));
        let json = dir.join("BENCH_throughput.json");
        run_sweep(&dir, &json, 100).unwrap();
        let first = std::fs::read_to_string(&json).unwrap();
        assert!(first.contains("\"benchmark\": \"bench-throughput-sweep\""));
        assert!(first.contains("\"outcomes_match_sequential_baseline\": true"));
        assert!(first.contains("\"threaded_walker_bytes_per_request\""));
        run_sweep(&dir, &json, 100).unwrap();
        let second = std::fs::read_to_string(&json).unwrap();
        assert_eq!(first, second, "sweep JSON must reproduce byte-for-byte");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_writes_report_and_json() {
        let dir = std::env::temp_dir().join(format!("qce-throughput-{}", std::process::id()));
        let json = dir.join("BENCH_throughput.json");
        run(&dir, &json, 4).unwrap();
        let tsv = std::fs::read_to_string(dir.join("bench_throughput.tsv")).unwrap();
        assert!(tsv.contains("concurrent-unbounded"));
        assert!(tsv.contains("queue_peak"));
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"outcomes_match_baseline\": true"));
        assert!(text.contains("\"concurrent_bounded\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

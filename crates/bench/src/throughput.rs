//! `bench-throughput`: the gateway's concurrency story under load.
//!
//! N concurrent clients hammer *one* service whose Par-heavy strategy
//! (`a*b*c`) runs on the gateway's shared [`ExecutionEngine`] worker pool,
//! with microservice `a` under a fault plan (crashed from `t = 0`, so every
//! request is charged a failing leg). Three phases on fresh virtual-time
//! harnesses:
//!
//! 1. **sequential baseline** — one client issues all requests
//!    back-to-back; its per-request outcomes are the ground truth.
//! 2. **concurrent, unbounded admission** — N clients issue the same
//!    requests at once. The bench *fails* (non-zero exit, for CI) unless
//!    (a) nothing was shed at this low load, (b) every per-request outcome
//!    (success, payload, cost, latency, slot, votes, strategy) is
//!    bit-identical to the baseline's, and (c) the concurrent makespan is
//!    below 2x one request's makespan — i.e. same-service requests really
//!    ran in parallel.
//! 3. **concurrent, bounded admission** — `max_in_flight = 2` with a
//!    2-deep admission queue sheds the overflow; the report shows the shed
//!    rate, client-observed p50/p99 latency (queueing included), and
//!    worker-pool occupancy.
//!
//! All three phases are deterministic in *outcome* because the providers
//! are time-independent (reliability 0 or 1, constant fault condition):
//! thread interleaving can stagger virtual start times but can never
//! change what a request returns.
//!
//! [`ExecutionEngine`]: qce_runtime::ExecutionEngine

use std::io;
use std::path::Path;
use std::sync::Barrier;
use std::time::Duration;

use qce_runtime::{
    Clock, FaultEvent, FaultKind, FaultPlan, GatewayConfig, Harness, MsSpec, PoolStats,
    RuntimeError, ServiceResponse, ServiceScript, SimulatedProvider, WorkerGuard,
};
use qce_strategy::{Qos, Requirements};

use crate::report::{fmt_f, fmt_pct, Report};

/// The one service every client invokes.
const SERVICE: &str = "relay";
/// The forced slot-0 strategy: all three legs race.
const STRATEGY: &str = "a*b*c";
/// The winning leg's latency (microservice `b`).
const WINNER_MS: u64 = 4;
/// The slowest leg's latency (microservice `c`): one request's makespan.
const SLOWEST_MS: u64 = 8;

/// Everything that identifies one request's outcome. Two runs are
/// equivalent iff they produce the same multiset of keys.
type OutcomeKey = (
    bool,
    Option<Vec<u8>>,
    u64,
    Duration,
    Option<(usize, usize)>,
    u64,
    String,
);

fn key(response: &ServiceResponse) -> OutcomeKey {
    (
        response.success,
        response.payload.clone(),
        response.cost.to_bits(),
        response.latency,
        response.votes,
        response.slot,
        response.strategy_text.clone(),
    )
}

fn script() -> ServiceScript {
    let prior = Qos::new(10.0, 10.0, 0.9).expect("valid prior");
    let spec = |name: &str| MsSpec {
        name: name.into(),
        capability: format!("cap-{name}"),
        prior,
    };
    let mut script = ServiceScript::new(
        SERVICE,
        vec![spec("a"), spec("b"), spec("c")],
        Requirements::new(1000.0, 1000.0, 0.5).expect("valid requirements"),
    );
    // Pin the slot-0 plan so every request in every phase runs the same
    // Par-heavy strategy, and make the slot outlast the whole bench so the
    // generator never re-plans mid-run.
    script.default_strategy = Some(STRATEGY.into());
    script.slot_size = 1_000;
    script
}

/// A fresh virtual-time rig: `a` crashed from `t = 0` (fails instantly,
/// still charged), `b` the 4 ms winner, `c` an 8 ms charged loser.
fn rig(config: GatewayConfig) -> Harness {
    let crashed_forever = FaultPlan::new(vec![FaultEvent {
        at: Duration::ZERO,
        kind: FaultKind::Crash,
    }]);
    let device = |name: &str, ms: u64| {
        SimulatedProvider::builder(format!("dev-{name}/cap-{name}"), format!("cap-{name}"))
            .latency(Duration::from_millis(ms))
            .cost(10.0)
            .reliability(1.0)
            .response(name.as_bytes().to_vec())
    };
    Harness::builder()
        .script(script())
        .config(config)
        .faulty(device("a", 2), crashed_forever)
        .provider(device("b", WINNER_MS))
        .provider(device("c", SLOWEST_MS))
        .build()
}

/// What one phase measured.
struct Phase {
    clients: usize,
    requests: usize,
    ok: usize,
    shed: u64,
    makespan: Duration,
    /// Client-observed latencies of successful requests (admission wait
    /// included), sorted ascending.
    latencies: Vec<Duration>,
    keys: Vec<OutcomeKey>,
    pool: PoolStats,
    queue_peak: u64,
}

impl Phase {
    fn row(&self, name: &str, report: &mut Report) {
        report.row([
            name.to_string(),
            self.clients.to_string(),
            self.requests.to_string(),
            self.ok.to_string(),
            self.shed.to_string(),
            fmt_f(millis(self.makespan), 3),
            fmt_f(millis(percentile(&self.latencies, 50.0)), 3),
            fmt_f(millis(percentile(&self.latencies, 99.0)), 3),
            self.pool.peak_running.to_string(),
            self.pool.spilled.to_string(),
            self.queue_peak.to_string(),
        ]);
    }

    fn json(&self) -> String {
        format!(
            "{{\"clients\": {}, \"requests\": {}, \"ok\": {}, \"shed\": {}, \
             \"shed_rate\": {}, \"makespan_ms\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \
             \"pool\": {{\"capacity\": {}, \"peak_running\": {}, \"submitted\": {}, \
             \"spilled\": {}}}, \"queue_peak\": {}}}",
            self.clients,
            self.requests,
            self.ok,
            self.shed,
            fmt_f(self.shed as f64 / self.requests.max(1) as f64, 4),
            fmt_f(millis(self.makespan), 3),
            fmt_f(millis(percentile(&self.latencies, 50.0)), 3),
            fmt_f(millis(percentile(&self.latencies, 99.0)), 3),
            self.pool.capacity,
            self.pool.peak_running,
            self.pool.submitted,
            self.pool.spilled,
            self.queue_peak,
        )
    }
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = (pct / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Collects a finished harness + per-client results into a [`Phase`].
fn collect(
    harness: &Harness,
    clients: usize,
    results: Vec<(Duration, Result<ServiceResponse, RuntimeError>)>,
) -> Phase {
    let requests = results.len();
    let mut latencies = Vec::new();
    let mut keys = Vec::new();
    let mut ok = 0;
    for (observed, result) in results {
        match result {
            Ok(response) => {
                ok += 1;
                latencies.push(observed);
                keys.push(key(&response));
            }
            Err(RuntimeError::Overloaded { .. }) => {}
            Err(other) => panic!("bench-throughput: unexpected gateway error: {other}"),
        }
    }
    latencies.sort();
    keys.sort();
    let snapshot = harness.telemetry().snapshot();
    let service = snapshot.service(SERVICE);
    Phase {
        clients,
        requests,
        ok,
        shed: service.map_or(0, |s| s.requests_shed),
        makespan: harness.clock().now(),
        latencies,
        keys,
        pool: harness.gateway().pool_stats(),
        queue_peak: service.map_or(0, |s| s.admission_queue_peak),
    }
}

/// One client, `requests` invocations back-to-back.
fn sequential_phase(requests: usize) -> Phase {
    let harness = rig(GatewayConfig::default());
    let results = (0..requests)
        .map(|_| {
            let t0 = harness.clock().now();
            let result = harness.invoke(SERVICE);
            (harness.clock().now().saturating_sub(t0), result)
        })
        .collect();
    collect(&harness, 1, results)
}

/// `clients` threads, one invocation each, released together.
///
/// Each client registers itself as a worker of the harness clock *before*
/// the barrier, so virtual time cannot advance until every client is
/// clock-visibly blocked: a client the OS is slow to schedule can no
/// longer start its request at a later virtual instant than its peers
/// (which would stagger the phase and inflate the makespan). The engine
/// runs the request inline on the already-registered thread, and the
/// admission gate parks a registered waiter passively, so the extra
/// registration composes with both the unbounded and bounded phases.
fn concurrent_phase(clients: usize, config: GatewayConfig) -> Phase {
    let harness = rig(config);
    let barrier = Barrier::new(clients);
    let results: Vec<(Duration, Result<ServiceResponse, RuntimeError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| {
                    let harness = &harness;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let _worker = WorkerGuard::enter(harness.clock().as_ref());
                        barrier.wait();
                        let t0 = harness.clock().now();
                        let result = harness.invoke(SERVICE);
                        (harness.clock().now().saturating_sub(t0), result)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("client thread panicked"))
                .collect()
        });
    collect(&harness, clients, results)
}

/// Runs the three phases and writes `reports/bench_throughput.tsv` plus
/// `json_out` (committed as `BENCH_throughput.json`).
///
/// # Errors
///
/// Returns an I/O error if a report cannot be written — or, so CI can key
/// on the exit code, if the unbounded concurrent phase shed a request,
/// diverged from the sequential baseline, or failed to overlap same-service
/// requests (makespan at or above 2x one request's).
pub fn run(reports: &Path, json_out: &Path, clients: usize) -> io::Result<()> {
    let clients = clients.max(1);

    let baseline = sequential_phase(clients);
    let single_request = Duration::from_millis(SLOWEST_MS);
    let unbounded = concurrent_phase(clients, GatewayConfig::default());
    let bounded = concurrent_phase(
        clients,
        GatewayConfig::builder()
            .max_in_flight(2)
            .admission_queue(2)
            .build(),
    );

    // The CI-keyed checks (see module docs).
    if unbounded.shed > 0 {
        return Err(io::Error::other(format!(
            "bench-throughput: {} request(s) shed with unlimited admission",
            unbounded.shed
        )));
    }
    if unbounded.keys != baseline.keys {
        return Err(io::Error::other(
            "bench-throughput: concurrent per-request outcomes diverge from the \
             sequential baseline",
        ));
    }
    if unbounded.makespan >= 2 * single_request {
        return Err(io::Error::other(format!(
            "bench-throughput: {} concurrent requests took {:.3} ms, expected under \
             {:.3} ms (2x one request) — same-service requests did not overlap",
            clients,
            millis(unbounded.makespan),
            millis(2 * single_request),
        )));
    }
    let speedup = baseline.makespan.as_secs_f64() / unbounded.makespan.as_secs_f64().max(1e-9);

    let mut report = Report::new(
        format!("bench-throughput: {clients} clients x 1 request, strategy {STRATEGY}"),
        &[
            "phase",
            "clients",
            "requests",
            "ok",
            "shed",
            "makespan_ms",
            "p50_ms",
            "p99_ms",
            "pool_peak",
            "pool_spilled",
            "queue_peak",
        ],
    );
    baseline.row("sequential-baseline", &mut report);
    unbounded.row("concurrent-unbounded", &mut report);
    bounded.row("concurrent-bounded", &mut report);
    report.note(format!(
        "outcomes bit-identical to baseline; speedup {} over sequential ({} vs {} ms)",
        fmt_f(speedup, 2),
        fmt_f(millis(unbounded.makespan), 3),
        fmt_f(millis(baseline.makespan), 3),
    ));
    report.note(format!(
        "bounded phase: max_in_flight=2, admission_queue=2 -> shed rate {}",
        fmt_pct(bounded.shed as f64 / bounded.requests.max(1) as f64),
    ));
    report.note(
        "latencies are client-observed virtual time (admission wait included); \
         microservice a is crashed from t=0 by its fault plan",
    );
    report.emit(reports, "bench_throughput")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-throughput\",\n  \"service\": \"{SERVICE}\",\n  \
         \"strategy\": \"{STRATEGY}\",\n  \"clients\": {clients},\n  \
         \"single_request_ms\": {},\n  \"speedup_vs_sequential\": {},\n  \
         \"outcomes_match_baseline\": true,\n  \"sequential_baseline\": {},\n  \
         \"concurrent_unbounded\": {},\n  \"concurrent_bounded\": {}\n}}\n",
        fmt_f(millis(single_request), 3),
        fmt_f(speedup, 2),
        baseline.json(),
        unbounded.json(),
        bounded.json(),
    );
    if let Some(parent) = json_out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(json_out, json)?;
    println!("bench-throughput: wrote {}", json_out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let ms: Vec<Duration> = [1u64, 2, 3, 4, 10].map(Duration::from_millis).into();
        assert_eq!(percentile(&ms, 50.0), Duration::from_millis(3));
        assert_eq!(percentile(&ms, 99.0), Duration::from_millis(10));
        assert_eq!(percentile(&ms, 0.0), Duration::from_millis(1));
        assert_eq!(percentile(&[], 50.0), Duration::ZERO);
    }

    #[test]
    fn sequential_phase_matches_the_rigged_arithmetic() {
        let phase = sequential_phase(3);
        assert_eq!(phase.ok, 3);
        assert_eq!(phase.shed, 0);
        // Each request holds the walk until c completes at 8 ms.
        assert_eq!(phase.makespan, Duration::from_millis(3 * SLOWEST_MS));
        // Gateway latency is the decision instant: b's 4 ms win.
        assert!(phase
            .keys
            .iter()
            .all(|k| k.0 && k.3 == Duration::from_millis(WINNER_MS)));
        // a (crashed) + b + c all started: 30.0 charged per request.
        assert!(phase.keys.iter().all(|k| f64::from_bits(k.2) == 30.0));
    }

    #[test]
    fn concurrent_unbounded_matches_baseline_and_overlaps() {
        let baseline = sequential_phase(4);
        let concurrent = concurrent_phase(4, GatewayConfig::default());
        assert_eq!(concurrent.shed, 0);
        assert_eq!(concurrent.keys, baseline.keys);
        assert!(
            concurrent.makespan < baseline.makespan,
            "4 overlapped requests must beat 4 sequential ones ({:?} vs {:?})",
            concurrent.makespan,
            baseline.makespan
        );
    }

    #[test]
    fn bounded_phase_sheds_nothing_when_capacity_covers_the_clients() {
        // 2 in flight + 2 queued covers 4 clients: nobody is shed.
        let phase = concurrent_phase(
            4,
            GatewayConfig::builder()
                .max_in_flight(2)
                .admission_queue(2)
                .build(),
        );
        assert_eq!(phase.shed, 0);
        assert_eq!(phase.ok, 4);
    }

    #[test]
    fn run_writes_report_and_json() {
        let dir = std::env::temp_dir().join(format!("qce-throughput-{}", std::process::id()));
        let json = dir.join("BENCH_throughput.json");
        run(&dir, &json, 4).unwrap();
        let tsv = std::fs::read_to_string(dir.join("bench_throughput.tsv")).unwrap();
        assert!(tsv.contains("concurrent-unbounded"));
        assert!(tsv.contains("queue_peak"));
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"outcomes_match_baseline\": true"));
        assert!(text.contains("\"concurrent_bounded\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

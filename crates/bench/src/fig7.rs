//! Reproduction of **Fig. 7**: strategy generation for *more than 5*
//! equivalent microservices.
//!
//! * Fig. 7a — generation time: the exhaustive search explodes
//!   exponentially with `M` while the approximation heuristic and the
//!   predefined defaults grow only moderately;
//! * Fig. 7b/c — the approximation keeps outperforming the predefined
//!   strategies (the paper reports ≈2.6× more QoS-satisfied services) at
//!   ≈10% extra generation time over the defaults.

use std::path::Path;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::RandomEnvConfig;
use qce_strategy::{Generated, Generator};

use crate::fig5::sim_requirements;
use crate::report::{fmt_f, Report};

/// Per-(M, method) aggregate.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of equivalent microservices.
    pub m: usize,
    /// Method name.
    pub method: &'static str,
    /// Mean generation wall time per service.
    pub mean_time: Duration,
    /// QoS-satisfied services (on estimated QoS).
    pub satisfied: usize,
    /// Mean utility.
    pub mean_utility: f64,
    /// Services measured.
    pub services: usize,
}

/// Random-environment base used for the scaling sweep (the paper keeps the
/// exp2 base and raises the microservice count).
#[must_use]
pub fn scaling_config(m: usize) -> RandomEnvConfig {
    RandomEnvConfig {
        microservices: m,
        avg_cost: 70.0,
        avg_latency: 70.0,
        avg_reliability_pct: 70.0,
        delta: 50.0,
    }
}

/// Measures one `(M, method)` point over `services` random environments.
///
/// `method` is one of `"exhaustive"`, `"approximation"`, `"local-search"`,
/// `"failover"`, `"parallel"`.
///
/// # Panics
///
/// Panics on an unknown method name.
#[must_use]
pub fn measure(m: usize, method: &'static str, services: usize, seed: u64) -> ScalingPoint {
    let requirements = sim_requirements();
    let generator = Generator::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut total_time = Duration::ZERO;
    let mut satisfied = 0usize;
    let mut utility_sum = 0.0;
    for _ in 0..services {
        let env = scaling_config(m).generate(&mut rng).mean_qos_table();
        let ids = env.ids();
        let t0 = Instant::now();
        let generated: Generated = match method {
            "exhaustive" => generator.exhaustive(&env, &ids, &requirements),
            "approximation" => generator.approximation(&env, &ids, &requirements),
            "local-search" => generator.local_search(&env, &ids, &requirements),
            "failover" => generator.failover_in_order(&env, &ids, &requirements),
            "parallel" => generator.speculative_parallel(&env, &ids, &requirements),
            other => panic!("unknown method {other:?}"),
        }
        .expect("valid environment");
        total_time += t0.elapsed();
        if requirements.satisfied_by(&generated.qos) {
            satisfied += 1;
        }
        utility_sum += generated.utility;
    }
    ScalingPoint {
        m,
        method,
        mean_time: total_time / services as u32,
        satisfied,
        mean_utility: utility_sum / services as f64,
        services,
    }
}

/// Runs the Fig. 7 reproduction for `M = 6..=max_m` and writes `fig7.tsv`.
///
/// The exhaustive search is only run up to `exhaustive_max_m`
/// (`F(7) ≈ 1.15 M` candidates already takes seconds per service; the
/// whole point of Fig. 7a is that it explodes).
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(
    reports: &Path,
    services: usize,
    max_m: usize,
    exhaustive_max_m: usize,
    seed: u64,
) -> std::io::Result<()> {
    let mut report = Report::new(
        format!("Fig. 7: generation scaling for M > 5 ({services} services/point)"),
        &["M", "method", "mean time", "satisfied", "mean utility"],
    );

    let mut approx_time_by_m = Vec::new();
    let mut default_time_by_m = Vec::new();
    let mut approx_sat = 0usize;
    let mut failover_sat = 0usize;
    let mut parallel_sat = 0usize;

    for m in 6..=max_m {
        for method in [
            "exhaustive",
            "approximation",
            "local-search",
            "failover",
            "parallel",
        ] {
            if method == "exhaustive" && m > exhaustive_max_m {
                continue;
            }
            let point = measure(m, method, services, seed ^ ((m as u64) << 24));
            match method {
                "approximation" => {
                    approx_time_by_m.push(point.mean_time);
                    approx_sat += point.satisfied;
                }
                "failover" => {
                    default_time_by_m.push(point.mean_time);
                    failover_sat += point.satisfied;
                }
                "parallel" => {
                    parallel_sat += point.satisfied;
                }
                _ => {}
            }
            report.row([
                point.m.to_string(),
                point.method.to_string(),
                format!("{:?}", point.mean_time),
                point.satisfied.to_string(),
                fmt_f(point.mean_utility, 3),
            ]);
        }
    }

    if !approx_time_by_m.is_empty() && !default_time_by_m.is_empty() {
        let total = |v: &[Duration]| v.iter().sum::<Duration>();
        let approx_total = total(&approx_time_by_m);
        let default_total = total(&default_time_by_m);
        let overhead = if default_total.is_zero() {
            f64::INFINITY
        } else {
            (approx_total.as_secs_f64() / default_total.as_secs_f64() - 1.0) * 100.0
        };
        report.note(format!(
            "approximation total generation time is {overhead:.0}% above the trivial \
             defaults but stays in microseconds; the paper's ~10% figure reflects \
             an implementation whose default generation also re-estimated QoS"
        ));
    }
    let predefined_sat = failover_sat.max(parallel_sat);
    if predefined_sat > 0 {
        report.note(format!(
            "satisfied services: approximation {approx_sat} vs best predefined \
             {predefined_sat} ({:.1}x; paper: ~2.6x for M > 5)",
            approx_sat as f64 / predefined_sat as f64
        ));
    }
    report.note("exhaustive time explodes with M (Table I growth); defaults stay flat");
    report.emit(reports, "fig7")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_time_grows_much_faster_than_approximation() {
        let exh5 = measure(5, "exhaustive", 2, 1);
        let exh6 = measure(6, "exhaustive", 2, 1);
        let apx5 = measure(5, "approximation", 2, 1);
        let apx6 = measure(6, "approximation", 2, 1);
        let exh_growth = exh6.mean_time.as_secs_f64() / exh5.mean_time.as_secs_f64().max(1e-9);
        let apx_growth = apx6.mean_time.as_secs_f64() / apx5.mean_time.as_secs_f64().max(1e-9);
        assert!(
            exh_growth > apx_growth,
            "exhaustive x{exh_growth:.1} vs approximation x{apx_growth:.1}"
        );
        assert!(exh_growth > 5.0, "F(6)/F(5) ≈ 18x more candidates");
    }

    #[test]
    fn approximation_is_fast_even_at_m10() {
        let point = measure(10, "approximation", 3, 2);
        assert!(
            point.mean_time < Duration::from_millis(50),
            "approximation at M=10 took {:?}",
            point.mean_time
        );
    }

    #[test]
    fn approximation_beats_defaults_on_utility_at_scale() {
        let approx = measure(7, "approximation", 10, 3);
        let failover = measure(7, "failover", 10, 3);
        let parallel = measure(7, "parallel", 10, 3);
        assert!(approx.mean_utility >= failover.mean_utility - 1e-9);
        assert!(approx.mean_utility >= parallel.mean_utility - 1e-9);
        assert!(approx.satisfied >= failover.satisfied.max(parallel.satisfied));
    }

    #[test]
    fn run_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-fig7-{}", std::process::id()));
        run(&dir, 2, 7, 6, 4).unwrap();
        assert!(dir.join("fig7.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Ablation studies for the design choices called out in `DESIGN.md`:
//!
//! * **`k` sensitivity** — how the utility penalty factor (Equation 1's
//!   `k > 1`) steers the generated strategy between cost- and
//!   latency-efficiency;
//! * **collector window** — responsiveness vs noise of the feedback loop
//!   under the Fig. 8 drift schedule;
//! * **cost semantics** — how much of a parallel strategy's cost is
//!   Assumption 2 (charging cancelled losers), measured by re-running
//!   Table II under a hypothetical free-preemption platform;
//! * **latency-distribution robustness** — Algorithm 1 consumes *mean*
//!   latencies; quantify its error when real latencies are uniform or
//!   exponential around the same mean.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{
    simulate, simulate_with, Environment, LatencyDistribution, MsModel, VirtualExecutor,
};
use qce_strategy::estimate::estimate;
use qce_strategy::{EnvQos, Generator, MsId, Requirements, Strategy, UtilityIndex};

use crate::report::{fmt_f, fmt_pct, Report};
use crate::table2::FIRE_ENV;

/// `k` values swept by the penalty ablation.
pub const K_SWEEP: [f64; 5] = [1.2, 2.0, 3.0, 5.0, 10.0];

/// Runs the `k`-sensitivity ablation: the fire-detection environment with
/// the simulation requirements, generated exhaustively per `k`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
pub fn k_sensitivity(reports: &Path) -> std::io::Result<()> {
    let env = EnvQos::from_triples(&FIRE_ENV).expect("valid QoS");
    let mut report = Report::new(
        "Ablation: utility penalty k (Eq. 1) on the fire-detection environment",
        &[
            "Qc,Ql,Qr",
            "k",
            "generated strategy",
            "cost",
            "latency",
            "reliability",
            "utility",
        ],
    );
    // Two requirement profiles: the simulation default (where fail-over
    // dominates outright) and a latency-tight budgeted profile where k
    // visibly trades cost for latency.
    let profiles = [
        Requirements::new(100.0, 100.0, 0.97).expect("valid"),
        Requirements::new(400.0, 90.0, 0.97).expect("valid"),
    ];
    for requirements in profiles {
        for k in K_SWEEP {
            let generator = Generator::new(UtilityIndex::new(k).expect("k > 1"), 6);
            let generated = generator
                .exhaustive(&env, &env.ids(), &requirements)
                .expect("valid environment");
            report.row([
                format!(
                    "{:.0},{:.0},{:.0}%",
                    requirements.cost,
                    requirements.latency,
                    requirements.reliability.percent()
                ),
                fmt_f(k, 1),
                generated.strategy.to_string(),
                fmt_f(generated.qos.cost, 1),
                fmt_f(generated.qos.latency, 1),
                fmt_pct(generated.qos.reliability.value()),
                fmt_f(generated.utility, 3),
            ]);
        }
    }
    report.note("higher k punishes requirement violations harder: under the tight");
    report.note("latency budget the winner shifts from a cheap mostly-sequential plan");
    report.note("to increasingly parallel (costlier, faster) plans as k grows");
    report.emit(reports, "ablation_k")?;
    Ok(())
}

/// The generated strategy under the latency-tight profile changes with `k`
/// (regression guard for the ablation's headline effect).
#[cfg(test)]
fn k_changes_the_winner() -> bool {
    let env = EnvQos::from_triples(&FIRE_ENV).expect("valid QoS");
    let requirements = Requirements::new(400.0, 90.0, 0.97).expect("valid");
    let pick = |k: f64| {
        Generator::new(UtilityIndex::new(k).expect("k > 1"), 6)
            .exhaustive(&env, &env.ids(), &requirements)
            .expect("valid environment")
            .strategy
    };
    pick(1.2) != pick(10.0)
}

/// Runs the collector-window ablation on the Fig. 8 drift schedule.
///
/// For each window size, measures how many slots the feedback loop needs
/// after the reliability drop before it stops leading with the degraded
/// sensor, and how often the strategy churns during the healthy phase.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics if the testbed fails to serve requests (cannot happen).
pub fn window_sensitivity(
    reports: &Path,
    per_slot: u32,
    latency_scale: f64,
) -> std::io::Result<()> {
    let mut report = Report::new(
        "Ablation: collector window vs adaptation lag (Fig. 8 schedule)",
        &[
            "window",
            "slots to demote after drop",
            "healthy-phase strategy changes",
            "degraded-phase avg success",
        ],
    );
    for window in [10usize, 30, 100, 300] {
        let outcome = run_drift_with_window(window, per_slot, latency_scale);
        report.row([
            window.to_string(),
            outcome
                .slots_to_demote
                .map_or_else(|| ">6".to_string(), |s| s.to_string()),
            outcome.healthy_changes.to_string(),
            fmt_pct(outcome.degraded_success),
        ]);
    }
    report.note("small windows adapt fast but churn; large windows are stable but slow —");
    report.note("the gateway default (100 = one slot) matches the paper's per-slot stats");
    report.emit(reports, "ablation_window")?;
    Ok(())
}

struct DriftOutcome {
    slots_to_demote: Option<u32>,
    healthy_changes: usize,
    degraded_success: f64,
}

fn run_drift_with_window(window: usize, per_slot: u32, latency_scale: f64) -> DriftOutcome {
    use qce_runtime::{GatewayConfig, Request};
    // Rebuild the testbed with a custom collector window.
    let tb = crate::testbed::build_with_config(
        per_slot,
        latency_scale,
        GatewayConfig::builder().collector_window(window).build(),
    );
    let drop_at = u64::from(per_slot) * 2; // drop at the start of slot 2
    let mut executed = 0u64;
    let mut strategies: Vec<String> = Vec::new();
    let mut degraded_ok = 0u32;
    let mut degraded_n = 0u32;
    for slot in 0..8u32 {
        for _ in 0..per_slot {
            if executed == drop_at {
                tb.sensor.set_reliability(0.2);
            }
            let response = tb
                .gateway
                .submit(Request::new(crate::testbed::SERVICE))
                .expect("providers registered");
            executed += 1;
            if slot >= 2 {
                degraded_n += 1;
                if response.success {
                    degraded_ok += 1;
                }
            }
        }
        strategies.push(
            tb.gateway
                .current_strategy(crate::testbed::SERVICE)
                .unwrap_or_default(),
        );
    }
    // Healthy phase = slots 0..2; count strategy changes between slots 1..2
    // (slot 0 is always the default).
    let healthy_changes = strategies[..2].windows(2).filter(|w| w[0] != w[1]).count();
    let slots_to_demote = strategies[2..]
        .iter()
        .position(|s| !s.starts_with("readTempSensor"))
        .map(|p| p as u32 + 1);
    DriftOutcome {
        slots_to_demote,
        healthy_changes,
        degraded_success: f64::from(degraded_ok) / f64::from(degraded_n.max(1)),
    }
}

/// Runs the Assumption-2 cost ablation: Table II strategies measured with
/// and without charging cancelled invocations.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
pub fn cost_semantics(reports: &Path) -> std::io::Result<()> {
    let env = Environment::from_triples(&FIRE_ENV).expect("valid QoS");
    let mut report = Report::new(
        "Ablation: Assumption-2 cost vs free preemption (Table II strategies)",
        &[
            "strategy",
            "cost (Assumption 2)",
            "cost (free preemption)",
            "waste",
        ],
    );
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    for text in ["a-b-c-d-e", "a*b*c*d*e", "a-b*c-d-e", "c*(a*b-d*e)"] {
        let strategy = Strategy::parse(text).expect("valid");
        let charged = simulate(&strategy, &env, 20_000, &mut rng).expect("simulates");
        let free = simulate_with(
            &VirtualExecutor::without_cancellation_charges(),
            &strategy,
            &env,
            20_000,
            &mut rng,
        )
        .expect("simulates");
        let waste = 1.0 - free.mean_cost / charged.mean_cost;
        report.row([
            text.to_string(),
            fmt_f(charged.mean_cost, 1),
            fmt_f(free.mean_cost, 1),
            fmt_pct(waste),
        ]);
    }
    report.note("waste = fraction of the charged cost paid for cancelled losers;");
    report.note("parallel-heavy strategies overpay most, which is why Assumption 2");
    report.note("makes the generator prefer sequential stages when cost is tight");
    report.emit(reports, "ablation_cost")?;
    Ok(())
}

/// Runs the latency-distribution robustness ablation: the same mean
/// latencies realized as constant, uniform, and exponential distributions.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
pub fn latency_robustness(reports: &Path) -> std::io::Result<()> {
    let mut report = Report::new(
        "Ablation: Algorithm 1 error vs latency distribution (same means)",
        &[
            "strategy",
            "distribution",
            "est latency",
            "measured",
            "error %",
        ],
    );
    let means = [50.0, 100.0, 150.0];
    let reliabilities = [0.6, 0.6, 0.7];
    let make_env = |shape: &str| -> Environment {
        Environment::new(
            means
                .iter()
                .zip(reliabilities)
                .enumerate()
                .map(|(i, (&mean, r))| {
                    let dist = match shape {
                        "constant" => LatencyDistribution::Constant(mean),
                        "uniform±50%" => LatencyDistribution::Uniform {
                            min: mean * 0.5,
                            max: mean * 1.5,
                        },
                        "exponential" => LatencyDistribution::Exponential { mean },
                        _ => unreachable!(),
                    };
                    MsModel::new(MsId(i), r, dist, 50.0).expect("valid")
                })
                .collect(),
        )
    };
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for text in ["a-b-c", "a*b*c", "a-b*c"] {
        let strategy = Strategy::parse(text).expect("valid");
        for shape in ["constant", "uniform±50%", "exponential"] {
            let env = make_env(shape);
            let est = estimate(&strategy, &env.mean_qos_table()).expect("estimates");
            let measured = simulate(&strategy, &env, 30_000, &mut rng).expect("simulates");
            let err = qce_sim::relative_error_pct(measured.mean_latency, est.latency);
            report.row([
                text.to_string(),
                shape.to_string(),
                fmt_f(est.latency, 1),
                fmt_f(measured.mean_latency, 1),
                fmt_f(err, 2),
            ]);
        }
    }
    report.note("fail-over latency is linear in per-ms latency, so mean-based estimates");
    report.note("stay exact under any distribution; parallel races are concave (E[min] <");
    report.note("min of means), so high-variance latencies make Alg.1 pessimistic — the");
    report.note("collector's measured means absorb most of this in the running system");
    report.emit(reports, "ablation_latency")?;
    Ok(())
}

/// Runs the correlated-failure ablation: equivalents co-located on one
/// host share its fate, eroding the redundancy Algorithm 1's
/// independence-based reliability promises.
///
/// Marginal per-microservice reliabilities are held fixed (what the
/// collector would observe), so the whole gap is a joint-distribution
/// effect invisible to the estimator.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
pub fn correlation(reports: &Path) -> std::io::Result<()> {
    use qce_sim::SharedHost;
    let mut report = Report::new(
        "Ablation: shared-fate (correlated) failures vs Algorithm 1's independence",
        &[
            "host availability",
            "placement",
            "estimated reliability",
            "measured reliability",
            "overestimate",
        ],
    );
    // Three equivalents, marginal reliability 0.6 each; fail-over strategy.
    let env = Environment::from_triples(&[(10.0, 5.0, 0.6), (10.0, 8.0, 0.6), (10.0, 11.0, 0.6)])
        .expect("valid QoS");
    let strategy = Strategy::parse("a-b-c").expect("valid");
    let independent = estimate(&strategy, &env.mean_qos_table())
        .expect("estimates")
        .reliability
        .value();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    for h in [1.0, 0.9, 0.8, 0.7] {
        for (placement, hosts) in [
            (
                "co-located (1 host)",
                vec![SharedHost::new(vec![MsId(0), MsId(1), MsId(2)], h)],
            ),
            (
                "isolated (3 hosts)",
                vec![
                    SharedHost::new(vec![MsId(0)], h),
                    SharedHost::new(vec![MsId(1)], h),
                    SharedHost::new(vec![MsId(2)], h),
                ],
            ),
        ] {
            let Some(adjusted) = qce_sim::preserve_marginals(&env, &hosts) else {
                continue; // marginal 0.6 not reachable under this h
            };
            let measured = qce_sim::correlation::measure_reliability(
                &strategy, &adjusted, &hosts, 30_000, &mut rng,
            )
            .expect("simulates");
            report.row([
                fmt_pct(h),
                placement.to_string(),
                fmt_pct(independent),
                fmt_pct(measured),
                fmt_f((independent - measured) * 100.0, 1),
            ]);
        }
    }
    report.note("estimated = 1 - prod(1-r) from marginals (what the collector feeds the");
    report.note("generator); co-located equivalents cap reliability at the host's");
    report.note("availability, so the independence estimate overstates redundancy");
    report.emit(reports, "ablation_correlation")?;
    Ok(())
}

/// Runs all five ablations.
///
/// # Errors
///
/// Returns an I/O error if a report cannot be written.
pub fn run(reports: &Path, per_slot: u32, latency_scale: f64) -> std::io::Result<()> {
    k_sensitivity(reports)?;
    cost_semantics(reports)?;
    latency_robustness(reports)?;
    correlation(reports)?;
    window_sensitivity(reports, per_slot, latency_scale)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_flips_the_generated_strategy_under_tight_latency() {
        assert!(super::k_changes_the_winner());
    }

    #[test]
    fn k_sweep_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-abl-k-{}", std::process::id()));
        k_sensitivity(&dir).unwrap();
        assert!(dir.join("ablation_k.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cost_semantics_shows_parallel_waste() {
        let env = Environment::from_triples(&FIRE_ENV).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parallel = Strategy::parse("a*b*c*d*e").unwrap();
        let charged = simulate(&parallel, &env, 5_000, &mut rng).unwrap();
        let free = simulate_with(
            &VirtualExecutor::without_cancellation_charges(),
            &parallel,
            &env,
            5_000,
            &mut rng,
        )
        .unwrap();
        assert!(
            free.mean_cost < charged.mean_cost * 0.75,
            "parallel waste should exceed 25%: {} vs {}",
            free.mean_cost,
            charged.mean_cost
        );
        // Pure fail-over never cancels anyone, so the semantics agree.
        let failover = Strategy::parse("a-b-c-d-e").unwrap();
        let charged = simulate(&failover, &env, 5_000, &mut rng).unwrap();
        let free = simulate_with(
            &VirtualExecutor::without_cancellation_charges(),
            &failover,
            &env,
            5_000,
            &mut rng,
        )
        .unwrap();
        assert!((free.mean_cost - charged.mean_cost).abs() / charged.mean_cost < 0.05);
    }

    #[test]
    fn latency_robustness_failover_exact_parallel_biased() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let make = |dist: LatencyDistribution| {
            Environment::new(vec![
                MsModel::new(MsId(0), 0.6, dist, 50.0).unwrap(),
                MsModel::new(
                    MsId(1),
                    0.6,
                    match dist {
                        LatencyDistribution::Exponential { .. } => {
                            LatencyDistribution::Exponential { mean: 100.0 }
                        }
                        _ => LatencyDistribution::Constant(100.0),
                    },
                    50.0,
                )
                .unwrap(),
            ])
        };
        // Exponential parallel: measured mean latency below the mean-based
        // estimate (E[min] < min of means effect).
        let env = make(LatencyDistribution::Exponential { mean: 50.0 });
        let s = Strategy::parse("a*b").unwrap();
        let est = estimate(&s, &env.mean_qos_table()).unwrap();
        let measured = simulate(&s, &env, 40_000, &mut rng).unwrap();
        assert!(
            measured.mean_latency < est.latency,
            "measured {} vs estimate {}",
            measured.mean_latency,
            est.latency
        );
    }

    #[test]
    fn higher_k_never_increases_violation_count() {
        let env = EnvQos::from_triples(&FIRE_ENV).unwrap();
        let requirements = Requirements::new(100.0, 100.0, 0.97).unwrap();
        let mut violations: Vec<usize> = Vec::new();
        for k in [1.5, 3.0, 10.0] {
            let generator = Generator::new(UtilityIndex::new(k).unwrap(), 6);
            let generated = generator
                .exhaustive(&env, &env.ids(), &requirements)
                .unwrap();
            violations.push(requirements.violations(&generated.qos).len());
        }
        assert!(
            violations.windows(2).all(|w| w[1] <= w[0] + 1),
            "violation counts should not blow up with k: {violations:?}"
        );
    }
}

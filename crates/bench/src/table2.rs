//! Reproduction of **Table II**: example strategies over the fire-detection
//! microservices and their estimated QoS — plus the Section III.C.3 worked
//! example comparing Algorithm 1 against the folding baseline and a
//! Monte-Carlo measurement.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{simulate, Environment};
use qce_strategy::estimate::estimate_folding;
use qce_strategy::{Algorithm1, EnvQos, Estimator, Strategy};

use crate::report::{fmt_f, fmt_pct, Report};

/// The Section III.D microservice QoS: `[cost, latency, reliability]` for
/// `a`–`e`.
pub const FIRE_ENV: [(f64, f64, f64); 5] = [
    (50.0, 50.0, 0.6),
    (100.0, 100.0, 0.6),
    (150.0, 150.0, 0.7),
    (200.0, 200.0, 0.7),
    (250.0, 250.0, 0.8),
];

/// Table II rows: `(id, strategy, paper cost, paper latency)`. The paper
/// rounds its numbers; exact arithmetic gives 127.2 / 111.2 / 85.92 where
/// it prints 126 / 111 / 85.
pub const TABLE2_ROWS: [(&str, &str, f64, f64); 4] = [
    ("1", "a-b-c-d-e", 126.0, 126.0),
    ("2", "a*b*c*d*e", 750.0, 81.0),
    ("3", "a-b*c-d-e", 162.0, 111.0),
    ("4", "c*(a*b-d*e)", 372.0, 85.0),
];

/// Runs the Table II reproduction and writes `table2.tsv`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics if the hard-coded strategies fail to parse or estimate (they
/// cannot).
pub fn run(reports: &Path) -> std::io::Result<()> {
    run_with(&Algorithm1::new(), reports)
}

/// [`run`] parameterized over the estimator that fills the "Alg.1"
/// columns, so alternative [`Estimator`] implementations can be compared
/// against the paper's numbers.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics if the hard-coded strategies fail to parse or estimate (they
/// cannot).
pub fn run_with(estimator: &dyn Estimator, reports: &Path) -> std::io::Result<()> {
    let env = EnvQos::from_triples(&FIRE_ENV).expect("valid QoS");
    let sim_env = Environment::from_triples(&FIRE_ENV).expect("valid QoS");
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    let mut report = Report::new(
        "Table II: execution strategies and estimated QoS",
        &[
            "id",
            "strategy",
            "cost (paper)",
            "cost (Alg.1)",
            "cost (measured)",
            "latency (paper)",
            "latency (Alg.1)",
            "latency (measured)",
            "reliability",
        ],
    );

    for (id, text, paper_cost, paper_latency) in TABLE2_ROWS {
        let strategy = Strategy::parse(text).expect("valid expression");
        let qos = estimator
            .estimate(&strategy, &env)
            .expect("environment covers ids");
        let measured = simulate(&strategy, &sim_env, 30_000, &mut rng).expect("simulates");
        report.row([
            id.to_string(),
            text.to_string(),
            fmt_f(paper_cost, 0),
            fmt_f(qos.cost, 1),
            fmt_f(measured.mean_cost, 1),
            fmt_f(paper_latency, 0),
            fmt_f(qos.latency, 1),
            fmt_f(measured.mean_latency, 1),
            fmt_pct(qos.reliability.value()),
        ]);
    }
    report.note("paper rounds 127.2->126, 163.2->162, 111.2->111, 85.92->85");
    report.note("measured = 30k virtual-time executions per strategy");
    report.emit(reports, "table2")?;

    // Section III.C.3 worked example: Algorithm 1 vs the folding baseline.
    let mut example = Report::new(
        "Section III.C.3: a*b*c with l=(10,90,70), r=(10%,90%,70%)",
        &["estimator", "latency"],
    );
    let env3 = EnvQos::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)])
        .expect("valid QoS");
    let sim3 = Environment::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)])
        .expect("valid QoS");
    let s = Strategy::parse("a*b*c").expect("valid expression");
    let alg1 = estimator.estimate(&s, &env3).expect("estimates");
    let folded = estimate_folding(&s, &env3).expect("estimates");
    let measured = simulate(&s, &sim3, 60_000, &mut rng).expect("simulates");
    example.row(["Algorithm 1 (ours)".to_string(), fmt_f(alg1.latency, 2)]);
    example.row([
        "folding baseline [15]".to_string(),
        fmt_f(folded.latency, 2),
    ]);
    example.row([
        "measured (60k runs)".to_string(),
        fmt_f(measured.mean_latency, 2),
    ]);
    example.note("paper: 69.4 (ours) vs 73.6 (folding); measurement sides with Algorithm 1");
    example.emit(reports, "section3c3")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_table2_rows_estimate_close_to_paper() {
        let env = EnvQos::from_triples(&FIRE_ENV).unwrap();
        let estimator = Algorithm1::new();
        for (id, text, paper_cost, paper_latency) in TABLE2_ROWS {
            let qos = estimator
                .estimate(&Strategy::parse(text).unwrap(), &env)
                .unwrap();
            // Within 1.5% of the paper's rounded numbers.
            assert!(
                (qos.cost - paper_cost).abs() / paper_cost < 0.015,
                "row {id}: cost {} vs paper {paper_cost}",
                qos.cost
            );
            assert!(
                (qos.latency - paper_latency).abs() / paper_latency < 0.015,
                "row {id}: latency {} vs paper {paper_latency}",
                qos.latency
            );
            assert!((qos.reliability.value() - 0.99712).abs() < 1e-9);
        }
    }

    #[test]
    fn run_writes_reports() {
        let dir = std::env::temp_dir().join(format!("qce-table2-{}", std::process::id()));
        run(&dir).unwrap();
        assert!(dir.join("table2.tsv").exists());
        assert!(dir.join("section3c3.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The Section V.B testbed, rebuilt on the threaded runtime: a gateway
//! (the paper's ThinkCentre M900), a Raspberry Pi hosting `readTempSensor`
//! (DS1820 reads, cached every 30 s), and two M92p desktops hosting
//! `estTemp` (CPU-temperature regression) and `readLocTemp` (two chained
//! web lookups).
//!
//! All three microservices are configured with the paper's QoS knobs:
//! reliability 70% and cost 50. Latencies are the paper-shaped values
//! (30 / 120 / 170 ms, which give the fail-over chain its reported 81 ms
//! estimate) multiplied by a scale factor so quick runs stay quick.

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    Gateway, GatewayConfig, InMemoryMarket, MsSpec, Request, ServiceScript, SimulatedProvider,
};
use qce_strategy::{Qos, Requirements};

/// Service id of the testbed service.
pub const SERVICE: &str = "detect-temperature";

/// The three microservice names, in script order.
pub const NAMES: [&str; 3] = ["readTempSensor", "estTemp", "readLocTemp"];

/// Unscaled latencies (ms). Fail-over over these at r = 0.7 estimates to
/// `30 + 0.3·120 + 0.09·170 = 81.3` — the paper's 81 ms.
pub const BASE_LATENCIES_MS: [f64; 3] = [30.0, 120.0, 170.0];

/// Paper knobs: reliability 70%, cost 50 per microservice.
pub const RELIABILITY: f64 = 0.7;
/// Cost charged per started invocation.
pub const COST: f64 = 50.0;

/// A running testbed.
pub struct Testbed {
    /// The gateway under test.
    pub gateway: Arc<Gateway>,
    /// Handle to the Raspberry Pi's `readTempSensor` provider (the Fig. 8
    /// experiment turns its reliability knob).
    pub sensor: Arc<SimulatedProvider>,
    /// Latency scale applied to [`BASE_LATENCIES_MS`].
    pub latency_scale: f64,
}

impl std::fmt::Debug for Testbed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Testbed")
            .field("latency_scale", &self.latency_scale)
            .finish_non_exhaustive()
    }
}

/// Builds the testbed.
///
/// `slot_size` is the number of invocations per time slot (the paper uses
/// 100); `latency_scale` multiplies the base latencies (1.0 = the paper's
/// milliseconds, 0.1 = 10× faster for quick runs).
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
#[must_use]
pub fn build(slot_size: u32, latency_scale: f64) -> Testbed {
    build_with_config(
        slot_size,
        latency_scale,
        GatewayConfig::builder().collector_window(100).build(),
    )
}

/// Like [`build`] but with an explicit gateway configuration (used by the
/// collector-window ablation).
///
/// # Panics
///
/// Panics only on invalid constants (cannot happen).
#[must_use]
pub fn build_with_config(slot_size: u32, latency_scale: f64, config: GatewayConfig) -> Testbed {
    let market = InMemoryMarket::new();
    let mut script = ServiceScript::new(
        SERVICE,
        NAMES
            .iter()
            .zip(BASE_LATENCIES_MS)
            .map(|(name, latency)| MsSpec {
                name: (*name).to_string(),
                capability: format!("cap-{name}"),
                prior: Qos::new(COST, latency * latency_scale, RELIABILITY)
                    .expect("constants in domain"),
            })
            .collect(),
        // Requirements mirror the simulation experiments, scaled with
        // latency so the utility trade-off is unchanged.
        Requirements::new(100.0, 100.0 * latency_scale.max(0.05), 0.97)
            .expect("constants in domain"),
    );
    script.slot_size = slot_size;
    market.publish(script).expect("script is valid");

    let gateway = Arc::new(Gateway::new(Box::new(market), config));

    let devices = ["raspberry-pi", "m92p-a", "m92p-b"];
    let mut sensor = None;
    for (i, ((name, latency), device)) in
        NAMES.iter().zip(BASE_LATENCIES_MS).zip(devices).enumerate()
    {
        let provider =
            SimulatedProvider::builder(format!("{device}/cap-{name}"), format!("cap-{name}"))
                .cost(COST)
                .latency(Duration::from_secs_f64(latency * latency_scale / 1e3))
                .reliability(RELIABILITY)
                .seed(100 + i as u64)
                .build();
        if i == 0 {
            sensor = Some(Arc::clone(&provider));
        }
        gateway.registry().register(provider);
    }

    Testbed {
        gateway,
        sensor: sensor.expect("first provider is the sensor"),
        latency_scale,
    }
}

/// Aggregate QoS measured over one slot of invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlotQos {
    /// Fraction of successful requests.
    pub reliability: f64,
    /// Mean charged cost.
    pub cost: f64,
    /// Mean latency in (unscaled) paper milliseconds.
    pub latency_ms: f64,
}

/// Runs `n` invocations and aggregates measured QoS, normalizing latency by
/// the testbed's scale so numbers are comparable to the paper's.
///
/// # Panics
///
/// Panics if an invocation fails at the runtime level (the testbed always
/// has providers registered).
#[must_use]
pub fn run_slot(testbed: &Testbed, n: u32) -> SlotQos {
    let mut ok = 0u32;
    let mut cost = 0.0;
    let mut latency = Duration::ZERO;
    for _ in 0..n {
        let response = testbed
            .gateway
            .submit(Request::new(SERVICE))
            .expect("testbed providers are registered");
        if response.success {
            ok += 1;
        }
        cost += response.cost;
        latency += response.latency;
    }
    SlotQos {
        reliability: f64::from(ok) / f64::from(n),
        cost: cost / f64::from(n),
        latency_ms: latency.as_secs_f64() * 1e3 / f64::from(n) / testbed.latency_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_serves_requests() {
        let tb = build(10, 0.02);
        let qos = run_slot(&tb, 10);
        assert!(qos.reliability > 0.5, "r=0.7 per ms, three equivalents");
        assert!(qos.cost >= COST);
    }

    #[test]
    fn slot_zero_uses_parallel_default() {
        let tb = build(100, 0.02);
        let response = tb.gateway.submit(Request::new(SERVICE)).unwrap();
        assert!(response.strategy.is_parallel());
        assert_eq!(response.strategy_text, "readTempSensor*estTemp*readLocTemp");
    }

    #[test]
    fn generated_strategy_matches_papers() {
        // Paper Section V.B: the generated strategy is
        // readTempSensor-estTemp-readLocTemp.
        let tb = build(30, 0.02);
        for _ in 0..30 {
            tb.gateway.submit(Request::new(SERVICE)).unwrap();
        }
        let response = tb.gateway.submit(Request::new(SERVICE)).unwrap();
        assert_eq!(response.strategy_text, "readTempSensor-estTemp-readLocTemp");
    }

    #[test]
    fn latency_normalization_roundtrips_scale() {
        let tb = build(10, 0.02);
        let qos = run_slot(&tb, 5);
        // Normalized latency should be in the ballpark of the paper's
        // unscaled values (tens of ms, far below a second).
        assert!(
            qos.latency_ms > 5.0 && qos.latency_ms < 500.0,
            "{}",
            qos.latency_ms
        );
    }
}

//! Reproduction of the **estimation-correctness** experiment
//! (Section V.A.2): randomly select strategies, execute each 300 times, and
//! compare the measured average QoS against the Algorithm 1 estimate. The
//! paper reports relative errors below 1%.
//!
//! The paper imitates latency with `system.sleep` and uses seconds as the
//! unit to drown out scheduler noise; our virtual-time executor has no
//! scheduler noise at all, so the only error source is Monte-Carlo sampling
//! (which shrinks with the number of runs).

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::{relative_error_pct, simulate, RandomEnvConfig};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::estimate::estimate_folding;
use qce_strategy::{Algorithm1, Estimator, MsId};

use crate::report::{fmt_f, Report};

/// Outcome of validating one strategy.
#[derive(Debug, Clone)]
pub struct Validation {
    /// The strategy rendered as text.
    pub strategy: String,
    /// Relative latency error (percent) of Algorithm 1.
    pub latency_err_pct: f64,
    /// Relative cost error (percent) of Algorithm 1.
    pub cost_err_pct: f64,
    /// Absolute reliability error of Algorithm 1.
    pub reliability_err: f64,
    /// Relative latency error (percent) of the folding baseline.
    pub folding_latency_err_pct: f64,
}

/// Validates `strategies` random strategies (each measured over `runs`
/// virtual executions) against Algorithm 1 and the folding baseline.
#[must_use]
pub fn validate(strategies: usize, runs: u32, seed: u64) -> Vec<Validation> {
    validate_with(&Algorithm1::new(), strategies, runs, seed)
}

/// [`validate`] parameterized over the estimator under test: the table's
/// "Alg.1" columns report whatever `estimator` computes, so alternative
/// [`Estimator`] implementations can be validated against the same
/// virtual-time measurements.
#[must_use]
pub fn validate_with(
    estimator: &dyn Estimator,
    strategies: usize,
    runs: u32,
    seed: u64,
) -> Vec<Validation> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(strategies);
    for i in 0..strategies {
        // Random size 2–5, random environment from the exp2 base config.
        let m = 2 + i % 4;
        let ids: Vec<MsId> = (0..m).map(MsId).collect();
        let strategy = StrategySampler::new(&ids).sample(&mut rng);
        let env = RandomEnvConfig {
            microservices: m,
            avg_cost: 70.0,
            avg_latency: 70.0,
            avg_reliability_pct: 70.0,
            delta: 50.0,
        }
        .generate(&mut rng);
        let table = env.mean_qos_table();
        let est = estimator
            .estimate(&strategy, &table)
            .expect("environment covers ids");
        let folded = estimate_folding(&strategy, &table).expect("environment covers ids");
        let measured = simulate(&strategy, &env, runs, &mut rng).expect("simulates");
        out.push(Validation {
            strategy: strategy.to_string(),
            latency_err_pct: relative_error_pct(measured.mean_latency, est.latency),
            cost_err_pct: relative_error_pct(measured.mean_cost, est.cost),
            reliability_err: (measured.success_rate - est.reliability.value()).abs(),
            folding_latency_err_pct: relative_error_pct(measured.mean_latency, folded.latency),
        });
    }
    out
}

/// Runs the estimation-correctness reproduction and writes
/// `estimation.tsv`.
///
/// `runs` is the number of executions per strategy; the paper uses 300,
/// which with Monte-Carlo noise alone yields mean errors around 1–3%;
/// larger values show convergence.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(reports: &Path, strategies: usize, runs: u32, seed: u64) -> std::io::Result<()> {
    let validations = validate(strategies, runs, seed);
    let mean = |f: &dyn Fn(&Validation) -> f64| {
        validations.iter().map(f).sum::<f64>() / validations.len() as f64
    };
    let max = |f: &dyn Fn(&Validation) -> f64| validations.iter().map(f).fold(0.0f64, f64::max);

    let mut report = Report::new(
        format!("Estimation correctness: {strategies} random strategies x {runs} executions"),
        &["metric", "mean", "max"],
    );
    report.row([
        "Alg.1 latency error %".to_string(),
        fmt_f(mean(&|v| v.latency_err_pct), 3),
        fmt_f(max(&|v| v.latency_err_pct), 3),
    ]);
    report.row([
        "Alg.1 cost error %".to_string(),
        fmt_f(mean(&|v| v.cost_err_pct), 3),
        fmt_f(max(&|v| v.cost_err_pct), 3),
    ]);
    report.row([
        "Alg.1 reliability error (abs)".to_string(),
        fmt_f(mean(&|v| v.reliability_err), 4),
        fmt_f(max(&|v| v.reliability_err), 4),
    ]);
    report.row([
        "folding [15] latency error %".to_string(),
        fmt_f(mean(&|v| v.folding_latency_err_pct), 3),
        fmt_f(max(&|v| v.folding_latency_err_pct), 3),
    ]);
    report.note("paper: Alg.1 errors < 1% at 300 runs (their unit trick == our virtual time)");
    report.note("folding errs much larger on parallel-heavy strategies (Section III.C.3)");
    report.emit(reports, "estimation")?;

    // The worked example at the paper's exact scale.
    let mut worked = Report::new(
        "a*b*c worked example at 300 runs (paper: measures 69.43 vs estimate 69.4)",
        &["quantity", "value"],
    );
    let env =
        qce_sim::Environment::from_triples(&[(1.0, 10.0, 0.1), (1.0, 90.0, 0.9), (1.0, 70.0, 0.7)])
            .expect("valid QoS");
    let strategy = qce_strategy::Strategy::parse("a*b*c").expect("valid expression");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Average many 300-run batches, mirroring how the paper repeats runs.
    let batches = 50;
    let mut batch_means = Vec::new();
    for _ in 0..batches {
        let stats = simulate(&strategy, &env, 300, &mut rng).expect("simulates");
        batch_means.push(stats.mean_latency);
    }
    let grand = batch_means.iter().sum::<f64>() / batch_means.len() as f64;
    worked.row(["estimate (Alg.1)".to_string(), "69.40".to_string()]);
    worked.row([
        format!("measured (mean of {batches} x 300-run batches)"),
        fmt_f(grand, 2),
    ]);
    worked.emit(reports, "estimation_worked")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_shrink_with_more_runs() {
        let coarse = validate(12, 300, 1);
        let fine = validate(12, 30_000, 1);
        let mean =
            |v: &[Validation]| v.iter().map(|x| x.latency_err_pct).sum::<f64>() / v.len() as f64;
        assert!(mean(&fine) < mean(&coarse) + 0.5, "convergence");
        assert!(
            mean(&fine) < 1.0,
            "high-run error under 1%: {}",
            mean(&fine)
        );
    }

    #[test]
    fn algorithm1_beats_folding_overall() {
        let v = validate(30, 10_000, 2);
        let alg1: f64 = v.iter().map(|x| x.latency_err_pct).sum();
        let folding: f64 = v.iter().map(|x| x.folding_latency_err_pct).sum();
        assert!(
            alg1 < folding,
            "Alg.1 total error {alg1:.2}% vs folding {folding:.2}%"
        );
    }

    #[test]
    fn reliability_error_is_small() {
        let v = validate(20, 10_000, 3);
        for x in &v {
            assert!(
                x.reliability_err < 0.02,
                "{}: {}",
                x.strategy,
                x.reliability_err
            );
        }
    }

    #[test]
    fn validate_with_memoizing_estimator_matches_default_path() {
        let default = validate(6, 300, 7);
        let explicit = validate_with(&Algorithm1::new(), 6, 300, 7);
        assert_eq!(default.len(), explicit.len());
        for (a, b) in default.iter().zip(&explicit) {
            assert_eq!(a.strategy, b.strategy);
            assert_eq!(a.latency_err_pct.to_bits(), b.latency_err_pct.to_bits());
            assert_eq!(a.cost_err_pct.to_bits(), b.cost_err_pct.to_bits());
        }
    }

    #[test]
    fn run_writes_reports() {
        let dir = std::env::temp_dir().join(format!("qce-est-{}", std::process::id()));
        run(&dir, 5, 300, 4).unwrap();
        assert!(dir.join("estimation.tsv").exists());
        assert!(dir.join("estimation_worked.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! `bench-scenarios`: the adversarial scenario pack and its
//! QoS-consistency gate.
//!
//! A curated pack of six scenarios — diurnal load, a flash crowd against
//! bounded admission, a correlated total-blackout storm, device churn, a
//! heterogeneous three-service market, and a mixed-class overload — is
//! replayed through the [`scenario`](qce_runtime::scenario) runner on
//! virtual time (zero real sleeps). For each scenario the bench reports
//! per-slot requirement satisfaction rate, shed rate, p99 latency, and
//! post-storm adaptation lag, then enforces committed floors:
//!
//! * every scenario is run **twice** and must produce identical outcomes
//!   (the determinism gate: same seed ⇒ same per-slot metrics);
//! * per-scenario metric floors (minimum satisfaction, maximum shed rate,
//!   maximum adaptation lag in slots, maximum p99) must hold;
//! * class-gated scenarios additionally enforce per-class floors: under 2x
//!   overload, Critical-class satisfaction and p99 must hold their
//!   calm-phase floors while the Scavenger tier absorbs at least 80% of
//!   the sheds.
//!
//! Artifacts — `reports/bench_scenarios.tsv` and the committed
//! `BENCH_scenarios.json` — are written *before* the gate is evaluated, so
//! a failing run still leaves the evidence on disk; the gate then returns
//! a non-zero exit for CI.
//!
//! `QCE_SCENARIOS_MIN_SATISFACTION` overrides every scenario's minimum
//! overall satisfaction floor, and `QCE_CLASSES_CRITICAL_MIN_SATISFACTION`
//! overrides the Critical-class floor of class-gated scenarios (CI uses an
//! impossible `1.1` on both to prove each gate trips).

use std::io;
use std::path::Path;

use qce_runtime::scenario::{
    run_scenario, Churn, GatewayKnobs, LoadPhase, MsDef, Require, Scenario, ScenarioOutcome,
    ServiceDef, Storm,
};
use qce_runtime::QosClass;

use crate::report::{fmt_f, fmt_pct, Report};

/// The satisfaction level a storm must recover to, and within how many
/// slots of the storm clearing (the adaptation-lag gate).
const RECOVERY_FLOOR: f64 = 0.8;
const MAX_ADAPTATION_LAG: u32 = 2;

/// One scenario plus the floors its outcome must clear.
struct Case {
    scenario: Scenario,
    /// Minimum overall requirement-satisfaction rate.
    min_satisfaction: f64,
    /// Maximum overall shed rate.
    max_shed_rate: f64,
    /// Maximum per-slot p99 latency (virtual ms) across non-storm slots.
    max_p99_ms: f64,
    /// Per-class floors for mixed-class scenarios; `None` skips the class
    /// gate.
    class_floors: Option<ClassFloors>,
}

/// The multi-class QoS gate: what the tiers owe their traffic even under
/// overload.
struct ClassFloors {
    /// Minimum whole-run Critical satisfaction rate (overridable via
    /// `QCE_CLASSES_CRITICAL_MIN_SATISFACTION`).
    critical_min_satisfaction: f64,
    /// Maximum per-slot Critical p99 (virtual ms) across *all* slots —
    /// overload slots included, which is the point: Critical latency must
    /// hold its calm-phase ceiling while the gate sheds around it.
    critical_max_p99_ms: f64,
    /// Minimum fraction of all shed requests that were Scavenger-class.
    scavenger_min_shed_share: f64,
}

fn ms(name: &str, cost: f64, latency_ms: f64, reliability: f64) -> MsDef {
    MsDef {
        name: name.to_string(),
        cost,
        latency_ms,
        reliability,
    }
}

fn service(
    name: &str,
    microservices: Vec<MsDef>,
    require: Require,
    quorum: Option<usize>,
) -> ServiceDef {
    ServiceDef {
        name: name.to_string(),
        microservices,
        require,
        penalty_k: None,
        quorum,
        class: None,
    }
}

/// Diurnal curve: a lull, a daytime peak at 2x, an evening tail. Strictly
/// sequential issue (burst 0), fractional reliabilities allowed.
///
/// Slot lengths throughout the pack scale with `rps`: the replayer issues
/// sequential requests back to back on virtual time, so a slot must be
/// long enough to *hold* its own load (peak requests x worst join
/// latency) or the tail drifts into the next slot's wall-clock window and
/// storm alignment is lost.
fn diurnal(rps: u32) -> Case {
    Case {
        scenario: Scenario {
            name: "diurnal".to_string(),
            seed: 11,
            slots: 12,
            slot_ms: u64::from(rps) * 16,
            requests_per_slot: rps,
            load: vec![
                LoadPhase {
                    from_slot: 0,
                    to_slot: 4,
                    multiplier: 0.5,
                    burst: 0,
                    classes: Vec::new(),
                },
                LoadPhase {
                    from_slot: 4,
                    to_slot: 9,
                    multiplier: 2.0,
                    burst: 0,
                    classes: Vec::new(),
                },
                LoadPhase {
                    from_slot: 9,
                    to_slot: 12,
                    multiplier: 0.75,
                    burst: 0,
                    classes: Vec::new(),
                },
            ],
            services: vec![service(
                "temp",
                vec![
                    ms("read", 20.0, 2.0, 0.95),
                    ms("est", 10.0, 4.0, 0.9),
                    ms("loc", 5.0, 8.0, 0.85),
                ],
                Require {
                    cost: 60.0,
                    latency_ms: 40.0,
                    reliability: 0.8,
                },
                None,
            )],
            storms: Vec::new(),
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs::default(),
        },
        min_satisfaction: 0.95,
        max_shed_rate: 0.0,
        max_p99_ms: 40.0,
        class_floors: None,
    }
}

/// Flash crowd: 4x load issued in concurrent batches of 8 against a
/// 2-in-flight / 2-deep admission gate, so every batch sheds exactly its
/// overflow (burst phases require 0/1 reliabilities).
fn flash_crowd(rps: u32) -> Case {
    Case {
        scenario: Scenario {
            name: "flash-crowd".to_string(),
            seed: 23,
            slots: 6,
            slot_ms: u64::from(rps) * 8,
            requests_per_slot: rps,
            load: vec![LoadPhase {
                from_slot: 2,
                to_slot: 4,
                multiplier: 4.0,
                burst: 8,
                classes: Vec::new(),
            }],
            services: vec![service(
                "relay",
                vec![ms("fast", 10.0, 2.0, 1.0), ms("slow", 5.0, 6.0, 1.0)],
                Require {
                    cost: 40.0,
                    latency_ms: 30.0,
                    reliability: 0.9,
                },
                None,
            )],
            storms: Vec::new(),
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs {
                max_in_flight: Some(2),
                admission_queue: Some(2),
                ..GatewayKnobs::default()
            },
        },
        min_satisfaction: 0.5,
        max_shed_rate: 0.5,
        max_p99_ms: 30.0,
        class_floors: None,
    }
}

/// Correlated total blackout: both providers of the service share a radio
/// link that dies for slots 2–3. The gate is the adaptation lag — once
/// the storm clears, satisfaction must recover within
/// [`MAX_ADAPTATION_LAG`] slots.
fn storm_blackout(rps: u32) -> Case {
    let slot_ms = u64::from(rps) * 8;
    Case {
        scenario: Scenario {
            name: "storm-blackout".to_string(),
            seed: 37,
            slots: 8,
            slot_ms,
            requests_per_slot: rps,
            load: Vec::new(),
            services: vec![service(
                "sense",
                vec![ms("a", 10.0, 2.0, 1.0), ms("b", 20.0, 4.0, 1.0)],
                Require {
                    cost: 60.0,
                    latency_ms: 30.0,
                    reliability: 0.9,
                },
                None,
            )],
            storms: vec![Storm {
                name: "radio-outage".to_string(),
                group: vec!["sense/a".to_string(), "sense/b".to_string()],
                from_ms: 2 * slot_ms,
                to_ms: 4 * slot_ms,
            }],
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs {
                collector_window: Some(20),
                ..GatewayKnobs::default()
            },
        },
        min_satisfaction: 0.5,
        max_shed_rate: 0.0,
        max_p99_ms: 30.0,
        class_floors: None,
    }
}

/// Device churn: the cheap provider leaves mid-run and re-joins two slots
/// later; the service must degrade to the survivor, not fail.
fn churn(rps: u32) -> Case {
    let slot_ms = u64::from(rps) * 8;
    Case {
        scenario: Scenario {
            name: "churn".to_string(),
            seed: 41,
            slots: 6,
            slot_ms,
            requests_per_slot: rps,
            load: Vec::new(),
            services: vec![service(
                "track",
                vec![ms("cheap", 5.0, 3.0, 0.95), ms("dear", 25.0, 2.0, 0.99)],
                Require {
                    cost: 40.0,
                    latency_ms: 30.0,
                    reliability: 0.9,
                },
                None,
            )],
            storms: Vec::new(),
            churn: vec![Churn {
                provider: "track/cheap".to_string(),
                leave_ms: 3 * slot_ms / 2,
                rejoin_ms: Some(7 * slot_ms / 2),
            }],
            background: None,
            gateway: GatewayKnobs::default(),
        },
        min_satisfaction: 0.7,
        max_shed_rate: 0.0,
        max_p99_ms: 30.0,
        class_floors: None,
    }
}

/// Heterogeneous market: three services with different M, mixed QoS
/// envelopes, and one quorum service, all sharing the gateway.
fn heterogeneous(rps: u32) -> Case {
    Case {
        scenario: Scenario {
            name: "heterogeneous".to_string(),
            seed: 53,
            slots: 6,
            slot_ms: u64::from(rps) * 32,
            requests_per_slot: rps,
            load: Vec::new(),
            services: vec![
                service(
                    "thin",
                    vec![ms("only", 10.0, 2.0, 0.95)],
                    Require {
                        cost: 20.0,
                        latency_ms: 20.0,
                        reliability: 0.9,
                    },
                    None,
                ),
                service(
                    "wide",
                    vec![
                        ms("w0", 5.0, 2.0, 0.9),
                        ms("w1", 10.0, 4.0, 0.9),
                        ms("w2", 15.0, 6.0, 0.9),
                        ms("w3", 20.0, 8.0, 0.9),
                    ],
                    Require {
                        cost: 80.0,
                        latency_ms: 40.0,
                        reliability: 0.85,
                    },
                    None,
                ),
                service(
                    "agree",
                    vec![
                        ms("q0", 10.0, 2.0, 1.0),
                        ms("q1", 10.0, 4.0, 1.0),
                        ms("q2", 10.0, 6.0, 1.0),
                    ],
                    Require {
                        cost: 60.0,
                        latency_ms: 30.0,
                        reliability: 0.9,
                    },
                    Some(2),
                ),
            ],
            storms: Vec::new(),
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs::default(),
        },
        min_satisfaction: 0.85,
        max_shed_rate: 0.0,
        max_p99_ms: 40.0,
        class_floors: None,
    }
}

/// Mixed-class overload: every burst group carries 2 Critical + 6
/// Scavenger requests against a 2-in-flight / 2-deep admission gate. The
/// overload phase doubles the calm load; the class gate demands that
/// Critical traffic keeps its calm-phase satisfaction and p99 while the
/// Scavenger tier absorbs at least
/// [`scavenger_min_shed_share`](ClassFloors::scavenger_min_shed_share) of
/// the sheds.
fn mixed_class_overload(rps: u32) -> Case {
    let tiered = vec![
        QosClass::Critical,
        QosClass::Scavenger,
        QosClass::Scavenger,
        QosClass::Scavenger,
    ];
    Case {
        scenario: Scenario {
            name: "mixed-class-overload".to_string(),
            seed: 61,
            slots: 6,
            slot_ms: u64::from(rps) * 8,
            requests_per_slot: rps,
            load: vec![
                LoadPhase {
                    from_slot: 0,
                    to_slot: 2,
                    multiplier: 1.0,
                    burst: 0,
                    classes: tiered.clone(),
                },
                LoadPhase {
                    from_slot: 2,
                    to_slot: 4,
                    multiplier: 2.0,
                    burst: 8,
                    classes: tiered.clone(),
                },
                LoadPhase {
                    from_slot: 4,
                    to_slot: 6,
                    multiplier: 1.0,
                    burst: 0,
                    classes: tiered,
                },
            ],
            services: vec![service(
                "tiered",
                vec![ms("fast", 10.0, 2.0, 1.0), ms("slow", 5.0, 6.0, 1.0)],
                Require {
                    cost: 40.0,
                    latency_ms: 30.0,
                    reliability: 0.9,
                },
                None,
            )],
            storms: Vec::new(),
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs {
                max_in_flight: Some(2),
                admission_queue: Some(2),
                ..GatewayKnobs::default()
            },
        },
        min_satisfaction: 0.7,
        max_shed_rate: 0.25,
        max_p99_ms: 30.0,
        class_floors: Some(ClassFloors {
            critical_min_satisfaction: 1.0,
            critical_max_p99_ms: 30.0,
            scavenger_min_shed_share: 0.8,
        }),
    }
}

fn pack(rps: u32) -> Vec<Case> {
    vec![
        diurnal(rps),
        flash_crowd(rps),
        storm_blackout(rps),
        churn(rps),
        heterogeneous(rps),
        mixed_class_overload(rps),
    ]
}

/// Worst (largest) per-slot p99 across slots outside every storm span.
fn worst_calm_p99(outcome: &ScenarioOutcome) -> f64 {
    outcome
        .per_slot
        .iter()
        .filter(|m| m.requests > 0 && !outcome.is_storm_slot(m.slot))
        .map(|m| m.p99_latency_ms)
        .fold(0.0, f64::max)
}

/// Worst (largest) per-slot Critical-class p99 across *every* slot —
/// overload slots included.
fn worst_critical_p99(outcome: &ScenarioOutcome) -> f64 {
    outcome
        .per_slot
        .iter()
        .filter_map(|m| m.class(QosClass::Critical))
        .map(|c| c.p99_latency_ms)
        .fold(0.0, f64::max)
}

fn classes_json(outcome: &ScenarioOutcome) -> String {
    outcome
        .classes
        .iter()
        .map(|c| {
            format!(
                "{{\"class\": \"{}\", \"requests\": {}, \"satisfied\": {}, \"shed\": {}, \
                 \"failed\": {}, \"satisfaction\": {}, \"p99_ms\": {}}}",
                c.class,
                c.requests,
                c.satisfied,
                c.shed,
                c.failed,
                fmt_f(c.satisfaction_rate, 4),
                fmt_f(c.p99_latency_ms, 3),
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn outcome_json(outcome: &ScenarioOutcome) -> String {
    let lags: Vec<String> = outcome
        .adaptation_lags(RECOVERY_FLOOR)
        .into_iter()
        .map(|(storm, lag)| {
            format!(
                "{{\"storm\": \"{storm}\", \"lag_slots\": {}}}",
                lag.map_or_else(|| "null".to_string(), |l| l.to_string())
            )
        })
        .collect();
    let slots: Vec<String> = outcome
        .per_slot
        .iter()
        .map(|m| {
            format!(
                "{{\"slot\": {}, \"requests\": {}, \"satisfied\": {}, \"shed\": {}, \
                 \"failed\": {}, \"satisfaction\": {}, \"p99_ms\": {}, \"mean_cost\": {}, \
                 \"storm\": {}}}",
                m.slot,
                m.requests,
                m.satisfied,
                m.shed,
                m.failed,
                fmt_f(m.satisfaction_rate, 4),
                fmt_f(m.p99_latency_ms, 3),
                fmt_f(m.mean_cost, 3),
                outcome.is_storm_slot(m.slot),
            )
        })
        .collect();
    format!(
        "{{\n    \"name\": \"{}\",\n    \"requests\": {},\n    \"satisfied\": {},\n    \
         \"shed\": {},\n    \"failed\": {},\n    \"satisfaction_rate\": {},\n    \
         \"shed_rate\": {},\n    \"worst_calm_p99_ms\": {},\n    \
         \"scavenger_shed_share\": {},\n    \"classes\": [{}],\n    \
         \"adaptation_lags\": [{}],\n    \"per_slot\": [\n      {}\n    ]\n  }}",
        outcome.name,
        outcome.total_requests,
        outcome.total_satisfied,
        outcome.total_shed,
        outcome.total_failed,
        fmt_f(outcome.satisfaction_rate(), 4),
        fmt_f(outcome.shed_rate(), 4),
        fmt_f(worst_calm_p99(outcome), 3),
        fmt_f(outcome.shed_share(QosClass::Scavenger), 4),
        classes_json(outcome),
        lags.join(", "),
        slots.join(",\n      "),
    )
}

/// Checks one outcome against its case's floors, appending any violation.
fn check_floors(case: &Case, outcome: &ScenarioOutcome, violations: &mut Vec<String>) {
    let name = &outcome.name;
    let min_satisfaction = std::env::var("QCE_SCENARIOS_MIN_SATISFACTION")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(case.min_satisfaction);
    if outcome.satisfaction_rate() < min_satisfaction {
        violations.push(format!(
            "{name}: satisfaction {} below floor {}",
            fmt_f(outcome.satisfaction_rate(), 4),
            fmt_f(min_satisfaction, 4)
        ));
    }
    if outcome.shed_rate() > case.max_shed_rate {
        violations.push(format!(
            "{name}: shed rate {} above ceiling {}",
            fmt_f(outcome.shed_rate(), 4),
            fmt_f(case.max_shed_rate, 4)
        ));
    }
    let p99 = worst_calm_p99(outcome);
    if p99 > case.max_p99_ms {
        violations.push(format!(
            "{name}: calm-slot p99 {} ms above ceiling {} ms",
            fmt_f(p99, 3),
            fmt_f(case.max_p99_ms, 3)
        ));
    }
    for (storm, lag) in outcome.adaptation_lags(RECOVERY_FLOOR) {
        match lag {
            Some(lag) if lag <= MAX_ADAPTATION_LAG => {}
            Some(lag) => violations.push(format!(
                "{name}: storm {storm} adaptation lag {lag} slots exceeds {MAX_ADAPTATION_LAG}"
            )),
            None => violations.push(format!(
                "{name}: satisfaction never recovered to {RECOVERY_FLOOR} after storm {storm}"
            )),
        }
    }
    if let Some(floors) = &case.class_floors {
        let critical_floor = std::env::var("QCE_CLASSES_CRITICAL_MIN_SATISFACTION")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(floors.critical_min_satisfaction);
        let critical_satisfaction = outcome
            .class(QosClass::Critical)
            .map_or(1.0, |c| c.satisfaction_rate);
        if critical_satisfaction < critical_floor {
            violations.push(format!(
                "{name}: critical satisfaction {} below floor {}",
                fmt_f(critical_satisfaction, 4),
                fmt_f(critical_floor, 4)
            ));
        }
        let critical_p99 = worst_critical_p99(outcome);
        if critical_p99 > floors.critical_max_p99_ms {
            violations.push(format!(
                "{name}: critical p99 {} ms above ceiling {} ms",
                fmt_f(critical_p99, 3),
                fmt_f(floors.critical_max_p99_ms, 3)
            ));
        }
        let share = outcome.shed_share(QosClass::Scavenger);
        if share < floors.scavenger_min_shed_share {
            violations.push(format!(
                "{name}: scavenger shed share {} below floor {}",
                fmt_f(share, 4),
                fmt_f(floors.scavenger_min_shed_share, 4)
            ));
        }
    }
}

/// Replays the scenario pack (each scenario twice, checking determinism),
/// writes `reports/bench_scenarios.tsv` plus `json_out` (committed as
/// `BENCH_scenarios.json`).
///
/// `rps` scales the base `requests_per_slot` of every scenario; the
/// committed artifact uses the default 50 (≈ 2 900 requests across the
/// pack).
///
/// # Errors
///
/// Returns an I/O error if an artifact cannot be written — or, so CI can
/// key on the exit code, if a replay was non-deterministic or a metric
/// floor was violated. Floors are evaluated *after* the artifacts are
/// written.
pub fn run(reports: &Path, json_out: &Path, rps: u32) -> io::Result<()> {
    let rps = rps.max(1);
    let cases = pack(rps);

    let mut outcomes = Vec::with_capacity(cases.len());
    let mut violations = Vec::new();
    for case in &cases {
        let first = run_scenario(&case.scenario)
            .map_err(|e| io::Error::other(format!("{}: {e}", case.scenario.name)))?
            .outcome;
        let second = run_scenario(&case.scenario)
            .map_err(|e| io::Error::other(format!("{}: {e}", case.scenario.name)))?
            .outcome;
        if first != second {
            violations.push(format!(
                "{}: replay diverged between two runs of the same seed",
                case.scenario.name
            ));
        }
        outcomes.push(first);
    }

    let mut report = Report::new(
        format!("bench-scenarios: adversarial pack, {rps} base requests/slot"),
        &[
            "scenario",
            "slot",
            "requests",
            "satisfied",
            "shed",
            "failed",
            "satisfaction",
            "p99_ms",
            "mean_cost",
            "storm",
        ],
    );
    for outcome in &outcomes {
        for m in &outcome.per_slot {
            report.row([
                outcome.name.clone(),
                m.slot.to_string(),
                m.requests.to_string(),
                m.satisfied.to_string(),
                m.shed.to_string(),
                m.failed.to_string(),
                fmt_f(m.satisfaction_rate, 4),
                fmt_f(m.p99_latency_ms, 3),
                fmt_f(m.mean_cost, 3),
                outcome.is_storm_slot(m.slot).to_string(),
            ]);
        }
    }
    for (case, outcome) in cases.iter().zip(&outcomes) {
        report.note(format!(
            "{}: {} requests, satisfaction {} (floor {}), shed {} (ceiling {})",
            outcome.name,
            outcome.total_requests,
            fmt_pct(outcome.satisfaction_rate()),
            fmt_pct(case.min_satisfaction),
            fmt_pct(outcome.shed_rate()),
            fmt_pct(case.max_shed_rate),
        ));
        if let Some(floors) = &case.class_floors {
            report.note(format!(
                "{}: class gate — critical satisfaction {} (floor {}), critical p99 {} ms \
                 (ceiling {} ms), scavenger shed share {} (floor {})",
                outcome.name,
                fmt_pct(
                    outcome
                        .class(QosClass::Critical)
                        .map_or(1.0, |c| c.satisfaction_rate)
                ),
                fmt_pct(floors.critical_min_satisfaction),
                fmt_f(worst_critical_p99(outcome), 3),
                fmt_f(floors.critical_max_p99_ms, 3),
                fmt_pct(outcome.shed_share(QosClass::Scavenger)),
                fmt_pct(floors.scavenger_min_shed_share),
            ));
        }
    }
    report.note(format!(
        "determinism gate: every scenario replayed twice with identical outcomes; \
         adaptation-lag gate: recovery to {RECOVERY_FLOOR} within {MAX_ADAPTATION_LAG} \
         slots of each storm clearing"
    ));
    report.emit(reports, "bench_scenarios")?;

    let total: u64 = outcomes.iter().map(|o| o.total_requests).sum();
    let json = format!(
        "{{\n  \"benchmark\": \"bench-scenarios\",\n  \"base_requests_per_slot\": {rps},\n  \
         \"total_requests\": {total},\n  \"recovery_floor\": {},\n  \
         \"max_adaptation_lag_slots\": {MAX_ADAPTATION_LAG},\n  \"scenarios\": [\n  {}\n  ]\n}}\n",
        fmt_f(RECOVERY_FLOOR, 2),
        outcomes
            .iter()
            .map(outcome_json)
            .collect::<Vec<_>>()
            .join(",\n  "),
    );
    if let Some(parent) = json_out.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(json_out, json)?;
    println!("bench-scenarios: wrote {}", json_out.display());

    for (case, outcome) in cases.iter().zip(&outcomes) {
        check_floors(case, outcome, &mut violations);
    }
    if !violations.is_empty() {
        return Err(io::Error::other(format!(
            "bench-scenarios: {} gate violation(s): {}",
            violations.len(),
            violations.join("; ")
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_is_valid_and_big_enough() {
        for case in pack(50) {
            case.scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", case.scenario.name));
        }
        // The default pack drives >= 10^3 virtual clients end to end.
        let total: u64 = pack(50)
            .iter()
            .map(|c| {
                (0..c.scenario.slots)
                    .map(|s| u64::from(c.scenario.requests_in_slot(s)))
                    .sum::<u64>()
                    * c.scenario.services.len() as u64
            })
            .sum();
        assert!(total >= 1_000, "pack too small: {total}");
    }

    #[test]
    fn storm_case_recovers_within_the_lag_gate() {
        let case = storm_blackout(10);
        let outcome = run_scenario(&case.scenario).unwrap().outcome;
        let lags = outcome.adaptation_lags(RECOVERY_FLOOR);
        assert_eq!(lags.len(), 1);
        assert!(
            matches!(lags[0].1, Some(lag) if lag <= MAX_ADAPTATION_LAG),
            "storm must clear within the gate: {lags:?}"
        );
        let mut violations = Vec::new();
        check_floors(&case, &outcome, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn run_writes_artifacts_and_passes_floors() {
        let dir = std::env::temp_dir().join(format!("qce-scenarios-{}", std::process::id()));
        let json = dir.join("BENCH_scenarios.json");
        run(&dir, &json, 6).unwrap();
        let tsv = std::fs::read_to_string(dir.join("bench_scenarios.tsv")).unwrap();
        assert!(tsv.contains("flash-crowd"));
        assert!(tsv.contains("storm-blackout"));
        let first = std::fs::read_to_string(&json).unwrap();
        assert!(first.contains("\"adaptation_lags\""));
        // Same seed, same pack: the JSON artifact is byte-identical.
        run(&dir, &json, 6).unwrap();
        let second = std::fs::read_to_string(&json).unwrap();
        assert_eq!(first, second);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn impossible_floor_trips_the_gate() {
        let case = churn(4);
        let outcome = run_scenario(&case.scenario).unwrap().outcome;
        let strict = Case {
            min_satisfaction: 1.1,
            ..case
        };
        let mut violations = Vec::new();
        check_floors(&strict, &outcome, &mut violations);
        assert!(
            violations.iter().any(|v| v.contains("below floor")),
            "{violations:?}"
        );
    }

    #[test]
    fn mixed_class_case_holds_critical_floors_while_scavengers_absorb_sheds() {
        let case = mixed_class_overload(8);
        let first = run_scenario(&case.scenario).unwrap().outcome;
        let second = run_scenario(&case.scenario).unwrap().outcome;
        assert_eq!(first, second, "mixed-class replay must be deterministic");
        assert!(first.total_shed > 0, "the overload phase must shed");
        let critical = first.class(QosClass::Critical).unwrap();
        assert_eq!(critical.shed, 0);
        assert_eq!(critical.satisfaction_rate, 1.0);
        assert_eq!(first.shed_share(QosClass::Scavenger), 1.0);
        let mut violations = Vec::new();
        check_floors(&case, &first, &mut violations);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn impossible_critical_floor_trips_the_class_gate() {
        let case = mixed_class_overload(8);
        let outcome = run_scenario(&case.scenario).unwrap().outcome;
        let strict = Case {
            class_floors: Some(ClassFloors {
                critical_min_satisfaction: 1.1,
                critical_max_p99_ms: 30.0,
                scavenger_min_shed_share: 0.8,
            }),
            ..case
        };
        let mut violations = Vec::new();
        check_floors(&strict, &outcome, &mut violations);
        assert!(
            violations
                .iter()
                .any(|v| v.contains("critical satisfaction") && v.contains("below floor")),
            "{violations:?}"
        );
    }
}

//! `bench-replan` — before/after benchmark of slot re-planning: the
//! warm-start plan cache, the pluggable search backends, and the
//! drift-triggered re-plan policy.
//!
//! The gateway re-plans once per time slot, and real deployments cycle
//! through a small set of recurring environment regimes (day/night load,
//! the same devices flapping in and out). The benchmark has three phases:
//!
//! 1. **Cache** — the harness models recurring regimes with `PHASES`
//!    seeded environments visited round-robin over `slots` slots, and
//!    times the same exhaustive search three ways: **cold** (full search
//!    every slot), **warm-start** (previous winner seeds the
//!    branch-and-bound bar), and **cached** (warm-start plus a
//!    [`PlanCache`]). Every warm-start and cached slot is checked
//!    **bit-for-bit** against the cold search; any divergence aborts with
//!    a nonzero exit.
//! 2. **Backends** — the greedy and beam search backends run on the same
//!    environments. For `M <= 6` the exhaustive search provides ground
//!    truth and the per-backend relative utility gap is gated by
//!    `QCE_REPLAN_MAX_UTILITY_GAP` (default `0.05`, strict `>`); for
//!    `M = 8, 10` — beyond exhaustive reach — beam must match or beat
//!    greedy (the width-monotonicity theorem, checked on real utilities).
//! 3. **Drift** — two identical virtual-time gateways serve the same
//!    request stream, one re-planning every slot (cadence) and one with
//!    `replan_on_drift`: the drift gateway must cut the re-plan count
//!    while matching the cadence gateway's satisfaction, in both a steady
//!    regime and one with a mid-run latency shift.
//!
//! Wall-clock timings go to the TSV reports only; `BENCH_replan.json`
//! holds counters, utilities, and gaps exclusively, so two runs of the
//! same build produce byte-identical JSON (the CI job `cmp`s them). The
//! gap and drift gates run *after* the artifacts are written, so a
//! tripped gate still leaves the numbers behind for inspection.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_runtime::{
    FaultEvent, FaultKind, FaultPlan, GatewayConfig, Harness, MsSpec, ServiceScript,
    SimulatedProvider,
};
use qce_strategy::{
    BackendChoice, EnvQos, Generated, Generator, PlanCache, PlanCacheConfig, Qos, Requirements,
    DEFAULT_BEAM_WIDTH,
};

use crate::fig5::sim_requirements;
use crate::fig7::scaling_config;
use crate::report::{fmt_f, Report};

/// How many distinct environment regimes the slot sequence cycles through.
const PHASES: usize = 4;

/// Microservice counts probed beyond the exhaustive threshold, where only
/// the approximate backends can run.
const LARGE_M: [usize; 2] = [8, 10];

/// Seed salt for the backend sweep, so it draws its own environment
/// family independent of the cache phase's slot regimes.
const BACKEND_ENV_SALT: u64 = 8u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);

/// Per-slot timings of one configuration over the whole slot sequence.
#[derive(Debug, Clone)]
struct Timed {
    results: Vec<Generated>,
    per_slot: Vec<Duration>,
}

/// The deterministic environments of one `M` point: `PHASES` recurring
/// regimes drawn from the fig-7 scaling base.
fn phase_envs(m: usize, seed: u64) -> Vec<EnvQos> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((m as u64) << 32));
    (0..PHASES)
        .map(|_| scaling_config(m).generate(&mut rng).mean_qos_table())
        .collect()
}

/// Runs `generator.exhaustive` once per slot over the cycling environments
/// and records each slot's wall time. The generator is reused across
/// slots, which is exactly what lets warm-start and the cache help.
fn drive(generator: &Generator, envs: &[EnvQos], slots: usize, req: &Requirements) -> Timed {
    let mut results = Vec::with_capacity(slots);
    let mut per_slot = Vec::with_capacity(slots);
    for slot in 0..slots {
        let env = &envs[slot % envs.len()];
        let ids = env.ids();
        let started = Instant::now();
        let generated = generator
            .exhaustive(env, &ids, req)
            .expect("random environments are valid");
        per_slot.push(started.elapsed());
        results.push(generated);
    }
    Timed { results, per_slot }
}

/// Median of the per-slot wall times (mean of the middle two for even
/// lengths, [`Duration::ZERO`] for empty input).
fn median(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Verifies that a warm configuration reproduced the cold search exactly
/// on every slot: same strategy, same utility bits, same candidate count.
fn check_equivalent(
    m: usize,
    config: &str,
    cold: &[Generated],
    warm: &[Generated],
) -> io::Result<()> {
    for (slot, (c, w)) in cold.iter().zip(warm).enumerate() {
        if c.strategy != w.strategy
            || c.utility.to_bits() != w.utility.to_bits()
            || c.evaluated != w.evaluated
        {
            return Err(io::Error::other(format!(
                "EQUIVALENCE DIVERGENCE at M={m}, slot #{slot}, config {config}: \
                 cold search chose {} (utility {}, {} candidates) but {config} \
                 chose {} (utility {}, {} candidates)",
                c.strategy, c.utility, c.evaluated, w.strategy, w.utility, w.evaluated
            )));
        }
    }
    Ok(())
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The ceiling the utility-gap gate enforces, from
/// `QCE_REPLAN_MAX_UTILITY_GAP` (default `0.05` — approximate backends
/// must land within 5% of the exhaustive optimum wherever ground truth
/// exists).
fn gap_threshold() -> f64 {
    parse_gap_threshold(std::env::var("QCE_REPLAN_MAX_UTILITY_GAP").ok().as_deref())
}

fn parse_gap_threshold(raw: Option<&str>) -> f64 {
    raw.and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite())
        .unwrap_or(0.05)
}

/// Relative utility shortfall of an approximate result against the
/// exhaustive optimum, normalized by the optimum's magnitude (floored at
/// 1 so near-zero optima don't explode the ratio). Exhaustive search is
/// utility-maximal, so the gap is clamped non-negative.
fn utility_gap(best: f64, got: f64) -> f64 {
    ((best - got) / best.abs().max(1.0)).max(0.0)
}

/// One backend's aggregate over the `PHASES` environments of a single `M`.
#[derive(Debug, Clone, Copy)]
struct BackendRun {
    mean_utility: f64,
    worst_gap: Option<f64>,
    evaluated: usize,
    elapsed: Duration,
}

/// One `M` point of the backend sweep.
#[derive(Debug, Clone)]
struct BackendPoint {
    m: usize,
    /// Ground truth: present only while exhaustive search is feasible.
    exhaustive: Option<BackendRun>,
    greedy: BackendRun,
    beam: BackendRun,
    /// On the large-M points: environments where beam strictly beat greedy.
    beam_wins: usize,
}

/// Runs one backend over every phase environment of `m`, tracking the
/// worst utility gap against the supplied per-phase ground truth.
fn run_backend(
    generator: &Generator,
    choice: BackendChoice,
    envs: &[EnvQos],
    req: &Requirements,
    truth: Option<&[Generated]>,
) -> (BackendRun, Vec<Generated>) {
    let started = Instant::now();
    let results: Vec<Generated> = envs
        .iter()
        .map(|env| {
            generator
                .generate_with(choice, env, &env.ids(), req)
                .expect("random environments are valid")
        })
        .collect();
    let elapsed = started.elapsed();
    let mean_utility = results.iter().map(|g| g.utility).sum::<f64>() / results.len().max(1) as f64;
    let worst_gap = truth.map(|truth| {
        truth
            .iter()
            .zip(&results)
            .map(|(t, g)| utility_gap(t.utility, g.utility))
            .fold(0.0, f64::max)
    });
    let evaluated = results.iter().map(|g| g.evaluated).sum();
    (
        BackendRun {
            mean_utility,
            worst_gap,
            evaluated,
            elapsed,
        },
        results,
    )
}

/// The backend sweep: exhaustive/greedy/beam on every `M <= truth_max`
/// point (gap-gated against the exhaustive optimum), greedy/beam alone on
/// the [`LARGE_M`] points (beam must match or beat greedy per the
/// width-monotonicity theorem).
fn backend_sweep(truth_max: usize, seed: u64, req: &Requirements) -> io::Result<Vec<BackendPoint>> {
    let generator = Generator::builder().parallelism(1).build();
    let beam = BackendChoice::Beam(DEFAULT_BEAM_WIDTH);
    let mut points = Vec::new();
    for m in (4..=truth_max).chain(LARGE_M) {
        let envs = phase_envs(m, seed ^ BACKEND_ENV_SALT);
        let truth = (m <= truth_max).then(|| {
            let started = Instant::now();
            let results: Vec<Generated> = envs
                .iter()
                .map(|env| {
                    generator
                        .generate_with(BackendChoice::Exhaustive, env, &env.ids(), req)
                        .expect("random environments are valid")
                })
                .collect();
            let elapsed = started.elapsed();
            (results, elapsed)
        });
        let truth_results = truth.as_ref().map(|(results, _)| results.as_slice());
        let (greedy, greedy_results) =
            run_backend(&generator, BackendChoice::Greedy, &envs, req, truth_results);
        let (beam_run, beam_results) = run_backend(&generator, beam, &envs, req, truth_results);
        let mut beam_wins = 0;
        for (env_idx, (b, g)) in beam_results.iter().zip(&greedy_results).enumerate() {
            if b.utility < g.utility {
                return Err(io::Error::other(format!(
                    "MONOTONICITY VIOLATION at M={m}, environment #{env_idx}: \
                     beam:{DEFAULT_BEAM_WIDTH} scored {} below greedy's {}",
                    b.utility, g.utility
                )));
            }
            if b.utility > g.utility {
                beam_wins += 1;
            }
        }
        points.push(BackendPoint {
            m,
            exhaustive: truth.map(|(results, elapsed)| BackendRun {
                mean_utility: results.iter().map(|g| g.utility).sum::<f64>()
                    / results.len().max(1) as f64,
                worst_gap: Some(0.0),
                evaluated: results.iter().map(|g| g.evaluated).sum(),
                elapsed,
            }),
            greedy,
            beam: beam_run,
            beam_wins,
        });
    }
    Ok(points)
}

/// Counters of one drift-vs-cadence comparison.
#[derive(Debug, Clone)]
struct DriftOutcome {
    scenario: &'static str,
    invocations: u32,
    slots: usize,
    cadence_replans: u64,
    cadence_satisfied: u32,
    drift_replans: u64,
    drift_triggers: u64,
    drift_holds: u64,
    drift_satisfied: u32,
}

/// Builds the drift scenario's virtual-time gateway: one service over
/// three equivalent microservices on simulated devices (2/3/5 ms, cost
/// 50). With `shift`, the fastest device degrades by +20 ms a third of
/// the way through the run — the latency regime the drift detector must
/// catch.
fn drift_harness(replan_on_drift: bool, reliability: f64, shift: bool) -> Harness {
    let mut specs = Vec::new();
    for (i, ms) in [2u64, 3, 5].iter().enumerate() {
        specs.push(MsSpec {
            name: format!("ms{i}"),
            capability: format!("cap{i}"),
            prior: Qos::new(50.0, *ms as f64, reliability).expect("constants in domain"),
        });
    }
    let mut script = ServiceScript::new(
        "drift-svc",
        specs,
        Requirements::new(200.0, 100.0, 0.5).expect("constants in domain"),
    );
    script.slot_size = 5;
    let config = GatewayConfig::builder()
        .replan_on_drift(replan_on_drift)
        .plan_quantize(0.25)
        .build();
    let mut builder = Harness::builder().script(script).config(config);
    for (i, ms) in [2u64, 3, 5].iter().enumerate() {
        let device = SimulatedProvider::builder(format!("dev{i}/cap{i}"), format!("cap{i}"))
            .cost(50.0)
            .latency(Duration::from_millis(*ms))
            .reliability(reliability)
            .seed(i as u64);
        if shift && i == 0 {
            builder = builder.faulty(
                device,
                FaultPlan::new(vec![FaultEvent {
                    at: Duration::from_millis(60),
                    kind: FaultKind::AddLatency(Duration::from_millis(20)),
                }]),
            );
        } else {
            builder = builder.provider(device);
        }
    }
    builder.build()
}

/// Serves `invocations` requests through [`drift_harness`] twice — once
/// on the fixed cadence, once drift-triggered — and collects the replan
/// and satisfaction counters of both runs.
fn drift_scenario(
    scenario: &'static str,
    reliability: f64,
    shift: bool,
    invocations: u32,
) -> DriftOutcome {
    let serve = |replan_on_drift: bool| {
        let harness = drift_harness(replan_on_drift, reliability, shift);
        let mut satisfied = 0u32;
        for _ in 0..invocations {
            let response = harness
                .invoke("drift-svc")
                .expect("drift service is served");
            if response.success {
                satisfied += 1;
            }
        }
        let snapshot = harness.telemetry().snapshot();
        let service = snapshot
            .service("drift-svc")
            .expect("requests were recorded")
            .clone();
        let slots = harness.gateway().slot_history("drift-svc").len();
        (service, slots, satisfied)
    };
    let (cadence, slots, cadence_satisfied) = serve(false);
    let (drift, _, drift_satisfied) = serve(true);
    DriftOutcome {
        scenario,
        invocations,
        slots,
        cadence_replans: cadence.replans,
        cadence_satisfied,
        drift_replans: drift.replans,
        drift_triggers: drift.drift_replans,
        drift_holds: drift.drift_holds,
        drift_satisfied,
    }
}

/// Checks one drift scenario's gates: the drift trigger must strictly cut
/// the re-plan count, hold at least one boundary, stay within one re-plan
/// per shift of the regime change (responsiveness), and keep satisfaction
/// within 2% of the cadence baseline.
fn check_drift(outcome: &DriftOutcome) -> io::Result<()> {
    let DriftOutcome {
        scenario,
        invocations,
        cadence_replans,
        cadence_satisfied,
        drift_replans,
        drift_holds,
        drift_satisfied,
        ..
    } = outcome;
    if drift_replans >= cadence_replans {
        return Err(io::Error::other(format!(
            "DRIFT GATE at {scenario}: drift-triggered re-planning ran {drift_replans} \
             searches, no fewer than the cadence baseline's {cadence_replans}"
        )));
    }
    if *drift_holds == 0 {
        return Err(io::Error::other(format!(
            "DRIFT GATE at {scenario}: no slot boundary was held inside the quantization band"
        )));
    }
    let tolerance = invocations.div_ceil(50); // 2% of the request stream
    if cadence_satisfied.abs_diff(*drift_satisfied) > tolerance {
        return Err(io::Error::other(format!(
            "DRIFT GATE at {scenario}: satisfaction diverged — cadence satisfied \
             {cadence_satisfied}/{invocations}, drift satisfied {drift_satisfied}/{invocations} \
             (tolerance {tolerance})"
        )));
    }
    Ok(())
}

/// Runs the re-planning benchmark: the cache phase for `M = 4..=max_m`
/// over `slots` slots cycling through `PHASES` (4) recurring environments
/// per point, the backend sweep (exhaustive/greedy/beam with the utility
/// gap gate, plus the `M = 8, 10` approximate-only points), and the
/// drift-vs-cadence gateway comparison. Writes `bench_replan.tsv`,
/// `bench_replan_backends.tsv`, and `bench_replan_drift.tsv` under
/// `reports`, and the counters/gaps (no wall times — the file is
/// byte-reproducible) to `json_out`.
///
/// # Errors
///
/// Returns an error if a report cannot be written — or, deliberately,
/// if a warm-start or cached slot diverges bit-for-bit from the cold
/// search, if an approximate backend's utility gap exceeds
/// `QCE_REPLAN_MAX_UTILITY_GAP` where ground truth exists, or if the
/// drift trigger fails to cut re-plans at equal satisfaction (the CI
/// smoke job relies on these exit codes). The gap and drift gates fire
/// *after* the artifacts are written.
pub fn run(
    reports: &Path,
    json_out: &Path,
    max_m: usize,
    slots: usize,
    seed: u64,
) -> io::Result<()> {
    let max_m = max_m.clamp(4, 6);
    // At least one full revisit of every phase, so the cache gets to hit.
    let slots = slots.max(2 * PHASES);
    let requirements = sim_requirements();

    let mut report = Report::new(
        format!(
            "bench-replan: slot re-planning, cold vs warm-start vs plan-cache \
             ({slots} slots over {PHASES} recurring environments)"
        ),
        &[
            "M",
            "config",
            "median/slot",
            "speedup",
            "hits",
            "misses",
            "hit rate",
        ],
    );

    let mut json_points = Vec::new();
    let mut final_speedup = None;
    for m in 4..=max_m {
        let envs = phase_envs(m, seed);

        // Single-worker searches throughout: the speedups below are then
        // purely algorithmic (tighter bound, memoized winners), not thread
        // scaling, and the medians are stable enough for a smoke gate.
        let cold_generator = Generator::builder().parallelism(1).build();
        let warm_generator = Generator::builder().parallelism(1).warm_start(true).build();
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let cached_generator = Generator::builder()
            .parallelism(1)
            .warm_start(true)
            .plan_cache(Arc::clone(&cache))
            .build();

        let cold = drive(&cold_generator, &envs, slots, &requirements);
        let warm = drive(&warm_generator, &envs, slots, &requirements);
        let cached = drive(&cached_generator, &envs, slots, &requirements);

        check_equivalent(m, "warm-start", &cold.results, &warm.results)?;
        check_equivalent(m, "cached", &cold.results, &cached.results)?;

        let stats = cache.stats();
        let lookups = stats.hits + stats.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            stats.hits as f64 / lookups as f64
        };

        let cold_median = median(&cold.per_slot);
        let warm_median = median(&warm.per_slot);
        let cached_median = median(&cached.per_slot);
        let speedup = |t: Duration| millis(cold_median) / millis(t).max(1e-9);

        let rows = [
            ("cold", cold_median, 0, 0, None),
            ("warm-start", warm_median, 0, 0, None),
            (
                "cached",
                cached_median,
                stats.hits,
                stats.misses,
                Some(hit_rate),
            ),
        ];
        for (config, time, hits, misses, rate) in rows {
            report.row([
                m.to_string(),
                config.to_string(),
                format!("{time:.3?}"),
                format!("{:.1}x", speedup(time)),
                hits.to_string(),
                misses.to_string(),
                rate.map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0)),
            ]);
        }
        final_speedup = Some(speedup(cached_median));
        json_points.push(format!(
            "    {{\"m\": {m}, \"candidates\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"hit_rate\": {}, \"winners_identical\": true}}",
            cold.results.first().map_or(0, |g| g.evaluated),
            stats.hits,
            stats.misses,
            fmt_f(hit_rate, 3),
        ));
    }

    if let Some(speedup) = final_speedup {
        report.note(format!(
            "plan-cache speedup over the cold per-slot search at M={max_m}: \
             {speedup:.1}x (target: >=2x median)"
        ));
    }
    report.note("every warm-start and cached slot verified bit-identical to the cold search");
    report.note("wall-clock medians live in this TSV only; BENCH_replan.json is byte-reproducible");
    report.emit(reports, "bench_replan")?;

    // Phase 2: search backends against exhaustive ground truth.
    let threshold = gap_threshold();
    let backend_points = backend_sweep(max_m, seed, &requirements)?;
    let mut backend_report = Report::new(
        format!(
            "bench-replan backends: exhaustive vs greedy vs beam:{DEFAULT_BEAM_WIDTH} \
             over {PHASES} environments per M (gap ceiling {threshold})"
        ),
        &[
            "M",
            "backend",
            "mean utility",
            "worst gap",
            "estimates",
            "time",
        ],
    );
    let mut worst_gap: f64 = 0.0;
    let mut backend_json = Vec::new();
    for point in &backend_points {
        let rows = [
            point.exhaustive.as_ref().map(|run| ("exhaustive", run)),
            Some(("greedy", &point.greedy)),
            Some((beam_label(), &point.beam)),
        ];
        for (backend, run) in rows.into_iter().flatten() {
            backend_report.row([
                point.m.to_string(),
                backend.to_string(),
                format!("{:+.4}", run.mean_utility),
                run.worst_gap
                    .map_or_else(|| "-".to_string(), |g| format!("{:.2}%", g * 100.0)),
                run.evaluated.to_string(),
                format!("{:.3?}", run.elapsed),
            ]);
        }
        for run in [&point.greedy, &point.beam] {
            if let Some(gap) = run.worst_gap {
                worst_gap = worst_gap.max(gap);
            }
        }
        backend_json.push(format!(
            "    {{\"m\": {}, \"ground_truth\": {}, \"exhaustive_estimates\": {}, \
             \"greedy_mean_utility\": {}, \"greedy_worst_gap\": {}, \
             \"beam_width\": {DEFAULT_BEAM_WIDTH}, \"beam_mean_utility\": {}, \
             \"beam_worst_gap\": {}, \"greedy_estimates\": {}, \"beam_estimates\": {}, \
             \"beam_wins\": {}}}",
            point.m,
            point.exhaustive.is_some(),
            point.exhaustive.as_ref().map_or(0, |run| run.evaluated),
            fmt_f(point.greedy.mean_utility, 6),
            point
                .greedy
                .worst_gap
                .map_or_else(|| "null".to_string(), |g| fmt_f(g, 6)),
            fmt_f(point.beam.mean_utility, 6),
            point
                .beam
                .worst_gap
                .map_or_else(|| "null".to_string(), |g| fmt_f(g, 6)),
            point.greedy.evaluated,
            point.beam.evaluated,
            point.beam_wins,
        ));
    }
    backend_report.note(format!(
        "worst approximate-backend gap against the exhaustive optimum: \
         {:.2}% (ceiling {:.2}%)",
        worst_gap * 100.0,
        threshold * 100.0
    ));
    backend_report.note(
        "M=8,10 have no exhaustive ground truth; beam is checked against greedy \
         (width monotonicity) instead",
    );
    backend_report.emit(reports, "bench_replan_backends")?;

    // Phase 3: drift-triggered vs cadence re-planning on the gateway.
    let drift_outcomes = [
        drift_scenario("steady", 0.95, false, 60),
        drift_scenario("latency-shift", 0.95, true, 60),
    ];
    let mut drift_report = Report::new(
        "bench-replan drift: fixed-cadence vs drift-triggered re-planning \
         (virtual-time gateway, 12 slots of 5)",
        &[
            "scenario",
            "replans (cadence)",
            "replans (drift)",
            "triggers",
            "holds",
            "satisfied (cadence)",
            "satisfied (drift)",
        ],
    );
    let mut drift_json = Vec::new();
    for outcome in &drift_outcomes {
        drift_report.row([
            outcome.scenario.to_string(),
            outcome.cadence_replans.to_string(),
            outcome.drift_replans.to_string(),
            outcome.drift_triggers.to_string(),
            outcome.drift_holds.to_string(),
            format!("{}/{}", outcome.cadence_satisfied, outcome.invocations),
            format!("{}/{}", outcome.drift_satisfied, outcome.invocations),
        ]);
        drift_json.push(format!(
            "    {{\"scenario\": \"{}\", \"invocations\": {}, \"slots\": {}, \
             \"cadence_replans\": {}, \"cadence_satisfied\": {}, \"drift_replans\": {}, \
             \"drift_triggers\": {}, \"drift_holds\": {}, \"drift_satisfied\": {}}}",
            outcome.scenario,
            outcome.invocations,
            outcome.slots,
            outcome.cadence_replans,
            outcome.cadence_satisfied,
            outcome.drift_replans,
            outcome.drift_triggers,
            outcome.drift_holds,
            outcome.drift_satisfied,
        ));
    }
    drift_report.note(
        "gates: drift must re-plan strictly less than cadence, hold at least one \
         boundary, and keep satisfaction within 2% of the baseline",
    );
    drift_report.emit(reports, "bench_replan_drift")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-replan\",\n  \"seed\": {seed},\n  \
         \"slots\": {slots},\n  \"phases\": {PHASES},\n  \"points\": [\n{}\n  ],\n  \
         \"gap_ceiling\": {},\n  \"worst_utility_gap\": {},\n  \"backends\": [\n{}\n  ],\n  \
         \"drift\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n"),
        fmt_f(threshold, 6),
        fmt_f(worst_gap, 6),
        backend_json.join(",\n"),
        drift_json.join(",\n"),
    );
    if let Some(parent) = json_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(json_out, json)?;
    println!(
        "before/after re-planning counters written to {}",
        json_out.display()
    );

    // Gates fire only after every artifact is on disk.
    if worst_gap > threshold {
        return Err(io::Error::other(format!(
            "UTILITY GAP GATE: worst approximate-backend gap {:.4}% exceeds the \
             QCE_REPLAN_MAX_UTILITY_GAP ceiling {:.4}%",
            worst_gap * 100.0,
            threshold * 100.0
        )));
    }
    for outcome in &drift_outcomes {
        check_drift(outcome)?;
    }
    Ok(())
}

fn beam_label() -> &'static str {
    // DEFAULT_BEAM_WIDTH is 4; keep the label in sync without a format
    // allocation per row.
    "beam:4"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        let ms = Duration::from_millis;
        assert_eq!(median(&[]), Duration::ZERO);
        assert_eq!(median(&[ms(7)]), ms(7));
        assert_eq!(median(&[ms(9), ms(1), ms(5)]), ms(5));
        assert_eq!(median(&[ms(1), ms(9), ms(5), ms(3)]), ms(4));
    }

    #[test]
    fn beam_label_matches_default_width() {
        assert_eq!(beam_label(), format!("beam:{DEFAULT_BEAM_WIDTH}"));
    }

    #[test]
    fn gap_threshold_parses_and_defaults() {
        assert_eq!(parse_gap_threshold(None), 0.05);
        assert_eq!(parse_gap_threshold(Some("0.2")), 0.2);
        assert_eq!(parse_gap_threshold(Some("0")), 0.0);
        assert_eq!(parse_gap_threshold(Some("nonsense")), 0.05);
        assert_eq!(parse_gap_threshold(Some("inf")), 0.05);
    }

    #[test]
    fn utility_gap_is_clamped_and_normalized() {
        assert_eq!(utility_gap(2.0, 2.0), 0.0);
        assert_eq!(utility_gap(2.0, 1.0), 0.5);
        assert_eq!(utility_gap(1.0, 2.0), 0.0, "better than truth clamps to 0");
        // Near-zero optima divide by the floor of 1, not by |best|.
        assert_eq!(utility_gap(0.001, -0.099), 0.1);
        assert_eq!(utility_gap(-1.0, -1.5), 0.5);
    }

    #[test]
    fn cached_slots_hit_after_the_first_cycle() {
        let requirements = sim_requirements();
        let envs = phase_envs(4, 17);
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let generator = Generator::builder()
            .parallelism(1)
            .warm_start(true)
            .plan_cache(Arc::clone(&cache))
            .build();
        let slots = 3 * PHASES;
        let timed = drive(&generator, &envs, slots, &requirements);
        assert_eq!(timed.results.len(), slots);
        let stats = cache.stats();
        assert_eq!(stats.misses, PHASES as u64, "first cycle misses");
        assert_eq!(stats.hits, (slots - PHASES) as u64, "revisits all hit");
    }

    #[test]
    fn backend_sweep_orders_utilities() {
        let requirements = sim_requirements();
        let points = backend_sweep(4, 5, &requirements).unwrap();
        let ms: Vec<usize> = points.iter().map(|p| p.m).collect();
        assert_eq!(ms, vec![4, 8, 10]);
        let truth_point = &points[0];
        let exhaustive = truth_point.exhaustive.as_ref().expect("ground truth at 4");
        assert!(exhaustive.mean_utility >= truth_point.beam.mean_utility);
        assert!(truth_point.beam.mean_utility >= truth_point.greedy.mean_utility);
        assert!(truth_point.greedy.worst_gap.is_some());
        for large in &points[1..] {
            assert!(large.exhaustive.is_none(), "no ground truth beyond M=6");
            assert!(large.beam.mean_utility >= large.greedy.mean_utility);
            assert!(
                large.greedy.evaluated < large.beam.evaluated,
                "beam spends more search effort than greedy"
            );
        }
    }

    #[test]
    fn drift_scenario_cuts_replans_at_equal_satisfaction() {
        let outcome = drift_scenario("steady", 0.95, false, 60);
        assert_eq!(outcome.slots, 12);
        check_drift(&outcome).unwrap();
        assert!(outcome.drift_replans < outcome.cadence_replans);

        // The gates themselves reject a drift run that saves nothing.
        let stuck = DriftOutcome {
            drift_replans: outcome.cadence_replans,
            ..outcome.clone()
        };
        assert!(check_drift(&stuck).is_err(), "no re-plan savings");
        let never_held = DriftOutcome {
            drift_holds: 0,
            ..outcome.clone()
        };
        assert!(check_drift(&never_held).is_err(), "no held boundary");
        let starved = DriftOutcome {
            drift_satisfied: outcome.cadence_satisfied.saturating_sub(10),
            ..outcome
        };
        assert!(check_drift(&starved).is_err(), "satisfaction regressed");
    }

    #[test]
    fn latency_shift_scenario_trips_the_drift_detector() {
        let outcome = drift_scenario("latency-shift", 0.95, true, 60);
        assert!(
            outcome.drift_triggers >= 1,
            "the +20 ms shift must leave the quantization band \
             (saw {} triggers)",
            outcome.drift_triggers
        );
        check_drift(&outcome).unwrap();
    }

    #[test]
    fn run_writes_report_and_json() {
        let dir = std::env::temp_dir().join(format!("qce-replan-{}", std::process::id()));
        let json = dir.join("BENCH_replan.json");
        run(&dir, &json, 4, 8, 5).unwrap();
        assert!(dir.join("bench_replan.tsv").exists());
        assert!(dir.join("bench_replan_backends.tsv").exists());
        assert!(dir.join("bench_replan_drift.tsv").exists());
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"m\": 4"));
        assert!(text.contains("\"candidates\": 195"));
        assert!(text.contains("\"winners_identical\": true"));
        assert!(text.contains("\"beam_width\": 4"));
        assert!(text.contains("\"drift\": ["));
        assert!(
            !text.contains("_ms\""),
            "wall-clock timings stay out of the byte-reproducible JSON"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

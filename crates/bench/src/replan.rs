//! `bench-replan` — before/after benchmark of slot re-planning with the
//! warm-start plan cache in `qce-strategy`.
//!
//! The gateway re-plans once per time slot, and real deployments cycle
//! through a small set of recurring environment regimes (day/night load,
//! the same devices flapping in and out). The harness models that with
//! `phases` seeded environments visited round-robin over `slots` slots,
//! and times the same exhaustive search three ways:
//!
//! * **cold** — the pre-cache code path: every slot runs the full
//!   branch-and-bound search from scratch;
//! * **warm-start** — the previous slot's winner seeds the
//!   branch-and-bound bar, so pruning bites from the first candidate
//!   (no cache, works on never-repeating environments too);
//! * **cached** — warm-start plus a [`PlanCache`]: a slot whose quantized
//!   environment was already solved returns the memoized winner without
//!   searching at all.
//!
//! Every warm-start and cached slot is checked **bit-for-bit** against the
//! cold search (strategy, utility bits, candidate count); any divergence
//! aborts with a nonzero exit, which is what the CI `bench-smoke` job keys
//! on. Per-slot medians go to `bench_replan.tsv` and, as machine-readable
//! before/after numbers, to `BENCH_replan.json`.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_strategy::{EnvQos, Generated, Generator, PlanCache, PlanCacheConfig, Requirements};

use crate::fig5::sim_requirements;
use crate::fig7::scaling_config;
use crate::report::{fmt_f, Report};

/// How many distinct environment regimes the slot sequence cycles through.
const PHASES: usize = 4;

/// Per-slot timings of one configuration over the whole slot sequence.
#[derive(Debug, Clone)]
struct Timed {
    results: Vec<Generated>,
    per_slot: Vec<Duration>,
}

/// Runs `generator.exhaustive` once per slot over the cycling environments
/// and records each slot's wall time. The generator is reused across
/// slots, which is exactly what lets warm-start and the cache help.
fn drive(generator: &Generator, envs: &[EnvQos], slots: usize, req: &Requirements) -> Timed {
    let mut results = Vec::with_capacity(slots);
    let mut per_slot = Vec::with_capacity(slots);
    for slot in 0..slots {
        let env = &envs[slot % envs.len()];
        let ids = env.ids();
        let started = Instant::now();
        let generated = generator
            .exhaustive(env, &ids, req)
            .expect("random environments are valid");
        per_slot.push(started.elapsed());
        results.push(generated);
    }
    Timed { results, per_slot }
}

/// Median of the per-slot wall times (mean of the middle two for even
/// lengths, [`Duration::ZERO`] for empty input).
fn median(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2
    }
}

/// Verifies that a warm configuration reproduced the cold search exactly
/// on every slot: same strategy, same utility bits, same candidate count.
fn check_equivalent(
    m: usize,
    config: &str,
    cold: &[Generated],
    warm: &[Generated],
) -> io::Result<()> {
    for (slot, (c, w)) in cold.iter().zip(warm).enumerate() {
        if c.strategy != w.strategy
            || c.utility.to_bits() != w.utility.to_bits()
            || c.evaluated != w.evaluated
        {
            return Err(io::Error::other(format!(
                "EQUIVALENCE DIVERGENCE at M={m}, slot #{slot}, config {config}: \
                 cold search chose {} (utility {}, {} candidates) but {config} \
                 chose {} (utility {}, {} candidates)",
                c.strategy, c.utility, c.evaluated, w.strategy, w.utility, w.evaluated
            )));
        }
    }
    Ok(())
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs the re-planning benchmark for `M = 4..=max_m` over `slots` slots
/// cycling through `PHASES` (4) recurring environments per point, writes
/// `bench_replan.tsv` under `reports` and the before/after medians to
/// `json_out`.
///
/// # Errors
///
/// Returns an error if a report cannot be written — or, deliberately, if
/// a warm-start or cached slot diverges bit-for-bit from the cold search
/// (the CI smoke job relies on this exit code).
pub fn run(
    reports: &Path,
    json_out: &Path,
    max_m: usize,
    slots: usize,
    seed: u64,
) -> io::Result<()> {
    let max_m = max_m.max(4);
    // At least one full revisit of every phase, so the cache gets to hit.
    let slots = slots.max(2 * PHASES);
    let requirements = sim_requirements();

    let mut report = Report::new(
        format!(
            "bench-replan: slot re-planning, cold vs warm-start vs plan-cache \
             ({slots} slots over {PHASES} recurring environments)"
        ),
        &[
            "M",
            "config",
            "median/slot",
            "speedup",
            "hits",
            "misses",
            "hit rate",
        ],
    );

    let mut json_points = Vec::new();
    let mut final_speedup = None;
    for m in 4..=max_m {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((m as u64) << 32));
        let envs: Vec<EnvQos> = (0..PHASES)
            .map(|_| scaling_config(m).generate(&mut rng).mean_qos_table())
            .collect();

        // Single-worker searches throughout: the speedups below are then
        // purely algorithmic (tighter bound, memoized winners), not thread
        // scaling, and the medians are stable enough for a smoke gate.
        let cold_generator = Generator::builder().parallelism(1).build();
        let warm_generator = Generator::builder().parallelism(1).warm_start(true).build();
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let cached_generator = Generator::builder()
            .parallelism(1)
            .warm_start(true)
            .plan_cache(Arc::clone(&cache))
            .build();

        let cold = drive(&cold_generator, &envs, slots, &requirements);
        let warm = drive(&warm_generator, &envs, slots, &requirements);
        let cached = drive(&cached_generator, &envs, slots, &requirements);

        check_equivalent(m, "warm-start", &cold.results, &warm.results)?;
        check_equivalent(m, "cached", &cold.results, &cached.results)?;

        let stats = cache.stats();
        let lookups = stats.hits + stats.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            stats.hits as f64 / lookups as f64
        };

        let cold_median = median(&cold.per_slot);
        let warm_median = median(&warm.per_slot);
        let cached_median = median(&cached.per_slot);
        let speedup = |t: Duration| millis(cold_median) / millis(t).max(1e-9);

        let rows = [
            ("cold", cold_median, 0, 0, None),
            ("warm-start", warm_median, 0, 0, None),
            (
                "cached",
                cached_median,
                stats.hits,
                stats.misses,
                Some(hit_rate),
            ),
        ];
        for (config, time, hits, misses, rate) in rows {
            report.row([
                m.to_string(),
                config.to_string(),
                format!("{time:.3?}"),
                format!("{:.1}x", speedup(time)),
                hits.to_string(),
                misses.to_string(),
                rate.map_or_else(|| "-".to_string(), |r| format!("{:.0}%", r * 100.0)),
            ]);
        }
        final_speedup = Some(speedup(cached_median));
        json_points.push(format!(
            "    {{\"m\": {m}, \"candidates\": {}, \"cold_median_ms\": {}, \
             \"warm_start_median_ms\": {}, \"cached_median_ms\": {}, \
             \"speedup_warm_start\": {}, \"speedup_cached\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {}, \
             \"winners_identical\": true}}",
            cold.results.first().map_or(0, |g| g.evaluated),
            fmt_f(millis(cold_median), 4),
            fmt_f(millis(warm_median), 4),
            fmt_f(millis(cached_median), 4),
            fmt_f(speedup(warm_median), 2),
            fmt_f(speedup(cached_median), 2),
            stats.hits,
            stats.misses,
            fmt_f(hit_rate, 3),
        ));
    }

    if let Some(speedup) = final_speedup {
        report.note(format!(
            "plan-cache speedup over the cold per-slot search at M={max_m}: \
             {speedup:.1}x (target: >=2x median)"
        ));
    }
    report.note("every warm-start and cached slot verified bit-identical to the cold search");
    report.emit(reports, "bench_replan")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-replan\",\n  \"seed\": {seed},\n  \
         \"slots\": {slots},\n  \"phases\": {PHASES},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n")
    );
    if let Some(parent) = json_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(json_out, json)?;
    println!(
        "before/after re-planning medians written to {}",
        json_out.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_even_and_empty() {
        let ms = Duration::from_millis;
        assert_eq!(median(&[]), Duration::ZERO);
        assert_eq!(median(&[ms(7)]), ms(7));
        assert_eq!(median(&[ms(9), ms(1), ms(5)]), ms(5));
        assert_eq!(median(&[ms(1), ms(9), ms(5), ms(3)]), ms(4));
    }

    #[test]
    fn cached_slots_hit_after_the_first_cycle() {
        let requirements = sim_requirements();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let envs: Vec<EnvQos> = (0..PHASES)
            .map(|_| scaling_config(4).generate(&mut rng).mean_qos_table())
            .collect();
        let cache = Arc::new(PlanCache::new(PlanCacheConfig::default()));
        let generator = Generator::builder()
            .parallelism(1)
            .warm_start(true)
            .plan_cache(Arc::clone(&cache))
            .build();
        let slots = 3 * PHASES;
        let timed = drive(&generator, &envs, slots, &requirements);
        assert_eq!(timed.results.len(), slots);
        let stats = cache.stats();
        assert_eq!(stats.misses, PHASES as u64, "first cycle misses");
        assert_eq!(stats.hits, (slots - PHASES) as u64, "revisits all hit");
    }

    #[test]
    fn run_writes_report_and_json() {
        let dir = std::env::temp_dir().join(format!("qce-replan-{}", std::process::id()));
        let json = dir.join("BENCH_replan.json");
        run(&dir, &json, 4, 8, 5).unwrap();
        assert!(dir.join("bench_replan.tsv").exists());
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"m\": 4"));
        assert!(text.contains("\"candidates\": 195"));
        assert!(text.contains("\"winners_identical\": true"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Reproduction of **Fig. 8**: average QoS per time slot while the
//! environment drifts.
//!
//! The schedule mirrors the paper: after 230 executions the reliability of
//! `readTempSensor` drops from 70% to 20%; after 430 executions it
//! recovers. Each slot comprises 100 executions (configurable). Expected
//! shape:
//!
//! * slot 0 runs the speculative-parallel default; slot 1 onward runs the
//!   generated chain led by `readTempSensor`;
//! * the slot in which the drop occurs degrades; the feedback loop demotes
//!   the sensor, and subsequent slots recover;
//! * after the sensor's reliability recovers, the loop eventually
//!   re-promotes it.

use std::path::Path;

use qce_runtime::Request;

use crate::report::{fmt_f, fmt_pct, Report};
use crate::testbed::{self, Testbed};

/// Per-slot measurement.
#[derive(Debug, Clone)]
pub struct SlotMeasurement {
    /// Slot index.
    pub slot: u32,
    /// Strategy that served the slot (named, as planned at slot start).
    pub strategy: String,
    /// Measured success rate.
    pub reliability: f64,
    /// Measured mean cost.
    pub cost: f64,
    /// Measured mean latency, normalized to paper milliseconds.
    pub latency_ms: f64,
}

/// Runs the Fig. 8 scenario: `slots` slots of `per_slot` executions, with
/// the reliability drop at execution 230 and recovery at execution 430
/// (scaled proportionally if `per_slot` differs from 100).
///
/// # Panics
///
/// Panics if the testbed fails to serve requests (cannot happen).
#[must_use]
pub fn measure(slots: u32, per_slot: u32, latency_scale: f64) -> Vec<SlotMeasurement> {
    let tb: Testbed = testbed::build(per_slot, latency_scale);
    measure_on(&tb, slots, per_slot, latency_scale)
}

/// As [`measure`], but on a caller-provided testbed — so the caller keeps
/// access to the gateway (and its telemetry) after the run.
///
/// # Panics
///
/// Panics if the testbed fails to serve requests (cannot happen).
#[must_use]
pub fn measure_on(
    tb: &Testbed,
    slots: u32,
    per_slot: u32,
    latency_scale: f64,
) -> Vec<SlotMeasurement> {
    // The paper's thresholds assume 100-execution slots; scale them.
    let drop_at = 230 * u64::from(per_slot) / 100;
    let recover_at = 430 * u64::from(per_slot) / 100;

    let mut executed = 0u64;
    let mut out = Vec::new();
    for slot in 0..slots {
        let mut ok = 0u32;
        let mut cost = 0.0;
        let mut latency = std::time::Duration::ZERO;
        for _ in 0..per_slot {
            if executed == drop_at {
                tb.sensor.set_reliability(0.2);
            }
            if executed == recover_at {
                tb.sensor.set_reliability(testbed::RELIABILITY);
            }
            let response = tb
                .gateway
                .submit(Request::new(testbed::SERVICE))
                .expect("testbed providers are registered");
            executed += 1;
            if response.success {
                ok += 1;
            }
            cost += response.cost;
            latency += response.latency;
        }
        let strategy = tb
            .gateway
            .current_strategy(testbed::SERVICE)
            .unwrap_or_default();
        out.push(SlotMeasurement {
            slot,
            strategy,
            reliability: f64::from(ok) / f64::from(per_slot),
            cost: cost / f64::from(per_slot),
            latency_ms: latency.as_secs_f64() * 1e3 / f64::from(per_slot) / latency_scale,
        });
    }
    out
}

/// Runs the Fig. 8 reproduction and writes `fig8.tsv`, plus the gateway's
/// telemetry snapshot as `fig8_telemetry.json`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(reports: &Path, slots: u32, per_slot: u32, latency_scale: f64) -> std::io::Result<()> {
    let tb: Testbed = testbed::build(per_slot, latency_scale);
    let measurements = measure_on(&tb, slots, per_slot, latency_scale);
    let mut report = Report::new(
        format!(
            "Fig. 8: average QoS per slot under reliability drift \
             ({per_slot} executions/slot, drop@230, recover@430)"
        ),
        &["slot", "strategy", "reliability", "cost", "latency (ms)"],
    );
    for m in &measurements {
        report.row([
            m.slot.to_string(),
            m.strategy.clone(),
            fmt_pct(m.reliability),
            fmt_f(m.cost, 1),
            fmt_f(m.latency_ms, 1),
        ]);
    }
    report.note("expected: degradation around the drop slot, demotion of readTempSensor,");
    report.note("recovery of per-slot QoS, and eventual re-promotion after the sensor heals");
    report.emit(reports, "fig8")?;
    crate::report::emit_telemetry(reports, "fig8", &tb.gateway.telemetry().snapshot())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_improves_after_the_drop() {
        // 7 slots of 100 executions at a small latency scale.
        let ms = measure(7, 100, 0.01);
        assert_eq!(ms.len(), 7);
        // The drop lands in slot 2 (execution 230). Within two slots the
        // generator must have demoted the sensor.
        let demoted = ms[3..5]
            .iter()
            .any(|m| !m.strategy.starts_with("readTempSensor"));
        assert!(
            demoted,
            "strategies: {:?}",
            ms.iter().map(|m| &m.strategy).collect::<Vec<_>>()
        );
        // Post-adaptation reliability recovers above the degraded slots'.
        // The sensor heals at execution 430 — mid slot 4 — so only slots 5
        // and 6 are fully recovered; slot 4 alone is still half-degraded.
        // Require EVERY fully-recovered slot (min, not max) to beat the
        // worst degraded slot, so a single lucky slot cannot mask a real
        // adaptation regression.
        let degraded = ms[2].reliability.min(ms[3].reliability);
        let adapted = ms[5].reliability.min(ms[6].reliability);
        assert!(
            adapted >= degraded,
            "adapted {adapted} vs degraded {degraded}"
        );
    }

    #[test]
    fn slot_zero_is_default_parallel() {
        let ms = measure(2, 30, 0.01);
        assert!(ms[0].strategy.contains('*') || ms[1].strategy.contains('-'));
    }

    #[test]
    fn run_emits_report_and_telemetry_snapshot() {
        let dir = std::env::temp_dir().join(format!("qce-fig8-{}", std::process::id()));
        run(&dir, 2, 20, 0.01).unwrap();
        assert!(dir.join("fig8.tsv").exists());
        let text = std::fs::read_to_string(dir.join("fig8_telemetry.json")).unwrap();
        let parsed: qce_runtime::MetricsSnapshot = serde_json::from_str(&text).unwrap();
        let svc = parsed.service(testbed::SERVICE).unwrap();
        assert_eq!(svc.invocations, 40, "2 slots x 20 executions");
        assert_eq!(svc.replans, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

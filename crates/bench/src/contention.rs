//! Scarce-resource contention experiment — the paper's Section VII
//! scalability discussion: "edge systems could invoke equivalent
//! microservices to process multiple concurrent service requests that rely
//! on the same execution resources but are bound by their scarcity."
//!
//! Three equivalent providers with a concurrency capacity of **one** each
//! serve several concurrent clients. Under speculative parallelism every
//! request grabs *all* free slots, starving the other clients; under
//! fail-over each request occupies one slot and overloaded devices reject
//! instantly, so requests spread across the equivalent providers — the
//! strategy doubles as a load balancer.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{execute_strategy, Invocation, Provider, SimulatedProvider};
use qce_strategy::Strategy;

use crate::report::{fmt_f, fmt_pct, Report};

/// Outcome of one contention scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContentionResult {
    /// Fraction of client requests that succeeded.
    pub success_rate: f64,
    /// Mean charged cost per request (attempted invocations included).
    pub mean_cost: f64,
    /// Mean request latency.
    pub mean_latency: Duration,
}

/// Runs `clients` concurrent clients, each issuing `requests` back-to-back
/// requests with the given strategy, against 3 equivalent providers of
/// capacity 1.
///
/// # Panics
///
/// Panics if the strategy references more than 3 microservices.
#[must_use]
pub fn run_scenario(strategy: &Strategy, clients: usize, requests: u32) -> ContentionResult {
    let providers: Vec<Arc<dyn Provider>> = (0..3)
        .map(|i| {
            SimulatedProvider::builder(format!("scarce-{i}"), format!("cap-{i}"))
                .cost(50.0)
                .latency(Duration::from_millis(5))
                .reliability(1.0)
                .capacity(1)
                .seed(i)
                .build() as Arc<dyn Provider>
        })
        .collect();

    let results: Vec<(bool, f64, Duration)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let providers = providers.clone();
                let strategy = strategy.clone();
                scope.spawn(move || {
                    let mut out = Vec::with_capacity(requests as usize);
                    for r in 0..requests {
                        let request =
                            Invocation::new(u64::from(r) * 100 + client as u64, "", vec![]);
                        let outcome = execute_strategy(&strategy, &providers, &request, None)
                            .expect("providers resolved");
                        out.push((outcome.success, outcome.cost, outcome.latency));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client threads do not panic"))
            .collect()
    });

    let n = results.len() as f64;
    ContentionResult {
        success_rate: results.iter().filter(|(ok, _, _)| *ok).count() as f64 / n,
        mean_cost: results.iter().map(|(_, c, _)| c).sum::<f64>() / n,
        mean_latency: results
            .iter()
            .map(|(_, _, l)| *l)
            .sum::<Duration>()
            .div_f64(n),
    }
}

/// Runs the contention comparison and writes `contention.tsv`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
///
/// # Panics
///
/// Panics only if the hard-coded strategies fail to parse (they cannot).
pub fn run(reports: &Path, clients: usize, requests: u32) -> std::io::Result<()> {
    let mut report = Report::new(
        format!(
            "Contention (§VII): {clients} concurrent clients, 3 equivalent \
             providers of capacity 1"
        ),
        &["strategy", "success rate", "mean cost", "mean latency"],
    );
    for (name, text) in [
        ("speculative parallel", "a*b*c"),
        ("fail-over", "a-b-c"),
        ("hedged (a-b*c)", "a-b*c"),
    ] {
        let strategy = Strategy::parse(text).expect("valid expression");
        let result = run_scenario(&strategy, clients, requests);
        report.row([
            name.to_string(),
            fmt_pct(result.success_rate),
            fmt_f(result.mean_cost, 1),
            format!("{:.1?}", result.mean_latency),
        ]);
    }
    report.note("parallel grabs every free slot per request and starves other clients;");
    report.note("fail-over spreads requests across equivalents (overload rejections are");
    report.note("instant), acting as a load balancer — the paper's future-work scenario");
    report.emit(reports, "contention")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_beats_parallel_under_contention() {
        let parallel = run_scenario(&Strategy::parse("a*b*c").unwrap(), 3, 15);
        let failover = run_scenario(&Strategy::parse("a-b-c").unwrap(), 3, 15);
        assert!(
            failover.success_rate > parallel.success_rate,
            "failover {} vs parallel {}",
            failover.success_rate,
            parallel.success_rate
        );
    }

    #[test]
    fn single_client_succeeds_with_any_strategy() {
        for text in ["a*b*c", "a-b-c"] {
            let result = run_scenario(&Strategy::parse(text).unwrap(), 1, 5);
            assert_eq!(result.success_rate, 1.0, "{text}");
        }
    }

    #[test]
    fn failover_is_near_perfect_with_three_clients() {
        // 3 clients, 3 slots: fail-over should serve almost everyone.
        let result = run_scenario(&Strategy::parse("a-b-c").unwrap(), 3, 20);
        assert!(
            result.success_rate > 0.9,
            "3 clients on 3 slots: {}",
            result.success_rate
        );
    }

    #[test]
    fn run_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-cont-{}", std::process::id()));
        run(&dir, 2, 5).unwrap();
        assert!(dir.join("contention.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

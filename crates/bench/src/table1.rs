//! Reproduction of **Table I**: the number of execution strategies for `M`
//! equivalent microservices.
//!
//! Three columns are produced:
//!
//! * the paper's published numbers,
//! * our reconstruction of the paper's counting procedure (which misses
//!   some `*`-commutativity duplicates between parenthesized operands),
//! * the semantically distinct counts under the paper's own
//!   Observations 1–3, cross-checked by explicit enumeration.

use std::path::Path;

use qce_strategy::enumerate::{count_full, count_with_subsets, enumerate_full, paper, MAX_COUNT_M};
use qce_strategy::MsId;

use crate::report::Report;

/// Published Table I values for `F(M)`, M = 2..6.
pub const PAPER_FULL: [(usize, u128); 5] = [(2, 3), (3, 19), (4, 207), (5, 3211), (6, 64743)];

/// Published Table I values for `F'(M)`, M = 2..6.
pub const PAPER_SUBSETS: [(usize, u128); 5] = [(2, 5), (3, 31), (4, 305), (5, 4471), (6, 87545)];

/// Runs the Table I reproduction and writes `table1.tsv`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(reports: &Path) -> std::io::Result<()> {
    let mut report = Report::new(
        "Table I: execution strategies for M equivalent microservices",
        &[
            "M",
            "paper F(M)",
            "reconstructed F(M)",
            "semantic F(M)",
            "enumerated",
            "paper F'(M)",
            "reconstructed F'(M)",
            "semantic F'(M)",
        ],
    );

    for (i, &(m, paper_full)) in PAPER_FULL.iter().enumerate() {
        let reconstructed = paper::count_table1(m);
        let semantic = count_full(m);
        // Cross-check by explicit enumeration where cheap (M ≤ 5).
        let enumerated = if m <= 5 {
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            enumerate_full(&ids).len().to_string()
        } else {
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            let mut n = 0u128;
            qce_strategy::enumerate::for_each_full(&ids, |_| n += 1);
            n.to_string()
        };
        report.row([
            m.to_string(),
            paper_full.to_string(),
            reconstructed.to_string(),
            semantic.to_string(),
            enumerated,
            PAPER_SUBSETS[i].1.to_string(),
            paper::count_table1_subsets(m).to_string(),
            count_with_subsets(m).to_string(),
        ]);
    }

    report.note(
        "reconstructed = the paper's dedup (sorts only single-microservice \
         operands of '*'); exact match for M<=5, -0.56% at M=6",
    );
    report.note(
        "semantic = distinct under the paper's own Observations 1-3; \
         e.g. (a-b)*(c-d) == (c-d)*(a-b) is counted once",
    );
    report.note(format!(
        "counting recurrences stay exact in u128 up to M = {MAX_COUNT_M}"
    ));
    report.emit(reports, "table1")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconstruction_matches_paper_up_to_m5() {
        for &(m, expected) in &PAPER_FULL[..4] {
            assert_eq!(paper::count_table1(m), expected, "F({m})");
        }
        for &(m, expected) in &PAPER_SUBSETS[..4] {
            assert_eq!(paper::count_table1_subsets(m), expected, "F'({m})");
        }
    }

    #[test]
    fn m6_reconstruction_is_within_one_percent() {
        let published = PAPER_FULL[4].1 as f64;
        let reconstructed = paper::count_table1(6) as f64;
        assert!(((published - reconstructed) / published).abs() < 0.01);
    }

    #[test]
    fn semantic_counts_never_exceed_paper_counts() {
        for m in 2..=6 {
            assert!(count_full(m) <= paper::count_table1(m));
        }
    }

    #[test]
    fn run_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-table1-{}", std::process::id()));
        run(&dir).unwrap();
        let tsv = std::fs::read_to_string(dir.join("table1.tsv")).unwrap();
        assert!(tsv.contains("64743"));
        assert!(tsv.contains("51303"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! # qce-bench
//!
//! Reproduction harness for every table and figure in the evaluation of
//! *"Win with What You Have: QoS-Consistent Edge Services with Unreliable
//! and Dynamic Resources"* (ICDCS 2020).
//!
//! Each module regenerates one artifact; the `repro` binary drives them:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table1`] | Table I — strategy counts for M equivalent microservices |
//! | [`table2`] | Table II — example strategies and estimated QoS (+ §III.C.3) |
//! | [`fig5`] | Fig. 5 — utility distribution of all strategies (Table III configs) |
//! | [`estimation`] | §V.A.2 — estimation correctness vs virtual-time measurement |
//! | [`fig6`] | Fig. 6 — generated vs predefined strategies |
//! | [`fig7`] | Fig. 7 — generation scaling beyond 5 microservices |
//! | [`table4`] | Table IV — testbed default vs generated strategy |
//! | [`fig8`] | Fig. 8 — per-slot QoS under reliability drift |
//! | [`ablation`] | design-choice ablations (k, window, cost semantics, latency shapes) |
//! | [`contention`] | §VII scarce-resource contention (capacity-limited devices) |
//! | [`synth`] | synthesis-engine benchmark — baseline vs pruned/parallel search |
//! | [`replan`] | slot re-planning benchmark — cold vs warm-start vs plan-cache |
//! | [`throughput`] | gateway throughput — concurrent clients, admission control, worker pool |
//! | [`fleet`] | sharded gateway fleet — consistent-hash routing + cross-shard plan economics |
//! | [`scenarios`] | adversarial scenario pack — storms, flash crowds, churn + QoS-consistency gate |
//!
//! Reports are printed to the console and written as TSV under `reports/`.
//!
//! ```bash
//! cargo run --release -p qce-bench --bin repro -- all
//! cargo run --release -p qce-bench --bin repro -- fig6 --services 100
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod contention;
pub mod estimation;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fleet;
pub mod replan;
pub mod report;
pub mod scenarios;
pub mod synth;
pub mod table1;
pub mod table2;
pub mod table4;
pub mod testbed;
pub mod throughput;

//! Reproduction of **Table IV**: execution results of the testbed setting —
//! the default (speculative parallel) strategy versus the generated
//! strategy, and the generated strategy's estimate versus its measurement.
//!
//! Paper values (their Java testbed):
//!
//! | QoS         | Default | Estimate (gen.) | Measured (gen.) |
//! |-------------|---------|-----------------|-----------------|
//! | cost        | 100     | 70              | 69              |
//! | latency     | 163     | 81              | 78              |
//! | reliability | 94      | 97              | 98              |
//!
//! Shape to reproduce: the generated fail-over chain slashes cost versus
//! the parallel default, reliability is ≈ `1 − 0.3³ = 97.3%` either way,
//! and *measured ≈ estimated* for the generated strategy. (Two testbed
//! artifacts of the paper do not transfer: their parallel default measured
//! a *higher* latency than fail-over — Java thread-fanout overhead — and a
//! cost of 100 rather than 3 × 50; our executor charges all three started
//! invocations per Assumption 2 and has negligible fan-out overhead, so the
//! parallel default costs 150 and is latency-cheaper. See EXPERIMENTS.md.)

use std::path::Path;

use crate::report::{fmt_f, Report};
use crate::testbed::{self, SlotQos};

/// Result of the Table IV run.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// Measured QoS of the default (speculative parallel) slot.
    pub default_measured: SlotQos,
    /// The generator's estimate for the generated strategy (paper units).
    pub generated_estimate: Option<qce_strategy::Qos>,
    /// Measured QoS of the generated-strategy slot.
    pub generated_measured: SlotQos,
    /// The generated strategy, named.
    pub generated_strategy: String,
}

/// Executes the Table IV scenario: one default slot, one generated slot,
/// `per_slot` invocations each.
///
/// # Panics
///
/// Panics if the testbed fails to serve requests (cannot happen).
#[must_use]
pub fn measure(per_slot: u32, latency_scale: f64) -> Table4Result {
    let tb = testbed::build(per_slot, latency_scale);
    measure_on(&tb, per_slot, latency_scale)
}

/// As [`measure`], but on a caller-provided testbed — so the caller keeps
/// access to the gateway (and its telemetry) after the run.
///
/// # Panics
///
/// Panics if the testbed fails to serve requests (cannot happen).
#[must_use]
pub fn measure_on(tb: &testbed::Testbed, per_slot: u32, latency_scale: f64) -> Table4Result {
    let default_measured = testbed::run_slot(tb, per_slot);
    let generated_measured = testbed::run_slot(tb, per_slot);
    let history = tb.gateway.slot_history(testbed::SERVICE);
    assert!(history.len() >= 2, "two slots were executed");
    let generated_estimate = history[1].estimated.map(|q| {
        // Normalize the estimate's latency back to paper milliseconds.
        qce_strategy::Qos {
            latency: q.latency / latency_scale,
            ..q
        }
    });
    Table4Result {
        default_measured,
        generated_estimate,
        generated_measured,
        generated_strategy: history[1].strategy_text.clone(),
    }
}

/// Runs the Table IV reproduction and writes `table4.tsv`, plus the
/// gateway's telemetry snapshot as `table4_telemetry.json`.
///
/// # Errors
///
/// Returns an I/O error if the report cannot be written.
pub fn run(reports: &Path, per_slot: u32, latency_scale: f64) -> std::io::Result<()> {
    let tb = testbed::build(per_slot, latency_scale);
    let result = measure_on(&tb, per_slot, latency_scale);
    let mut report = Report::new(
        format!(
            "Table IV: testbed execution results ({per_slot} invocations/slot, \
             latency scale {latency_scale})"
        ),
        &[
            "QoS",
            "paper default",
            "measured default",
            "paper est(gen)",
            "est(gen)",
            "paper measured(gen)",
            "measured(gen)",
        ],
    );
    let est = result.generated_estimate.expect("generated slot estimated");
    report.row([
        "cost".to_string(),
        "100".to_string(),
        fmt_f(result.default_measured.cost, 1),
        "70".to_string(),
        fmt_f(est.cost, 1),
        "69".to_string(),
        fmt_f(result.generated_measured.cost, 1),
    ]);
    report.row([
        "latency (ms)".to_string(),
        "163".to_string(),
        fmt_f(result.default_measured.latency_ms, 1),
        "81".to_string(),
        fmt_f(est.latency, 1),
        "78".to_string(),
        fmt_f(result.generated_measured.latency_ms, 1),
    ]);
    report.row([
        "reliability (%)".to_string(),
        "94".to_string(),
        fmt_f(result.default_measured.reliability * 100.0, 1),
        "97".to_string(),
        fmt_f(est.reliability.value() * 100.0, 1),
        "98".to_string(),
        fmt_f(result.generated_measured.reliability * 100.0, 1),
    ]);
    report.note(format!("generated strategy: {}", result.generated_strategy));
    report.note("shape reproduced: generated slashes cost vs default; measured(gen) ~= est(gen)");
    report.note(
        "measured columns use the vendored deterministic ChaCha8 shim RNG stream \
         (compat/README.md), so they differ in the last digits from runs against upstream rand",
    );
    report.note(
        "paper's default latency/cost anomalies (163ms, cost 100) stem from their \
         Java thread fan-out; our executor follows Assumption 2 exactly (cost 150)",
    );
    report.emit(reports, "table4")?;
    crate::report::emit_telemetry(reports, "table4", &tb.gateway.telemetry().snapshot())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cuts_cost_versus_default() {
        let result = measure(60, 0.02);
        assert!(
            result.generated_measured.cost < result.default_measured.cost * 0.7,
            "generated {} vs default {}",
            result.generated_measured.cost,
            result.default_measured.cost
        );
    }

    #[test]
    fn measured_matches_estimate_for_generated_slot() {
        let result = measure(80, 0.02);
        let est = result.generated_estimate.unwrap();
        let rel_err = (result.generated_measured.cost - est.cost).abs() / est.cost;
        assert!(
            rel_err < 0.30,
            "cost: measured {} vs est {}",
            result.generated_measured.cost,
            est.cost
        );
        assert!(
            (result.generated_measured.reliability - est.reliability.value()).abs() < 0.1,
            "reliability: measured {} vs est {}",
            result.generated_measured.reliability,
            est.reliability
        );
    }

    #[test]
    fn reliability_is_high_in_both_slots() {
        let result = measure(60, 0.02);
        assert!(result.default_measured.reliability > 0.85);
        assert!(result.generated_measured.reliability > 0.85);
    }

    #[test]
    fn run_writes_report() {
        let dir = std::env::temp_dir().join(format!("qce-table4-{}", std::process::id()));
        run(&dir, 20, 0.02).unwrap();
        assert!(dir.join("table4.tsv").exists());
        let text = std::fs::read_to_string(dir.join("table4_telemetry.json")).unwrap();
        let parsed: qce_runtime::MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(
            parsed.service(testbed::SERVICE).unwrap().invocations,
            40,
            "two slots of 20"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Report formatting: aligned console tables that are simultaneously
//! written as TSV files under `reports/` for downstream plotting.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that renders to the console and to TSV.
#[derive(Debug, Clone)]
pub struct Report {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Creates a report with the given title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Report {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row (cells are pre-formatted).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match the header"
        );
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the aligned console form.
    #[must_use]
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Renders the TSV form (title and notes as `#` comments).
    #[must_use]
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        for note in &self.notes {
            let _ = writeln!(out, "# note: {note}");
        }
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Prints the console form and writes the TSV form to
    /// `<dir>/<name>.tsv`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the report file cannot be written.
    pub fn emit(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        println!("{}", self.to_console());
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.tsv"));
        std::fs::write(&path, self.to_tsv())?;
        Ok(path)
    }
}

/// Writes a gateway telemetry snapshot as pretty JSON to
/// `<dir>/<name>_telemetry.json`, next to the TSV report of the same name,
/// so every gateway-driven report ships with the exact runtime accounting
/// (per-service and per-provider counters, re-plan events) behind it.
///
/// # Errors
///
/// Returns an I/O error if the snapshot file cannot be written.
pub fn emit_telemetry(
    dir: &Path,
    name: &str,
    snapshot: &qce_runtime::MetricsSnapshot,
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}_telemetry.json"));
    let json = serde_json::to_string_pretty(snapshot)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Formats a float with a fixed number of decimals.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a probability as a percentage.
#[must_use]
pub fn fmt_pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn console_and_tsv_render() {
        let mut r = Report::new("Demo", &["name", "value"]);
        r.row(["alpha", "1"]);
        r.row(["beta-long", "2"]);
        r.note("hello");
        let console = r.to_console();
        assert!(console.contains("== Demo =="));
        assert!(console.contains("alpha"));
        assert!(console.contains("note: hello"));
        let tsv = r.to_tsv();
        assert!(tsv.starts_with("# Demo"));
        assert!(tsv.contains("name\tvalue"));
        assert!(tsv.contains("beta-long\t2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut r = Report::new("Demo", &["a", "b"]);
        r.row(["only-one"]);
    }

    #[test]
    fn emit_writes_tsv() {
        let dir = std::env::temp_dir().join(format!("qce-report-{}", std::process::id()));
        let mut r = Report::new("T", &["x"]);
        r.row(["1"]);
        let path = r.emit(&dir, "test").unwrap();
        assert!(std::fs::read_to_string(&path).unwrap().contains('1'));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_pct(0.973), "97.3%");
    }

    #[test]
    fn emit_telemetry_writes_parseable_json() {
        use std::sync::Arc;
        let dir = std::env::temp_dir().join(format!("qce-telemetry-{}", std::process::id()));
        let clock: Arc<dyn qce_runtime::Clock> = Arc::new(qce_runtime::VirtualClock::new());
        let telemetry = qce_runtime::Telemetry::new(clock, 16);
        telemetry.record_request(
            "svc",
            qce_runtime::QosClass::Interactive,
            true,
            std::time::Duration::from_millis(3),
            50.0,
            false,
            None,
        );
        let path = emit_telemetry(&dir, "demo", &telemetry.snapshot()).unwrap();
        assert!(path.ends_with("demo_telemetry.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: qce_runtime::MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed.service("svc").unwrap().invocations, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! `bench-synth` — before/after benchmark of the parallel, pruned
//! synthesis engine in `qce-strategy`.
//!
//! For each `M = 3..=max_m` the harness draws seeded random environments
//! and runs the exhaustive search four ways:
//!
//! * **baseline** — the pre-engine code path: plain Algorithm 1 behind the
//!   [`Estimator`] trait with `is_algorithm1() == false`, which routes the
//!   [`Generator`] onto the sequential enumerate-and-estimate scan the
//!   crate shipped before the engine existed;
//! * **engine/seq/unpruned** — the streaming engine, one worker, no
//!   branch-and-bound;
//! * **engine/seq** — one worker with pruning;
//! * **engine/par** — pruning plus auto parallelism.
//!
//! Every engine run is checked **bit-for-bit** against the baseline
//! (strategy, utility bits, candidate count); any divergence aborts the
//! run with a nonzero exit, which is what the CI `bench-smoke` job keys
//! on. Timings are written to `bench_synth.tsv` and, as machine-readable
//! before/after numbers, to `BENCH_synth.json`.

use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_strategy::estimate::estimate;
use qce_strategy::{
    EnvQos, EstimateError, Estimator, Generated, Generator, Qos, Requirements, Strategy,
};

use crate::fig5::sim_requirements;
use crate::fig7::scaling_config;
use crate::report::{fmt_f, Report};

/// Plain (memo-free) Algorithm 1 behind the [`Estimator`] trait.
///
/// `is_algorithm1` deliberately keeps its default `false` answer: the
/// [`Generator`] then cannot use the fused synthesis engine and falls back
/// to the generic enumerate-and-estimate scan — the exact sequential
/// search the crate shipped before this engine existed — which makes this
/// estimator the "before" configuration of the benchmark.
#[derive(Debug, Default, Clone, Copy)]
pub struct LegacyBaseline;

impl Estimator for LegacyBaseline {
    fn estimate(&self, strategy: &Strategy, env: &EnvQos) -> Result<Qos, EstimateError> {
        estimate(strategy, env)
    }

    fn name(&self) -> &'static str {
        "legacy-baseline"
    }
}

/// Aggregate of one `(M, configuration)` benchmark point.
#[derive(Debug, Clone)]
pub struct SynthPoint {
    /// Number of equivalent microservices.
    pub m: usize,
    /// Configuration name.
    pub config: &'static str,
    /// Mean wall time per exhaustive search.
    pub mean_time: Duration,
    /// Candidates considered per search (estimated plus pruned; this is
    /// `F(M)` for the full exhaustive search).
    pub candidates: usize,
    /// Candidates actually estimated, summed over all environments.
    pub seen: u64,
    /// Candidates discharged by the branch-and-bound bound, summed over
    /// all environments.
    pub pruned: u64,
}

/// Runs `generator.exhaustive` over every environment and returns the
/// results plus the mean wall time per search.
fn measure(
    generator: &Generator,
    envs: &[EnvQos],
    req: &Requirements,
) -> (Vec<Generated>, Duration) {
    let mut total = Duration::ZERO;
    let mut out = Vec::with_capacity(envs.len());
    for env in envs {
        let ids = env.ids();
        let started = Instant::now();
        let generated = generator
            .exhaustive(env, &ids, req)
            .expect("random environments are valid");
        total += started.elapsed();
        out.push(generated);
    }
    let mean = total / u32::try_from(envs.len().max(1)).unwrap_or(1);
    (out, mean)
}

fn point(m: usize, config: &'static str, results: &[Generated], mean_time: Duration) -> SynthPoint {
    SynthPoint {
        m,
        config,
        mean_time,
        candidates: results.first().map_or(0, |g| g.evaluated),
        seen: results.iter().map(|g| g.report.candidates_seen).sum(),
        pruned: results.iter().map(|g| g.report.candidates_pruned).sum(),
    }
}

/// Verifies that an engine configuration reproduced the baseline search
/// exactly on every environment: same strategy, same utility bits, same
/// candidate count.
fn check_equivalent(
    m: usize,
    config: &str,
    baseline: &[Generated],
    engine: &[Generated],
) -> io::Result<()> {
    for (i, (b, e)) in baseline.iter().zip(engine).enumerate() {
        if b.strategy != e.strategy
            || b.utility.to_bits() != e.utility.to_bits()
            || b.evaluated != e.evaluated
        {
            return Err(io::Error::other(format!(
                "EQUIVALENCE DIVERGENCE at M={m}, env #{i}, config {config}: \
                 baseline chose {} (utility {}, {} candidates) but engine chose \
                 {} (utility {}, {} candidates)",
                b.strategy, b.utility, b.evaluated, e.strategy, e.utility, e.evaluated
            )));
        }
    }
    Ok(())
}

fn millis(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Runs the synthesis-engine benchmark for `M = 3..=max_m` over `services`
/// seeded environments per point, writes `bench_synth.tsv` under `reports`
/// and the before/after timings to `json_out`.
///
/// # Errors
///
/// Returns an error if a report cannot be written — or, deliberately, if
/// any engine configuration diverges from the unpruned sequential baseline
/// on any environment (the CI smoke job relies on this exit code).
pub fn run(
    reports: &Path,
    json_out: &Path,
    max_m: usize,
    services: usize,
    seed: u64,
) -> io::Result<()> {
    let max_m = max_m.max(3);
    let services = services.max(1);
    let requirements = sim_requirements();

    let baseline_generator = Generator::builder()
        .estimator(Arc::new(LegacyBaseline))
        .parallelism(1)
        .build();
    let engine_seq_unpruned = Generator::builder().parallelism(1).pruning(false).build();
    let engine_seq = Generator::builder().parallelism(1).pruning(true).build();
    let engine_par = Generator::builder().parallelism(0).pruning(true).build();

    let mut report = Report::new(
        format!(
            "bench-synth: exhaustive search, baseline vs engine \
             ({services} environments/point)"
        ),
        &[
            "M",
            "config",
            "mean time",
            "speedup",
            "candidates",
            "estimated",
            "pruned",
        ],
    );

    let mut json_points = Vec::new();
    let mut final_speedup = None;
    for m in 3..=max_m {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ ((m as u64) << 32));
        let envs: Vec<EnvQos> = (0..services)
            .map(|_| scaling_config(m).generate(&mut rng).mean_qos_table())
            .collect();

        let (base, base_time) = measure(&baseline_generator, &envs, &requirements);
        let (unpruned, unpruned_time) = measure(&engine_seq_unpruned, &envs, &requirements);
        let (seq, seq_time) = measure(&engine_seq, &envs, &requirements);
        let (par, par_time) = measure(&engine_par, &envs, &requirements);

        check_equivalent(m, "engine/seq/unpruned", &base, &unpruned)?;
        check_equivalent(m, "engine/seq", &base, &seq)?;
        check_equivalent(m, "engine/par", &base, &par)?;

        let speedup = |t: Duration| millis(base_time) / millis(t).max(1e-9);
        let points = [
            point(m, "baseline", &base, base_time),
            point(m, "engine/seq/unpruned", &unpruned, unpruned_time),
            point(m, "engine/seq", &seq, seq_time),
            point(m, "engine/par", &par, par_time),
        ];
        for p in &points {
            report.row([
                p.m.to_string(),
                p.config.to_string(),
                format!("{:.3?}", p.mean_time),
                format!("{:.1}x", speedup(p.mean_time)),
                p.candidates.to_string(),
                p.seen.to_string(),
                p.pruned.to_string(),
            ]);
        }
        final_speedup = Some(speedup(par_time));
        json_points.push(format!(
            "    {{\"m\": {m}, \"candidates\": {}, \"baseline_ms\": {}, \
             \"engine_seq_unpruned_ms\": {}, \"engine_seq_ms\": {}, \
             \"engine_par_ms\": {}, \"speedup_seq\": {}, \"speedup_par\": {}, \
             \"estimated\": {}, \"pruned\": {}}}",
            points[0].candidates,
            fmt_f(millis(base_time), 4),
            fmt_f(millis(unpruned_time), 4),
            fmt_f(millis(seq_time), 4),
            fmt_f(millis(par_time), 4),
            fmt_f(speedup(seq_time), 2),
            fmt_f(speedup(par_time), 2),
            points[3].seen,
            points[3].pruned,
        ));
    }

    if let Some(speedup) = final_speedup {
        report.note(format!(
            "engine/par speedup over the pre-engine sequential scan at M={max_m}: \
             {speedup:.1}x (target: >=5x at M=6)"
        ));
    }
    report.note("every engine run verified bit-identical to the baseline search");
    report.emit(reports, "bench_synth")?;

    let json = format!(
        "{{\n  \"benchmark\": \"bench-synth\",\n  \"seed\": {seed},\n  \
         \"environments_per_point\": {services},\n  \"points\": [\n{}\n  ]\n}}\n",
        json_points.join(",\n")
    );
    if let Some(parent) = json_out.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(json_out, json)?;
    println!("before/after timings written to {}", json_out.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_baseline_is_plain_algorithm1() {
        let env = EnvQos::from_triples(&[(50.0, 50.0, 0.6), (100.0, 100.0, 0.6)]).unwrap();
        let s = Strategy::parse("a*b").unwrap();
        let legacy = LegacyBaseline.estimate(&s, &env).unwrap();
        assert_eq!(legacy, estimate(&s, &env).unwrap());
        assert!(!LegacyBaseline.is_algorithm1());
    }

    #[test]
    fn engine_configs_match_baseline_on_small_m() {
        let requirements = sim_requirements();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let envs: Vec<EnvQos> = (0..4)
            .map(|_| scaling_config(4).generate(&mut rng).mean_qos_table())
            .collect();
        let baseline = Generator::builder()
            .estimator(Arc::new(LegacyBaseline))
            .parallelism(1)
            .build();
        let engine = Generator::builder().parallelism(2).pruning(true).build();
        let (base, _) = measure(&baseline, &envs, &requirements);
        let (eng, _) = measure(&engine, &envs, &requirements);
        check_equivalent(4, "engine/par", &base, &eng).unwrap();
        assert_eq!(base[0].evaluated, 195, "F(4)");
    }

    #[test]
    fn run_writes_report_and_json() {
        let dir = std::env::temp_dir().join(format!("qce-synth-{}", std::process::id()));
        let json = dir.join("BENCH_synth.json");
        run(&dir, &json, 4, 2, 5).unwrap();
        assert!(dir.join("bench_synth.tsv").exists());
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"m\": 3"));
        assert!(text.contains("\"candidates\": 19"));
        assert!(text.contains("\"candidates\": 195"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

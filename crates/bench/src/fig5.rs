//! Reproduction of **Fig. 5**: utility distributions of *all possible*
//! strategies under the Table III simulation configurations.
//!
//! For each configuration we draw random services (random per-microservice
//! QoS), estimate the utility of **every** strategy in `F(M)` against the
//! fixed requirements `Qc = 100`, `Ql = 100`, `Qr = 97%`, and report the
//! distribution. The paper's qualitative findings to reproduce:
//!
//! * different strategies for the *same* service differ wildly in utility;
//! * higher average QoS, larger Δ, and more microservices all shift the
//!   distribution towards higher utilities.

use std::path::Path;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_sim::table3_configurations;
use qce_strategy::enumerate::for_each_full;
use qce_strategy::estimate::estimate;
use qce_strategy::{Requirements, UtilityIndex};

use crate::report::{fmt_f, Report};

/// The fixed QoS requirements of all simulation experiments (Section V.A).
///
/// # Panics
///
/// Never panics: the constants are in domain.
#[must_use]
pub fn sim_requirements() -> Requirements {
    Requirements::new(100.0, 100.0, 0.97).expect("constants in domain")
}

/// Utility histogram over `(service, strategy)` pairs for one
/// configuration.
#[derive(Debug, Clone)]
pub struct UtilityDistribution {
    /// Sorted utilities of every strategy of every sampled service.
    pub utilities: Vec<f64>,
}

impl UtilityDistribution {
    /// The `q`-quantile (0 ≤ q ≤ 1) of the distribution.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.utilities.is_empty());
        let idx = ((self.utilities.len() - 1) as f64 * q).round() as usize;
        self.utilities[idx]
    }

    /// Mean utility.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.utilities.iter().sum::<f64>() / self.utilities.len() as f64
    }

    /// Fraction of `(service, strategy)` pairs with utility above `level`.
    #[must_use]
    pub fn fraction_above(&self, level: f64) -> f64 {
        let above = self.utilities.iter().filter(|&&u| u > level).count();
        above as f64 / self.utilities.len() as f64
    }
}

/// Computes the Fig. 5 distribution for one configuration: `services`
/// random environments, all strategies each.
#[must_use]
pub fn distribution(
    config: &qce_sim::RandomEnvConfig,
    services: usize,
    seed: u64,
) -> UtilityDistribution {
    let requirements = sim_requirements();
    let utility = UtilityIndex::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut utilities = Vec::new();
    for _ in 0..services {
        let env = config.generate(&mut rng).mean_qos_table();
        let ids = env.ids();
        for_each_full(&ids, |s| {
            let qos = estimate(&s, &env).expect("environment covers ids");
            utilities.push(utility.utility(&qos, &requirements));
        });
    }
    utilities.sort_by(|a, b| a.partial_cmp(b).expect("utilities are finite"));
    UtilityDistribution { utilities }
}

/// Runs the Fig. 5 reproduction (`services` random services per Table III
/// configuration) and writes `fig5_summary.tsv` and `fig5_hist.tsv`.
///
/// # Errors
///
/// Returns an I/O error if a report cannot be written.
pub fn run(reports: &Path, services: usize, seed: u64) -> std::io::Result<()> {
    let mut summary = Report::new(
        format!(
            "Fig. 5: utility of ALL strategies ({services} services/config, Qc=100 Ql=100 Qr=97%)"
        ),
        &[
            "exp",
            "cfg",
            "M",
            "avg c,l,r",
            "delta",
            "mean U",
            "p10",
            "p50",
            "p90",
            "max",
            "frac U>0",
        ],
    );
    let mut hist = Report::new(
        "Fig. 5 histogram data (fraction of strategies per utility bin)",
        &["exp", "cfg", "bin_low", "bin_high", "fraction"],
    );

    for (exp, cfg_index, config) in table3_configurations() {
        let dist = distribution(&config, services, seed ^ (cfg_index as u64) << 8);
        summary.row([
            exp.to_string(),
            cfg_index.to_string(),
            config.microservices.to_string(),
            format!(
                "{:.0},{:.0},{:.0}",
                config.avg_cost, config.avg_latency, config.avg_reliability_pct
            ),
            fmt_f(config.delta, 0),
            fmt_f(dist.mean(), 3),
            fmt_f(dist.quantile(0.10), 3),
            fmt_f(dist.quantile(0.50), 3),
            fmt_f(dist.quantile(0.90), 3),
            fmt_f(dist.quantile(1.0), 3),
            fmt_f(dist.fraction_above(0.0), 4),
        ]);

        // Histogram: utility bins of width 0.5 across the observed range.
        let lo = dist.quantile(0.0).floor();
        let hi = dist.quantile(1.0).ceil();
        let mut bin_lo = lo;
        while bin_lo < hi {
            let bin_hi = bin_lo + 0.5;
            let frac = dist.fraction_above(bin_lo) - dist.fraction_above(bin_hi);
            if frac > 0.0005 {
                hist.row([
                    exp.to_string(),
                    cfg_index.to_string(),
                    fmt_f(bin_lo, 1),
                    fmt_f(bin_hi, 1),
                    fmt_f(frac, 4),
                ]);
            }
            bin_lo = bin_hi;
        }
    }

    summary.note("paper finding 1: strategies for the same service span a wide utility range");
    summary.note("paper finding 2: higher avg QoS / larger delta / more ms => higher utilities");
    summary.emit(reports, "fig5_summary")?;
    hist.emit(reports, "fig5_hist")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qce_sim::RandomEnvConfig;

    fn config(m: usize, avg: f64, delta: f64) -> RandomEnvConfig {
        RandomEnvConfig {
            microservices: m,
            avg_cost: avg,
            avg_latency: avg,
            avg_reliability_pct: 140.0 - avg, // better cost ⇒ better reliability
            delta,
        }
    }

    #[test]
    fn distribution_has_expected_size() {
        let dist = distribution(&config(3, 70.0, 40.0), 5, 1);
        // 19 strategies × 5 services.
        assert_eq!(dist.utilities.len(), 95);
        assert!(dist.quantile(0.0) <= dist.quantile(1.0));
    }

    #[test]
    fn utilities_vary_widely_within_a_service() {
        // Paper finding: different strategies lead to vastly dissimilar
        // utilities.
        let dist = distribution(&config(4, 70.0, 50.0), 10, 2);
        assert!(dist.quantile(1.0) - dist.quantile(0.0) > 1.0);
    }

    #[test]
    fn better_average_qos_shifts_distribution_up() {
        // exp1's qualitative trend: avg [60,60,80] beats [90,90,50].
        let good = distribution(&config(4, 60.0, 50.0), 10, 3);
        let bad = distribution(&config(4, 90.0, 50.0), 10, 3);
        assert!(good.mean() > bad.mean());
    }

    #[test]
    fn more_microservices_raise_the_top_of_the_distribution() {
        let small = distribution(&config(3, 90.0, 100.0), 10, 4);
        let large = distribution(&config(5, 90.0, 100.0), 10, 4);
        assert!(large.quantile(1.0) >= small.quantile(1.0));
    }

    #[test]
    fn fraction_above_is_monotone() {
        let dist = distribution(&config(3, 70.0, 40.0), 5, 5);
        assert!(dist.fraction_above(-10.0) >= dist.fraction_above(0.0));
        assert!(dist.fraction_above(0.0) >= dist.fraction_above(10.0));
    }

    #[test]
    fn run_writes_reports() {
        let dir = std::env::temp_dir().join(format!("qce-fig5-{}", std::process::id()));
        run(&dir, 3, 7).unwrap();
        assert!(dir.join("fig5_summary.tsv").exists());
        assert!(dir.join("fig5_hist.tsv").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Criterion benches for strategy generation — the quantitative backbone
//! of Fig. 7a: exhaustive search explodes with `M`, the approximation
//! heuristic and the predefined defaults stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

use qce_sim::RandomEnvConfig;
use qce_strategy::{EnvQos, Generator, MsId, Requirements};

fn random_env(m: usize, seed: u64) -> EnvQos {
    RandomEnvConfig {
        microservices: m,
        avg_cost: 70.0,
        avg_latency: 70.0,
        avg_reliability_pct: 70.0,
        delta: 50.0,
    }
    .generate(&mut ChaCha8Rng::seed_from_u64(seed))
    .mean_qos_table()
}

fn requirements() -> Requirements {
    Requirements::new(100.0, 100.0, 0.97).expect("valid")
}

fn bench_exhaustive(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate/exhaustive");
    group.sample_size(10);
    for m in [3usize, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let env = random_env(m, 1);
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            let generator = Generator::default();
            let req = requirements();
            b.iter(|| generator.exhaustive(black_box(&env), &ids, &req).unwrap());
        });
    }
    group.finish();
}

fn bench_approximation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate/approximation");
    for m in [4usize, 6, 8, 10, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let env = random_env(m, 1);
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            let generator = Generator::default();
            let req = requirements();
            b.iter(|| {
                generator
                    .approximation(black_box(&env), &ids, &req)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_defaults(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate/defaults");
    for m in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("failover", m), &m, |b, &m| {
            let env = random_env(m, 1);
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            let generator = Generator::default();
            let req = requirements();
            b.iter(|| {
                generator
                    .failover_in_order(black_box(&env), &ids, &req)
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("parallel", m), &m, |b, &m| {
            let env = random_env(m, 1);
            let ids: Vec<MsId> = (0..m).map(MsId).collect();
            let generator = Generator::default();
            let req = requirements();
            b.iter(|| {
                generator
                    .speculative_parallel(black_box(&env), &ids, &req)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_subset_ablations(c: &mut Criterion) {
    // DESIGN.md ablation: searching F'(M) and the early-stopping greedy.
    let mut group = c.benchmark_group("generate/ablation");
    group.sample_size(10);
    let m = 5;
    let env = random_env(m, 1);
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    let generator = Generator::default();
    let req = requirements();
    group.bench_function("exhaustive_subsets_m5", |b| {
        b.iter(|| {
            generator
                .exhaustive_subsets(black_box(&env), &ids, &req)
                .unwrap()
        });
    });
    group.bench_function("approximation_early_stop_m5", |b| {
        b.iter(|| {
            generator
                .approximation_early_stop(black_box(&env), &ids, &req)
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exhaustive,
    bench_approximation,
    bench_defaults,
    bench_subset_ablations
);
criterion_main!(benches);

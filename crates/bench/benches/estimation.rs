//! Criterion benches for the QoS estimators: Algorithm 1 versus the
//! folding baseline, across strategy sizes and shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

use qce_strategy::enumerate::StrategySampler;
use qce_strategy::estimate::{estimate, estimate_folding, timelines};
use qce_strategy::{EnvQos, MsId, Qos, Strategy};

fn env(m: usize) -> EnvQos {
    (0..m)
        .map(|i| {
            Qos::new(
                50.0 + 10.0 * i as f64,
                40.0 + 15.0 * i as f64,
                0.5 + 0.04 * i as f64,
            )
            .expect("valid")
        })
        .collect()
}

fn random_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut ChaCha8Rng::seed_from_u64(seed))
}

fn bench_algorithm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate/algorithm1");
    for m in [2usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let env = env(m);
            let strategy = random_strategy(m, 7);
            b.iter(|| estimate(black_box(&strategy), black_box(&env)).unwrap());
        });
    }
    group.finish();
}

fn bench_folding(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate/folding");
    for m in [2usize, 4, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let env = env(m);
            let strategy = random_strategy(m, 7);
            b.iter(|| estimate_folding(black_box(&strategy), black_box(&env)).unwrap());
        });
    }
    group.finish();
}

fn bench_timelines(c: &mut Criterion) {
    let env = env(8);
    let strategy = random_strategy(8, 7);
    c.bench_function("estimate/timelines_8", |b| {
        b.iter(|| timelines(black_box(&strategy), black_box(&env)).unwrap());
    });
}

fn bench_shapes(c: &mut Criterion) {
    // Fixed shapes at M = 6: fail-over is the cheapest timeline, parallel
    // the densest.
    let env = env(6);
    let mut group = c.benchmark_group("estimate/shape");
    for (name, text) in [
        ("failover", "a-b-c-d-e-f"),
        ("parallel", "a*b*c*d*e*f"),
        ("mixed", "a*b-c*(d-e)-f"),
    ] {
        let strategy = Strategy::parse(text).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| estimate(black_box(&strategy), black_box(&env)).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_folding,
    bench_timelines,
    bench_shapes
);
criterion_main!(benches);

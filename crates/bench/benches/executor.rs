//! Criterion benches for the virtual-time executor and Monte-Carlo
//! pipeline (the simulation substrate of Section V.A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

use qce_sim::{simulate, Environment, VirtualExecutor};
use qce_strategy::Strategy;

fn env(m: usize) -> Environment {
    Environment::from_triples(
        &(0..m)
            .map(|i| (50.0, 40.0 + 10.0 * i as f64, 0.6 + 0.03 * i as f64))
            .collect::<Vec<_>>(),
    )
    .expect("valid")
}

fn bench_single_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/execute");
    for (name, text) in [
        ("failover5", "a-b-c-d-e"),
        ("parallel5", "a*b*c*d*e"),
        ("mixed5", "c*(a*b-d*e)"),
    ] {
        let strategy = Strategy::parse(text).unwrap();
        let environment = env(5);
        group.bench_function(name, |b| {
            let exec = VirtualExecutor::new();
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| {
                exec.execute(black_box(&strategy), black_box(&environment), &mut rng)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_monte_carlo_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/monte_carlo_300");
    group.sample_size(20);
    for m in [3usize, 5, 7] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let ids: Vec<qce_strategy::MsId> = (0..m).map(qce_strategy::MsId).collect();
            let strategy = qce_strategy::enumerate::failover(&ids).unwrap();
            let environment = env(m);
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            b.iter(|| simulate(&strategy, &environment, 300, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn bench_cancellation_ablation(c: &mut Criterion) {
    let strategy = Strategy::parse("a*b*c*d*e").unwrap();
    let environment = env(5);
    let mut group = c.benchmark_group("sim/cost_semantics");
    group.bench_function("assumption2", |b| {
        let exec = VirtualExecutor::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| exec.execute(&strategy, &environment, &mut rng).unwrap());
    });
    group.bench_function("free_preemption", |b| {
        let exec = VirtualExecutor::without_cancellation_charges();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| exec.execute(&strategy, &environment, &mut rng).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_single_execution,
    bench_monte_carlo_batch,
    bench_cancellation_ablation
);
criterion_main!(benches);

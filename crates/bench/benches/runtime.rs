//! Criterion benches for the threaded runtime: executor overhead beyond
//! the microservices' own latencies, collector throughput, and gateway
//! request overhead.
//!
//! Providers are configured with zero latency so the measured time is pure
//! framework overhead (thread fan-out, channels, bookkeeping).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use qce_runtime::{
    execute_strategy, Collector, ExecutionRecord, Gateway, GatewayConfig, InMemoryMarket,
    Invocation, MsSpec, Provider, Request, ServiceScript, SimulatedProvider,
};
use qce_strategy::{Qos, Requirements, Strategy};

fn providers(n: usize) -> Vec<Arc<dyn Provider>> {
    (0..n)
        .map(|i| {
            SimulatedProvider::builder(format!("d{i}/cap{i}"), format!("cap{i}"))
                .latency(Duration::ZERO)
                .reliability(1.0)
                .cost(1.0)
                .build() as Arc<dyn Provider>
        })
        .collect()
}

fn bench_executor_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/executor_overhead");
    group.sample_size(30);
    let request = Invocation::new(1, "", vec![]);
    for (name, text) in [
        ("failover3", "a-b-c"),
        ("parallel3", "a*b*c"),
        ("parallel5", "a*b*c*d*e"),
        ("mixed5", "c*(a*b-d*e)"),
    ] {
        let strategy = Strategy::parse(text).unwrap();
        let provs = providers(strategy.len());
        group.bench_function(name, |b| {
            b.iter(|| execute_strategy(black_box(&strategy), &provs, &request, None).unwrap());
        });
    }
    group.finish();
}

fn bench_collector(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/collector");
    group.bench_function("record", |b| {
        let collector = Collector::new(100);
        let record = ExecutionRecord {
            success: true,
            latency: Duration::from_millis(5),
            cost: 1.0,
        };
        b.iter(|| collector.record(black_box("provider-x"), record));
    });
    group.bench_function("stats_window100", |b| {
        let collector = Collector::new(100);
        for _ in 0..100 {
            collector.record(
                "provider-x",
                ExecutionRecord {
                    success: true,
                    latency: Duration::from_millis(5),
                    cost: 1.0,
                },
            );
        }
        b.iter(|| black_box(collector.stats("provider-x")));
    });
    group.finish();
}

fn bench_gateway_invoke(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/gateway_invoke");
    group.sample_size(30);
    for m in [1usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let market = InMemoryMarket::new();
            let mut script = ServiceScript::new(
                "svc",
                (0..m)
                    .map(|i| MsSpec {
                        name: format!("m{i}"),
                        capability: format!("cap{i}"),
                        prior: Qos::new(1.0, 1.0, 1.0).expect("valid"),
                    })
                    .collect(),
                Requirements::new(100.0, 100.0, 0.5).expect("valid"),
            );
            script.slot_size = u32::MAX; // plan once, then steady state
            market.publish(script).unwrap();
            let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
            for provider in providers(m) {
                gateway.registry().register(provider);
            }
            gateway.submit(Request::new("svc")).unwrap(); // warm up: fetch + plan
            b.iter(|| gateway.submit(Request::new(black_box("svc"))).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_executor_overhead,
    bench_collector,
    bench_gateway_invoke
);
criterion_main!(benches);

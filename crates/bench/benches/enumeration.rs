//! Criterion benches for strategy enumeration, counting, and sampling
//! (the machinery behind Table I and the exhaustive search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

use qce_strategy::enumerate::{count_full, for_each_full, paper, StrategySampler};
use qce_strategy::MsId;

fn ids(m: usize) -> Vec<MsId> {
    (0..m).map(MsId).collect()
}

fn bench_streaming_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/stream_full");
    for m in [3usize, 4, 5, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let ids = ids(m);
            b.iter(|| {
                let mut count = 0u64;
                for_each_full(&ids, |s| count += s.len() as u64);
                black_box(count)
            });
        });
    }
    group.finish();
}

fn bench_counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/count");
    for m in [6usize, 10, 16, 20] {
        group.bench_with_input(BenchmarkId::new("semantic", m), &m, |b, &m| {
            b.iter(|| black_box(count_full(black_box(m))));
        });
        group.bench_with_input(BenchmarkId::new("paper_table1", m), &m, |b, &m| {
            b.iter(|| black_box(paper::count_table1(black_box(m))));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate/sample");
    for m in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let sampler = StrategySampler::new(&ids(m));
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| black_box(sampler.sample(&mut rng)));
        });
    }
    group.finish();
}

fn bench_parse_display(c: &mut Criterion) {
    let text = "c*(a*b-d*e)-f*(g-h)";
    c.bench_function("expr/parse", |b| {
        b.iter(|| qce_strategy::Strategy::parse(black_box(text)).unwrap());
    });
    let strategy = qce_strategy::Strategy::parse(text).unwrap();
    c.bench_function("expr/display", |b| {
        b.iter(|| black_box(&strategy).to_string());
    });
}

criterion_group!(
    benches,
    bench_streaming_enumeration,
    bench_counting,
    bench_sampling,
    bench_parse_display
);
criterion_main!(benches);

//! End-to-end integration tests: market → gateway → devices → feedback
//! loop, on real threads (millisecond-scale latencies).

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    CachingMarket, Client, Collector, Gateway, GatewayConfig, InMemoryMarket, Market, MsSpec,
    Registry, Request, ServiceScript, SimulatedProvider, StrategyOrigin,
};
use qce_strategy::{Qos, Requirements};

/// Builds the paper's testbed service: three temperature microservices
/// (Section V.B) with reliability 0.7 and cost 50 each.
fn temperature_script(slot_size: u32) -> ServiceScript {
    let mut script = ServiceScript::new(
        "detect-temperature",
        vec![
            MsSpec {
                name: "readTempSensor".into(),
                capability: "read-temp".into(),
                prior: Qos::new(50.0, 5.0, 0.7).unwrap(),
            },
            MsSpec {
                name: "estTemp".into(),
                capability: "est-temp".into(),
                prior: Qos::new(50.0, 8.0, 0.7).unwrap(),
            },
            MsSpec {
                name: "readLocTemp".into(),
                capability: "loc-temp".into(),
                prior: Qos::new(50.0, 12.0, 0.7).unwrap(),
            },
        ],
        Requirements::new(100.0, 50.0, 0.97).unwrap(),
    );
    script.slot_size = slot_size;
    script
}

struct Testbed {
    gateway: Arc<Gateway>,
    sensor: Arc<SimulatedProvider>,
}

/// Gateway + three simulated devices; `readTempSensor` is the fastest.
fn testbed(slot_size: u32, reliability: f64) -> Testbed {
    let market = InMemoryMarket::new();
    market.publish(temperature_script(slot_size)).unwrap();
    // A small collector window keeps the feedback loop responsive: a
    // demoted microservice is only observed on fail-over fallthrough, so a
    // large window would take many slots to notice its recovery.
    let config = GatewayConfig::builder().collector_window(60).build();
    let gateway = Arc::new(Gateway::new(Box::new(market), config));
    // The sensor is markedly cheaper and faster than the alternatives so
    // that, when healthy, it robustly leads the generated strategy.
    let sensor = SimulatedProvider::builder("pi/read-temp", "read-temp")
        .cost(30.0)
        .latency(Duration::from_millis(2))
        .reliability(reliability)
        .seed(11)
        .build();
    gateway.registry().register(Arc::clone(&sensor) as _);
    gateway.registry().register(
        SimulatedProvider::builder("m92p-a/est-temp", "est-temp")
            .cost(50.0)
            .latency(Duration::from_millis(15))
            .reliability(reliability)
            .seed(22)
            .build(),
    );
    gateway.registry().register(
        SimulatedProvider::builder("m92p-b/loc-temp", "loc-temp")
            .cost(50.0)
            .latency(Duration::from_millis(25))
            .reliability(reliability)
            .seed(33)
            .build(),
    );
    Testbed { gateway, sensor }
}

#[test]
fn generated_strategy_is_the_papers_failover_chain() {
    // Paper Section V.B: with r = 70% and cost 50 for all three, the
    // generated strategy is readTempSensor-estTemp-readLocTemp.
    let tb = testbed(40, 0.7);
    for _ in 0..40 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    let response = tb
        .gateway
        .submit(Request::new("detect-temperature"))
        .unwrap();
    assert!(matches!(response.origin, StrategyOrigin::Generated(_)));
    assert_eq!(
        response.strategy_text, "readTempSensor-estTemp-readLocTemp",
        "fastest-first fail-over"
    );
}

#[test]
fn generated_strategy_beats_default_on_cost() {
    let tb = testbed(30, 0.7);
    let mut default_costs = Vec::new();
    let mut generated_costs = Vec::new();
    for _ in 0..90 {
        let response = tb
            .gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
        match response.origin {
            StrategyOrigin::Default => default_costs.push(response.cost),
            StrategyOrigin::Generated(_) => generated_costs.push(response.cost),
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert_eq!(avg(&default_costs), 130.0, "parallel default charges all 3");
    assert!(
        avg(&generated_costs) < 100.0,
        "fail-over charges ~70 on average, got {}",
        avg(&generated_costs)
    );
}

#[test]
fn feedback_loop_adapts_to_reliability_drop_and_recovery() {
    // The Fig. 8 scenario: readTempSensor's reliability drops to 20% and
    // later recovers; the generated strategy must demote and re-promote it.
    let tb = testbed(50, 0.7);

    // Slot 0 (default) + slot 1 (generated from healthy data).
    for _ in 0..100 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    let healthy = tb.gateway.current_strategy("detect-temperature").unwrap();
    assert!(
        healthy.starts_with("readTempSensor"),
        "healthy sensor leads: {healthy}"
    );

    // Reliability drops; run enough slots for the window to turn over.
    tb.sensor.set_reliability(0.2);
    for _ in 0..150 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    let degraded = tb.gateway.current_strategy("detect-temperature").unwrap();
    assert!(
        !degraded.starts_with("readTempSensor"),
        "degraded sensor must not lead: {degraded}"
    );

    // Recovery. The demoted sensor is only invoked when the new leader
    // fails (~30% of requests), so refreshing its observation window takes
    // several slots.
    tb.sensor.set_reliability(0.7);
    for _ in 0..400 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    let recovered = tb.gateway.current_strategy("detect-temperature").unwrap();
    assert!(
        recovered.starts_with("readTempSensor"),
        "recovered sensor leads again: {recovered}"
    );
}

#[test]
fn measured_qos_tracks_generator_estimate() {
    let tb = testbed(60, 0.7);
    // Slot 0: collect.
    for _ in 0..60 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    // Slot 1: measure the generated strategy.
    let mut costs = Vec::new();
    let mut successes = 0u32;
    for _ in 0..60 {
        let r = tb
            .gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
        costs.push(r.cost);
        if r.success {
            successes += 1;
        }
    }
    let history = tb.gateway.slot_history("detect-temperature");
    let estimated = history[1]
        .estimated
        .expect("generated slots carry estimates");
    let mean_cost = costs.iter().sum::<f64>() / costs.len() as f64;
    assert!(
        (mean_cost - estimated.cost).abs() / estimated.cost < 0.35,
        "measured cost {mean_cost} vs estimated {}",
        estimated.cost
    );
    let measured_rel = f64::from(successes) / 60.0;
    assert!(
        (measured_rel - estimated.reliability.value()).abs() < 0.12,
        "measured reliability {measured_rel} vs estimated {}",
        estimated.reliability
    );
}

#[test]
fn concurrent_clients_share_one_gateway() {
    let tb = testbed(1000, 1.0);
    let gateway = Arc::clone(&tb.gateway);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let gw = Arc::clone(&gateway);
            scope.spawn(move || {
                let client = Client::new(gw);
                for _ in 0..10 {
                    let response = client.invoke("detect-temperature").unwrap();
                    assert!(response.success);
                }
            });
        }
    });
    // All 40 invocations landed in slot 0 and were recorded.
    assert_eq!(tb.gateway.collector().observation_count("pi/read-temp"), 40);
}

#[test]
fn caching_market_fetches_cloud_once() {
    let inner = InMemoryMarket::with_latency(Duration::from_millis(10));
    inner.publish(temperature_script(10)).unwrap();
    let caching = CachingMarket::new(inner);
    // Exercise Market-level caching directly (the gateway additionally
    // caches the parsed script in its service state).
    caching.fetch("detect-temperature").unwrap();
    caching.fetch("detect-temperature").unwrap();
    caching.fetch("detect-temperature").unwrap();
    let (hits, misses) = caching.cache_stats();
    assert_eq!((hits, misses), (2, 1));
    assert_eq!(caching.inner().fetch_count(), 1);
}

#[test]
fn best_provider_switches_when_a_better_device_joins() {
    let tb = testbed(5, 0.7);
    for _ in 0..5 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    // A much better read-temp provider joins the environment.
    tb.gateway.registry().register(
        SimulatedProvider::builder("server/read-temp", "read-temp")
            .cost(10.0)
            .latency(Duration::from_millis(1))
            .reliability(0.99)
            .build(),
    );
    // Next slots should route read-temp to the new provider. The switch
    // happens once the incumbent's measured success rate converges toward
    // its true 0.7 (its utility then drops below the newcomer's
    // prior-based utility), so run enough slots for the estimate to
    // settle; after that the collector has data for the newcomer.
    for _ in 0..55 {
        tb.gateway
            .submit(Request::new("detect-temperature"))
            .unwrap();
    }
    let collector: &Arc<Collector> = tb.gateway.collector();
    let adopted = collector.observation_count("server/read-temp");
    // The newcomer must not merely be probed once: once the incumbent's
    // estimate settles, the higher-utility provider keeps winning, so a
    // healthy selection loop hands it a sustained share of the traffic.
    assert!(
        adopted >= 5,
        "new provider should be selected and stay selected \
         (Assumption 1); got {adopted} invocations"
    );
}

#[test]
fn registry_is_shared_across_services() {
    // Two scripts using the same capability resolve to the same provider.
    let market = InMemoryMarket::new();
    let mut s1 = temperature_script(10);
    s1.service_id = "svc-1".into();
    let mut s2 = temperature_script(10);
    s2.service_id = "svc-2".into();
    market.publish(s1).unwrap();
    market.publish(s2).unwrap();
    let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
    let registry: &Arc<Registry> = gateway.registry();
    for (i, cap) in ["read-temp", "est-temp", "loc-temp"].iter().enumerate() {
        registry.register(
            SimulatedProvider::builder(format!("d{i}/{cap}"), *cap)
                .cost(50.0)
                .latency(Duration::from_millis(1))
                .build(),
        );
    }
    assert!(gateway.submit(Request::new("svc-1")).unwrap().success);
    assert!(gateway.submit(Request::new("svc-2")).unwrap().success);
}

//! Edge-of-the-clock regressions for the event core's saturating deadline
//! arithmetic (`engine/event.rs`).
//!
//! A timed leaf's timer deadline is `t0.saturating_add(latency)`. Near
//! `Duration::MAX` that clamp is lossy: two legs with *different* declared
//! latencies can saturate to the *same* deadline, and reconstructing a
//! leg's latency as `now - t0` after the clamp silently under-reports it
//! by `t0`. The core therefore carries the declared latency on the timer
//! event and reports it verbatim; the subtraction is only the fallback for
//! blocking legs, whose elapsed time is genuinely `now - t0`. These tests
//! pin that behaviour at the extremes — `Duration::MAX`, zero latency —
//! and check that clamped ties resolve in a deterministic, replayable
//! order (timer sequence number, i.e. start order).

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::engine::{Budget, Completion, CompletionPolicy, ExecSpec, ExecutionEngine};
use qce_runtime::{Clock, Invocation, InvokeError, Provider, VirtualClock};
use qce_strategy::Strategy;

/// A provider that always takes the timed path, declaring exactly the
/// configured latency — unlike `SimulatedProvider`, whose jitter math
/// cannot represent latencies near `Duration::MAX`.
struct TimedLeaf {
    id: String,
    latency: Duration,
    ok: bool,
}

impl TimedLeaf {
    fn arc(id: &str, latency: Duration, ok: bool) -> Arc<dyn Provider> {
        Arc::new(TimedLeaf {
            id: id.to_string(),
            latency,
            ok,
        })
    }

    fn sample(&self) -> Result<Vec<u8>, InvokeError> {
        if self.ok {
            Ok(self.id.as_bytes().to_vec())
        } else {
            Err(InvokeError::ExecutionFailed {
                reason: "scripted failure".to_string(),
            })
        }
    }
}

impl Provider for TimedLeaf {
    fn id(&self) -> &str {
        &self.id
    }

    fn capability(&self) -> &str {
        "edge-cap"
    }

    fn cost(&self) -> f64 {
        10.0
    }

    fn invoke(&self, _request: &Invocation) -> Result<Vec<u8>, InvokeError> {
        self.sample()
    }

    fn try_timed_invoke(
        &self,
        _request: &Invocation,
        _clock: &dyn Clock,
    ) -> Option<(Duration, Result<Vec<u8>, InvokeError>)> {
        Some((self.latency, self.sample()))
    }
}

fn run(
    strategy: &str,
    t0: Duration,
    providers: Vec<Arc<dyn Provider>>,
) -> qce_runtime::engine::EngineOutcome {
    let clock = Arc::new(VirtualClock::new());
    clock.advance(t0);
    ExecutionEngine::new(4)
        .execute(ExecSpec {
            strategy: Strategy::parse(strategy).unwrap(),
            providers,
            request: Invocation::new(7, "edge-cap", vec![]),
            collector: None,
            telemetry: None,
            clock: clock as Arc<dyn Clock>,
            budget: Budget::unlimited(),
            policy: CompletionPolicy::FirstSuccess,
        })
        .unwrap()
}

/// A leg declaring `Duration::MAX` from a non-zero start instant must
/// report `Duration::MAX` — not `MAX - t0`, which is what the clamped
/// deadline minus `t0` would reconstruct.
#[test]
fn max_latency_leaf_reports_declared_latency_not_deadline_minus_t0() {
    let t0 = Duration::from_millis(2);
    let outcome = run("a", t0, vec![TimedLeaf::arc("huge", Duration::MAX, true)]);
    match outcome.completion {
        Completion::First { success, .. } => assert!(success),
        Completion::Agreement { .. } => panic!("first-success run returned agreement"),
    }
    assert_eq!(outcome.invocations.len(), 1);
    assert_eq!(outcome.invocations[0].latency, Duration::MAX);
    // The *request* latency is genuinely elapsed time, so the clamp is
    // honest there: the run started at t0 and ended at the saturated
    // deadline.
    assert_eq!(outcome.latency, Duration::MAX - t0);
}

/// A zero-latency leg fires its timer at `now` without advancing the
/// clock and reports exactly zero.
#[test]
fn zero_latency_leaf_completes_instantly_with_zero_latency() {
    let t0 = Duration::from_millis(5);
    let outcome = run(
        "a",
        t0,
        vec![TimedLeaf::arc("instant", Duration::ZERO, true)],
    );
    match outcome.completion {
        Completion::First { success, .. } => assert!(success),
        Completion::Agreement { .. } => panic!("first-success run returned agreement"),
    }
    assert_eq!(outcome.invocations[0].latency, Duration::ZERO);
    assert_eq!(outcome.latency, Duration::ZERO);
}

/// Two legs whose deadlines both clamp to `Duration::MAX` tie on the
/// timer heap; the sequence number breaks the tie in start order, and the
/// *declared* latencies — which still differ — survive the clamp. Run the
/// rig twice: byte-identical replay.
#[test]
fn clamped_deadline_ties_resolve_in_start_order_and_keep_declared_latencies() {
    let t0 = Duration::from_millis(2);
    let rig = || {
        run(
            "a*b*c",
            t0,
            vec![
                TimedLeaf::arc("slow-a", Duration::MAX, false),
                TimedLeaf::arc("slow-b", Duration::MAX - Duration::from_millis(1), false),
                TimedLeaf::arc("quick-c", Duration::from_millis(1), false),
            ],
        )
    };
    let outcome = rig();
    match outcome.completion {
        Completion::First { success, .. } => assert!(!success),
        Completion::Agreement { .. } => panic!("first-success run returned agreement"),
    }
    // Completion order: the quick leg at t0 + 1ms, then the two clamped
    // legs at Duration::MAX in start (sequence) order.
    let order: Vec<&str> = outcome
        .invocations
        .iter()
        .map(|i| i.provider_id.as_str())
        .collect();
    assert_eq!(order, ["quick-c", "slow-a", "slow-b"]);
    // Declared latencies survive even though both deadlines clamped to
    // the same instant.
    assert_eq!(outcome.invocations[0].latency, Duration::from_millis(1));
    assert_eq!(outcome.invocations[1].latency, Duration::MAX);
    assert_eq!(
        outcome.invocations[2].latency,
        Duration::MAX - Duration::from_millis(1)
    );

    // Replay determinism at the clamp: a second run reproduces the same
    // trace exactly.
    let replay = rig();
    assert_eq!(replay.invocations, outcome.invocations);
    assert_eq!(replay.latency, outcome.latency);
}

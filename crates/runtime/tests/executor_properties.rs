//! Property-based tests for the threaded strategy executor: for random
//! strategies and deterministic provider behaviours, the executor's
//! success/cost accounting must match the analytic semantics exactly.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_runtime::{execute_strategy, execute_with_quorum, Invocation, Provider, SimulatedProvider};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::{EnvQos, MsId, Qos, Strategy};

/// Builds deterministic providers (reliability 0 or 1) with tiny latencies.
fn deterministic_providers(outcomes: &[bool]) -> Vec<Arc<dyn Provider>> {
    outcomes
        .iter()
        .enumerate()
        .map(|(i, &ok)| {
            SimulatedProvider::builder(format!("p{i}"), format!("cap{i}"))
                .cost(1.0)
                .latency(Duration::from_micros(200 * (i as u64 + 1)))
                .reliability(if ok { 1.0 } else { 0.0 })
                .build() as Arc<dyn Provider>
        })
        .collect()
}

fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut ChaCha8Rng::seed_from_u64(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The executor succeeds iff at least one microservice would succeed —
    /// strategy shape cannot change reachability of success when failures
    /// are deterministic.
    #[test]
    fn success_iff_any_reliable(m in 1usize..5, seed in any::<u64>(), mask in any::<u8>()) {
        let outcomes: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        let strategy = sampled_strategy(m, seed);
        let providers = deterministic_providers(&outcomes);
        let outcome = execute_strategy(
            &strategy,
            &providers,
            &Invocation::new(1, "", vec![]),
            None,
        )
        .unwrap();
        prop_assert_eq!(outcome.success, outcomes.iter().any(|&b| b));
    }

    /// With deterministic outcomes, the threaded executor's cost matches
    /// Algorithm 1's estimate (reliabilities 0/1 make the estimate exact,
    /// up to races between equal-length branches — avoided by distinct
    /// latencies).
    #[test]
    fn cost_matches_estimate_when_deterministic(m in 1usize..5, seed in any::<u64>(), mask in any::<u8>()) {
        let outcomes: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        let strategy = sampled_strategy(m, seed);
        let providers = deterministic_providers(&outcomes);
        // Analytic estimate with the same deterministic reliabilities and
        // the same latency ordering.
        let env: EnvQos = (0..m)
            .map(|i| {
                Qos::new(
                    1.0,
                    0.2 * (i as f64 + 1.0),
                    if outcomes[i] { 1.0 } else { 0.0 },
                )
                .unwrap()
            })
            .collect();
        let estimated = qce_strategy::estimate::estimate(&strategy, &env).unwrap();
        let outcome = execute_strategy(
            &strategy,
            &providers,
            &Invocation::new(1, "", vec![]),
            None,
        )
        .unwrap();
        // Deterministic outcomes make expected cost an exact invocation
        // count; scheduling jitter can only flip *simultaneity* cases,
        // which distinct latencies rule out analytically. Allow one
        // invocation of slack for cancel-timing races on loaded machines.
        prop_assert!(
            (outcome.cost - estimated.cost).abs() <= 1.0 + 1e-9,
            "strategy {}: threaded cost {} vs estimate {}",
            strategy,
            outcome.cost,
            estimated.cost
        );
    }

    /// Quorum 1 and plain execution agree on success and payload presence.
    #[test]
    fn quorum_one_equals_first_success(m in 1usize..4, seed in any::<u64>(), mask in any::<u8>()) {
        let outcomes: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        let strategy = sampled_strategy(m, seed);
        let providers = deterministic_providers(&outcomes);
        let request = Invocation::new(1, "", vec![]);
        let plain = execute_strategy(&strategy, &providers, &request, None).unwrap();
        let quorum = execute_with_quorum(&strategy, &providers, &request, None, 1).unwrap();
        prop_assert_eq!(plain.success, quorum.agreed);
    }

    /// Raising the quorum never decreases the cost.
    #[test]
    fn higher_quorum_costs_at_least_as_much(m in 2usize..5, seed in any::<u64>()) {
        let outcomes: Vec<bool> = vec![true; m];
        let strategy = sampled_strategy(m, seed);
        let providers = deterministic_providers(&outcomes);
        let request = Invocation::new(1, "", vec![]);
        let q1 = execute_with_quorum(&strategy, &providers, &request, None, 1).unwrap();
        let q2 = execute_with_quorum(&strategy, &providers, &request, None, 2).unwrap();
        prop_assert!(q2.cost >= q1.cost - 1e-9, "q1 {} vs q2 {}", q1.cost, q2.cost);
        prop_assert!(q2.votes_cast >= q1.votes_cast);
    }

    /// Every reported invocation belongs to the strategy and is charged at
    /// its provider's advertised cost.
    #[test]
    fn invocation_accounting_is_consistent(m in 1usize..5, seed in any::<u64>(), mask in any::<u8>()) {
        let outcomes: Vec<bool> = (0..m).map(|i| mask & (1 << i) != 0).collect();
        let strategy = sampled_strategy(m, seed);
        let providers = deterministic_providers(&outcomes);
        let outcome = execute_strategy(
            &strategy,
            &providers,
            &Invocation::new(1, "", vec![]),
            None,
        )
        .unwrap();
        let total: f64 = outcome.invocations.iter().map(|i| i.cost).sum();
        prop_assert!((total - outcome.cost).abs() < 1e-9);
        prop_assert!(outcome.invocations.len() <= m, "each ms invoked at most once");
        // No provider is invoked twice.
        let mut ids: Vec<&str> = outcome
            .invocations
            .iter()
            .map(|i| i.provider_id.as_str())
            .collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(ids.len(), before);
    }
}

//! Equivalence proofs for the unified execution engine: for random
//! strategies (up to M = 5), deterministic provider reliabilities, and
//! seeded fault plans, both engine entry points must reproduce the
//! pre-engine executors *exactly* — outcome, payload, cost, latency, and
//! the multiset of started invocations.
//!
//! The ground truth is not today's `execute_strategy_with_clock` (now a
//! thin wrapper over the engine) but the **original tree walkers**, copied
//! verbatim below from the pre-engine `executor.rs` / `quorum.rs` — except
//! that the oracles join their legs with the same slot-handoff the engine
//! uses (see [`OracleSlot`]), without which the oracle itself is
//! scheduling-dependent. Each case runs three independent rigs on fresh
//! virtual clocks:
//!
//! 1. the copied legacy walker (the oracle),
//! 2. `execute_strategy_with_clock` / `execute_with_quorum_clock`
//!    (scoped-spawner engine path),
//! 3. `ExecutionEngine::execute` (pooled-spawner engine path).
//!
//! Determinism argument: reliabilities are 0 or 1 and latencies are
//! distinct powers of two, so every *success* instant is a distinct
//! subset-sum and no tie-dependent race can flip the winner or the vote
//! order. Fault windows (crash / latency spike / byzantine) are keyed on
//! virtual time, which only advances when every worker sleeps, so equal
//! behaviour implies equal fault exposure. Only the *completion order* of
//! same-instant failures is scheduling-dependent, which is why invocation
//! traces are compared as sorted multisets.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;

use qce_runtime::engine::{Budget, Completion, CompletionPolicy, ExecSpec, ExecutionEngine};
use qce_runtime::{
    execute_strategy_with_clock, execute_with_quorum_clock, Clock, FaultPlan, FaultProfile,
    FaultyProvider, Invocation, InvocationOutcome, Provider, SimulatedProvider, VirtualClock,
    WorkerGuard,
};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::{MsId, Node, Strategy};

// ---------------------------------------------------------------------------
// The oracle: the pre-engine first-success walker, copied verbatim (minus
// collector/telemetry plumbing, which this test does not compare).
// ---------------------------------------------------------------------------

struct Win {
    at: Duration,
    payload: Vec<u8>,
}

struct OracleCtx<'a> {
    providers: &'a [Arc<dyn Provider>],
    request: &'a Invocation,
    clock: &'a dyn Clock,
    cancel: AtomicBool,
    started_at: Duration,
    first_success: Mutex<Option<Win>>,
    invocations: Mutex<Vec<InvocationOutcome>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeStatus {
    Succeeded,
    Failed,
    Cancelled,
}

fn propagate(result: std::thread::Result<NodeStatus>) -> NodeStatus {
    result.unwrap_or_else(|panic| std::panic::resume_unwind(panic))
}

/// The slot handoff the engine's walker uses (see `SlotHandoff` in
/// `engine/walker.rs` and the advance-protocol notes in the clock module),
/// applied identically to the oracle copies: a leg that finishes last
/// while the parent is passively parked leaves its worker slot for the
/// parent to release after `exit_passive`; every other leg releases its
/// own. Without it the clock can advance past the parent's continuation
/// in the window between the last leg completing and the parent being
/// rescheduled, making the *oracle itself* scheduling-dependent — the
/// only departure from the verbatim pre-engine walkers below.
struct OracleHandoff {
    state: std::sync::Mutex<(usize, bool, bool)>, // (outstanding, parked, kept)
}

impl OracleHandoff {
    fn new(legs: usize) -> Self {
        OracleHandoff {
            state: std::sync::Mutex::new((legs, false, false)),
        }
    }

    fn leg_done(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        state.0 -= 1;
        if state.0 == 0 && state.1 {
            state.2 = true;
            false
        } else {
            true
        }
    }

    fn park_parent(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        if state.0 == 0 {
            false
        } else {
            state.1 = true;
            true
        }
    }

    fn take_kept(&self) -> bool {
        let mut state = self.state.lock().unwrap();
        state.1 = false;
        std::mem::replace(&mut state.2, false)
    }
}

struct OracleSlot<'a> {
    clock: &'a dyn Clock,
    handoff: &'a OracleHandoff,
}

impl<'a> OracleSlot<'a> {
    fn adopt(clock: &'a dyn Clock, handoff: &'a OracleHandoff) -> Self {
        clock.adopt_worker();
        OracleSlot { clock, handoff }
    }
}

impl Drop for OracleSlot<'_> {
    fn drop(&mut self) {
        self.clock.disown_worker();
        if self.handoff.leg_done() {
            self.clock.release_worker();
        }
    }
}

fn invoke_leaf(
    id: MsId,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    clock: &dyn Clock,
    invocations: &Mutex<Vec<InvocationOutcome>>,
) -> Result<Vec<u8>, ()> {
    let provider = &providers[id.index()];
    let t0 = clock.now();
    let result = provider.invoke(request);
    let latency = clock.now().saturating_sub(t0);
    let success = result.is_ok();
    invocations.lock().push(InvocationOutcome {
        provider_id: provider.id().to_string(),
        capability: provider.capability().to_string(),
        payload: result.as_ref().ok().cloned(),
        latency,
        cost: provider.cost(),
        success,
    });
    result.map_err(|_| ())
}

fn oracle_run_node(node: &Node, ctx: &OracleCtx<'_>) -> NodeStatus {
    match node {
        Node::Leaf(id) => {
            if ctx.cancel.load(Ordering::SeqCst) {
                return NodeStatus::Cancelled;
            }
            match invoke_leaf(*id, ctx.providers, ctx.request, ctx.clock, &ctx.invocations) {
                Ok(payload) => {
                    let at = ctx.clock.now().saturating_sub(ctx.started_at);
                    let mut win = ctx.first_success.lock();
                    let earlier = win.as_ref().is_none_or(|w| at < w.at);
                    if earlier {
                        *win = Some(Win { at, payload });
                    }
                    drop(win);
                    ctx.cancel.store(true, Ordering::SeqCst);
                    NodeStatus::Succeeded
                }
                Err(()) => NodeStatus::Failed,
            }
        }
        Node::Seq(children) => {
            for child in children {
                if ctx.cancel.load(Ordering::SeqCst) {
                    return NodeStatus::Cancelled;
                }
                match oracle_run_node(child, ctx) {
                    NodeStatus::Succeeded => return NodeStatus::Succeeded,
                    NodeStatus::Cancelled => return NodeStatus::Cancelled,
                    NodeStatus::Failed => {}
                }
            }
            NodeStatus::Failed
        }
        Node::Par(children) => {
            let spawned = children.len() - 1;
            let handoff = OracleHandoff::new(spawned);
            let statuses: Vec<NodeStatus> = std::thread::scope(|scope| {
                for _ in 0..spawned {
                    ctx.clock.reserve_worker();
                }
                let handles: Vec<_> = children
                    .iter()
                    .skip(1)
                    .map(|child| {
                        let handoff = &handoff;
                        scope.spawn(move || {
                            let _slot = OracleSlot::adopt(ctx.clock, handoff);
                            oracle_run_node(child, ctx)
                        })
                    })
                    .collect();
                let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    oracle_run_node(&children[0], ctx)
                }));
                let parked = handoff.park_parent();
                if parked {
                    ctx.clock.enter_passive();
                }
                let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                if parked {
                    ctx.clock.exit_passive();
                }
                if handoff.take_kept() {
                    ctx.clock.release_worker();
                }
                let mut statuses = vec![propagate(first)];
                statuses.extend(joined.into_iter().map(propagate));
                statuses
            });
            if statuses.contains(&NodeStatus::Succeeded) {
                NodeStatus::Succeeded
            } else if statuses.contains(&NodeStatus::Cancelled) {
                NodeStatus::Cancelled
            } else {
                NodeStatus::Failed
            }
        }
    }
}

struct OracleOutcome {
    success: bool,
    payload: Option<Vec<u8>>,
    latency: Duration,
    cost: f64,
    invocations: Vec<InvocationOutcome>,
}

fn oracle_first_success(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    clock: &dyn Clock,
) -> OracleOutcome {
    let worker = WorkerGuard::enter(clock);
    let ctx = OracleCtx {
        providers,
        request,
        clock,
        cancel: AtomicBool::new(false),
        started_at: clock.now(),
        first_success: Mutex::new(None),
        invocations: Mutex::new(Vec::new()),
    };
    oracle_run_node(strategy.node(), &ctx);
    drop(worker);
    let first_success = ctx.first_success.into_inner();
    let invocations = ctx.invocations.into_inner();
    let cost = invocations.iter().map(|i| i.cost).sum();
    let (success, payload, latency) = match first_success {
        Some(win) => (true, Some(win.payload), win.at),
        None => (false, None, clock.now().saturating_sub(ctx.started_at)),
    };
    OracleOutcome {
        success,
        payload,
        latency,
        cost,
        invocations,
    }
}

// ---------------------------------------------------------------------------
// The oracle: the pre-engine quorum walker, copied verbatim likewise.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct VoteBox {
    tally: std::collections::HashMap<Vec<u8>, (usize, usize)>,
    total: usize,
    decided_at: Option<Duration>,
}

impl VoteBox {
    fn vote(&mut self, payload: Vec<u8>) -> usize {
        let order = self.tally.len();
        let entry = self.tally.entry(payload).or_insert((0, order));
        entry.0 += 1;
        self.total += 1;
        entry.0
    }

    fn winner(&self) -> (Option<Vec<u8>>, usize) {
        self.tally
            .iter()
            .max_by(|(_, (va, oa)), (_, (vb, ob))| va.cmp(vb).then(ob.cmp(oa)))
            .map_or((None, 0), |(payload, (votes, _))| {
                (Some(payload.clone()), *votes)
            })
    }
}

struct QuorumOracleCtx<'a> {
    providers: &'a [Arc<dyn Provider>],
    request: &'a Invocation,
    quorum: usize,
    clock: &'a dyn Clock,
    done: AtomicBool,
    started_at: Duration,
    votes: Mutex<VoteBox>,
    invocations: Mutex<Vec<InvocationOutcome>>,
}

fn quorum_oracle_run_node(node: &Node, ctx: &QuorumOracleCtx<'_>) {
    match node {
        Node::Leaf(id) => {
            if ctx.done.load(Ordering::SeqCst) {
                return;
            }
            if let Ok(payload) =
                invoke_leaf(*id, ctx.providers, ctx.request, ctx.clock, &ctx.invocations)
            {
                let mut votes = ctx.votes.lock();
                let count = votes.vote(payload);
                if count >= ctx.quorum && votes.decided_at.is_none() {
                    votes.decided_at = Some(ctx.clock.now().saturating_sub(ctx.started_at));
                    drop(votes);
                    ctx.done.store(true, Ordering::SeqCst);
                }
            }
        }
        Node::Seq(children) => {
            for child in children {
                if ctx.done.load(Ordering::SeqCst) {
                    return;
                }
                quorum_oracle_run_node(child, ctx);
            }
        }
        Node::Par(children) => {
            let spawned = children.len() - 1;
            let handoff = OracleHandoff::new(spawned);
            std::thread::scope(|scope| {
                for _ in 0..spawned {
                    ctx.clock.reserve_worker();
                }
                let handles: Vec<_> = children
                    .iter()
                    .skip(1)
                    .map(|child| {
                        let handoff = &handoff;
                        scope.spawn(move || {
                            let _slot = OracleSlot::adopt(ctx.clock, handoff);
                            quorum_oracle_run_node(child, ctx);
                        })
                    })
                    .collect();
                let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    quorum_oracle_run_node(&children[0], ctx)
                }));
                let parked = handoff.park_parent();
                if parked {
                    ctx.clock.enter_passive();
                }
                let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                if parked {
                    ctx.clock.exit_passive();
                }
                if handoff.take_kept() {
                    ctx.clock.release_worker();
                }
                if let Err(panic) = first {
                    std::panic::resume_unwind(panic);
                }
                for result in joined {
                    if let Err(panic) = result {
                        std::panic::resume_unwind(panic);
                    }
                }
            });
        }
    }
}

struct QuorumOracleOutcome {
    payload: Option<Vec<u8>>,
    votes: usize,
    votes_cast: usize,
    agreed: bool,
    latency: Duration,
    cost: f64,
    invocations: Vec<InvocationOutcome>,
}

fn oracle_quorum(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    quorum: usize,
    clock: &dyn Clock,
) -> QuorumOracleOutcome {
    let worker = WorkerGuard::enter(clock);
    let ctx = QuorumOracleCtx {
        providers,
        request,
        quorum,
        clock,
        done: AtomicBool::new(false),
        started_at: clock.now(),
        votes: Mutex::new(VoteBox::default()),
        invocations: Mutex::new(Vec::new()),
    };
    quorum_oracle_run_node(strategy.node(), &ctx);
    drop(worker);
    let votes = ctx.votes.into_inner();
    let invocations = ctx.invocations.into_inner();
    let cost = invocations.iter().map(|i| i.cost).sum();
    let (payload, winner_votes) = votes.winner();
    let agreed = winner_votes >= quorum;
    let latency = votes
        .decided_at
        .unwrap_or_else(|| clock.now().saturating_sub(ctx.started_at));
    QuorumOracleOutcome {
        payload,
        votes: winner_votes,
        votes_cast: votes.total,
        agreed,
        latency,
        cost,
        invocations,
    }
}

// ---------------------------------------------------------------------------
// Rig construction: deterministic providers under seeded fault plans.
// ---------------------------------------------------------------------------

/// Distinct power-of-two latencies: every success instant is a distinct
/// subset-sum, so no virtual-time tie can make the winner race-dependent.
const LATENCIES_MS: [u64; 5] = [1, 2, 4, 8, 16];

/// A fault profile whose latency spike (1024 ms) is far above any
/// subset-sum of the base latencies, preserving the no-ties argument.
fn profile() -> FaultProfile {
    FaultProfile {
        mean_time_between_faults: Duration::from_millis(20),
        mean_fault_duration: Duration::from_millis(10),
        crash_weight: 2,
        latency_weight: 1,
        byzantine_weight: 1,
        latency_spike: Duration::from_millis(1024),
        byzantine_payload: vec![0xBB],
    }
}

/// A fresh clock plus M providers: reliability from `mask` bits, shared
/// payloads (`i % 2`) so quorums are reachable across providers, and a
/// seeded fault plan on every provider whose `fault_mask` bit is set.
fn rig(
    m: usize,
    mask: u8,
    fault_mask: u8,
    seed: u64,
) -> (Arc<VirtualClock>, Vec<Arc<dyn Provider>>) {
    let clock = Arc::new(VirtualClock::new());
    let providers = (0..m)
        .map(|i| {
            let device = SimulatedProvider::builder(format!("p{i}"), format!("cap{i}"))
                .latency(Duration::from_millis(LATENCIES_MS[i]))
                .cost(5.0 * (i as f64 + 1.0))
                .reliability(if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .response(vec![b'r', (i % 2) as u8])
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build();
            if fault_mask & (1 << i) != 0 {
                let plan = FaultPlan::seeded(
                    seed.wrapping_add(i as u64),
                    Duration::from_secs(60),
                    &profile(),
                );
                FaultyProvider::new(device, Arc::clone(&clock) as Arc<dyn Clock>, plan)
                    as Arc<dyn Provider>
            } else {
                device as Arc<dyn Provider>
            }
        })
        .collect();
    (clock, providers)
}

fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    use rand::SeedableRng;
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed))
}

/// One invocation reduced to its observable fields (cost as bit pattern so
/// the tuple is `Ord`).
type TraceKey = (String, String, Duration, bool, Option<Vec<u8>>, u64);

/// Invocation traces are compared as sorted multisets: same-instant
/// *failures* may complete in either order, but what ran, at what cost,
/// with what result, must match exactly.
fn trace_key(outcome: &InvocationOutcome) -> TraceKey {
    (
        outcome.provider_id.clone(),
        outcome.capability.clone(),
        outcome.latency,
        outcome.success,
        outcome.payload.clone(),
        outcome.cost.to_bits(),
    )
}

fn sorted_trace(invocations: &[InvocationOutcome]) -> Vec<TraceKey> {
    let mut keys: Vec<_> = invocations.iter().map(trace_key).collect();
    keys.sort();
    keys
}

fn request() -> Invocation {
    Invocation::new(7, "", vec![])
}

// ---------------------------------------------------------------------------
// The properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `CompletionPolicy::FirstSuccess` — both engine paths reproduce the
    /// pre-engine `execute_strategy_with_clock` bit for bit.
    #[test]
    fn first_success_engine_equals_legacy_walker(
        m in 1usize..6,
        seed in any::<u64>(),
        mask in any::<u8>(),
        fault_mask in any::<u8>(),
    ) {
        let strategy = sampled_strategy(m, seed);

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let oracle = oracle_first_success(&strategy, &providers, &request(), &*clock);

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let legacy =
            execute_strategy_with_clock(&strategy, &providers, &request(), None, &*clock).unwrap();

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let engine = ExecutionEngine::new(4)
            .execute(ExecSpec {
                strategy: strategy.clone(),
                providers,
                request: request(),
                collector: None,
                telemetry: None,
                clock: clock as Arc<dyn Clock>,
                budget: Budget::unlimited(),
                policy: CompletionPolicy::FirstSuccess,
            })
            .unwrap();
        let (engine_success, engine_payload) = match engine.completion {
            Completion::First { success, payload } => (success, payload),
            Completion::Agreement { .. } => panic!("first-success run returned agreement"),
        };

        // Legacy wrapper vs original walker.
        prop_assert_eq!(legacy.success, oracle.success, "strategy {}", strategy);
        prop_assert_eq!(&legacy.payload, &oracle.payload, "strategy {}", strategy);
        prop_assert_eq!(legacy.latency, oracle.latency, "strategy {}", strategy);
        prop_assert_eq!(legacy.cost, oracle.cost, "strategy {}", strategy);
        prop_assert_eq!(
            sorted_trace(&legacy.invocations),
            sorted_trace(&oracle.invocations),
            "strategy {}",
            strategy
        );

        // Pooled engine vs original walker.
        prop_assert_eq!(engine_success, oracle.success, "strategy {}", strategy);
        prop_assert_eq!(&engine_payload, &oracle.payload, "strategy {}", strategy);
        prop_assert_eq!(engine.latency, oracle.latency, "strategy {}", strategy);
        prop_assert_eq!(engine.cost, oracle.cost, "strategy {}", strategy);
        prop_assert_eq!(engine.pruned, None);
        prop_assert_eq!(
            sorted_trace(&engine.invocations),
            sorted_trace(&oracle.invocations),
            "strategy {}",
            strategy
        );
    }

    /// `CompletionPolicy::Quorum { k }` — both engine paths reproduce the
    /// pre-engine `execute_with_quorum_clock` bit for bit, votes included.
    #[test]
    fn quorum_engine_equals_legacy_walker(
        m in 1usize..6,
        seed in any::<u64>(),
        mask in any::<u8>(),
        fault_mask in any::<u8>(),
        quorum in 1usize..4,
    ) {
        let strategy = sampled_strategy(m, seed);

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let oracle = oracle_quorum(&strategy, &providers, &request(), quorum, &*clock);

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let legacy =
            execute_with_quorum_clock(&strategy, &providers, &request(), None, quorum, &*clock)
                .unwrap();

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let engine = ExecutionEngine::new(4)
            .execute(ExecSpec {
                strategy: strategy.clone(),
                providers,
                request: request(),
                collector: None,
                telemetry: None,
                clock: clock as Arc<dyn Clock>,
                budget: Budget::unlimited(),
                policy: CompletionPolicy::Quorum { quorum },
            })
            .unwrap();
        let (engine_payload, engine_votes, engine_cast, engine_agreed) = match engine.completion {
            Completion::Agreement { payload, votes, votes_cast, agreed } => {
                (payload, votes, votes_cast, agreed)
            }
            Completion::First { .. } => panic!("quorum run returned first-success"),
        };

        // Legacy wrapper vs original walker.
        prop_assert_eq!(&legacy.payload, &oracle.payload, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(legacy.votes, oracle.votes, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(legacy.votes_cast, oracle.votes_cast, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(legacy.agreed, oracle.agreed, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(legacy.latency, oracle.latency, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(legacy.cost, oracle.cost, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(
            sorted_trace(&legacy.invocations),
            sorted_trace(&oracle.invocations),
            "strategy {} q{}",
            strategy,
            quorum
        );

        // Pooled engine vs original walker.
        prop_assert_eq!(&engine_payload, &oracle.payload, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine_votes, oracle.votes, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine_cast, oracle.votes_cast, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine_agreed, oracle.agreed, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine.latency, oracle.latency, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine.cost, oracle.cost, "strategy {} q{}", strategy, quorum);
        prop_assert_eq!(engine.pruned, None);
        prop_assert_eq!(
            sorted_trace(&engine.invocations),
            sorted_trace(&oracle.invocations),
            "strategy {} q{}",
            strategy,
            quorum
        );
    }
}

/// Regression: a Par whose last leg finishes while the parent is
/// passively parked must not let the virtual clock advance past the
/// parent's continuation.
///
/// The strategy `e*(a*(c-d)-b)` under quorum 2 once raced here: when the
/// inner Par's legs all completed while the outer join was parked, the
/// completing leg released its worker slot before the parent was
/// rescheduled, `try_advance` saw every remaining worker asleep, and time
/// jumped to the next leaf's deadline — so `b` (due at 12ms) was skipped
/// and the engine agreed at 16ms with one vote fewer than the oracle.
/// The slot-handoff protocol (`Clock::disown_worker` /
/// `Clock::release_worker`, [`SlotHandoff`] in the walker) closes the
/// window; this replays the once-diverging case many times since the race
/// needed scheduler pressure to fire.
#[test]
fn parked_parent_handoff_keeps_pending_leaves() {
    use proptest::test_runner::rng_for_case;
    use rand::Rng;
    use rand::RngCore;

    // Re-derive case 31 of `quorum_engine_equals_legacy_walker`, the
    // sampling that first exposed the race (strategy `e*(a*(c-d)-b)`,
    // quorum 2).
    let mut rng = rng_for_case("quorum_engine_equals_legacy_walker", 31);
    let m: usize = rng.gen_range(1usize..6);
    let seed: u64 = rng.next_u64();
    let mask: u8 = rng.next_u64() as u8;
    let fault_mask: u8 = rng.next_u64() as u8;
    let quorum: usize = rng.gen_range(1usize..4);
    let strategy = sampled_strategy(m, seed);

    for iter in 0..200 {
        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let oracle = oracle_quorum(&strategy, &providers, &request(), quorum, &*clock);

        let (clock, providers) = rig(m, mask, fault_mask, seed);
        let engine = ExecutionEngine::new(4)
            .execute(ExecSpec {
                strategy: strategy.clone(),
                providers,
                request: request(),
                collector: None,
                telemetry: None,
                clock: clock as Arc<dyn Clock>,
                budget: Budget::unlimited(),
                policy: CompletionPolicy::Quorum { quorum },
            })
            .unwrap();
        let (engine_payload, engine_votes, engine_cast, engine_agreed) = match engine.completion {
            Completion::Agreement {
                payload,
                votes,
                votes_cast,
                agreed,
            } => (payload, votes, votes_cast, agreed),
            Completion::First { .. } => panic!("quorum run returned first-success"),
        };
        let ctx = format!("iter {iter} strategy {strategy} q{quorum}");
        assert_eq!(engine_payload, oracle.payload, "{ctx}");
        assert_eq!(engine_votes, oracle.votes, "{ctx}");
        assert_eq!(engine_cast, oracle.votes_cast, "{ctx}");
        assert_eq!(engine_agreed, oracle.agreed, "{ctx}");
        assert_eq!(engine.latency, oracle.latency, "{ctx}");
        assert_eq!(engine.cost, oracle.cost, "{ctx}");
        assert_eq!(
            sorted_trace(&engine.invocations),
            sorted_trace(&oracle.invocations),
            "{ctx}"
        );
    }
}

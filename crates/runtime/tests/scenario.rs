//! Adversarial-scenario integration tests:
//!
//! 1. **Storm equivalence** (property): merging a correlated-crash storm
//!    into per-leaf fault plans via the scenario compiler's
//!    [`merge_crash_windows`] yields bit-identical engine outcomes to an
//!    *independent* per-leaf construction of the same group-coupled crash
//!    windows (a state-machine walk written from scratch below), across
//!    seeds and both [`CompletionPolicy`] variants. Determinism argument
//!    as in `engine_equivalence.rs`: reliabilities 0/1, distinct
//!    power-of-two latencies (distinct subset-sums), 1024 ms spikes, and
//!    traces compared as sorted multisets.
//! 2. **Churn regression**: evicting a provider mid-slot with a request in
//!    flight, then re-adding it, must not panic the gateway, leak
//!    worker-pool slots, or double-count churn/final-stats telemetry.
//! 3. **DSL round-trip** (property): parse → serialize → parse is the
//!    identity for valid scenarios, and malformed scenario JSON is
//!    rejected with typed [`ScenarioError`]s, never a panic.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use qce_runtime::engine::{Budget, Completion, CompletionPolicy, ExecSpec, ExecutionEngine};
use qce_runtime::scenario::{
    merge_crash_windows, BackgroundFaults, Churn, LoadPhase, MsDef, Require, Scenario,
    ScenarioError, ServiceDef, Storm,
};
use qce_runtime::telemetry::EventKind;
use qce_runtime::{
    Clock, FaultEvent, FaultKind, FaultPlan, FaultProfile, FaultyProvider, Harness, Invocation,
    InvocationOutcome, MsSpec, Provider, RuntimeError, ServiceScript, SimulatedProvider,
    VirtualClock, WorkerGuard,
};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::{MsId, Qos, Requirements, Strategy};

// ---------------------------------------------------------------------------
// Satellite 1: storm ≡ group-coupled per-leaf crash windows.
// ---------------------------------------------------------------------------

/// Distinct power-of-two latencies: every success instant is a distinct
/// subset-sum, so no virtual-time tie can make the winner race-dependent.
const LATENCIES_MS: [u64; 5] = [1, 2, 4, 8, 16];

const HORIZON: Duration = Duration::from_secs(60);

/// Background fault profile whose latency spike (1024 ms) sits far above
/// any subset-sum of the base latencies, preserving the no-ties argument.
fn profile() -> FaultProfile {
    FaultProfile {
        mean_time_between_faults: Duration::from_millis(20),
        mean_fault_duration: Duration::from_millis(10),
        crash_weight: 2,
        latency_weight: 1,
        byzantine_weight: 1,
        latency_spike: Duration::from_millis(1024),
        byzantine_payload: vec![0xBB],
    }
}

/// Independent oracle for the compiler's plan merging: walk the background
/// plan and the storm window as a two-input state machine over event
/// instants, emitting `Crash` exactly when the provider goes down
/// (background crash OR storm) and `Recover` exactly when both clear.
/// Non-crash events pass through.
fn oracle_merge(
    base: &FaultPlan,
    storm: Option<(Duration, Duration)>,
    horizon: Duration,
) -> FaultPlan {
    let mut instants: Vec<Duration> = base.events().iter().map(|e| e.at).collect();
    if let Some((from, to)) = storm {
        instants.push(from);
        instants.push(to);
    }
    instants.sort_unstable();
    instants.dedup();

    let mut events: Vec<FaultEvent> = base
        .events()
        .iter()
        .filter(|e| !matches!(e.kind, FaultKind::Crash | FaultKind::Recover))
        .cloned()
        .collect();

    let background_down_at = |at: Duration| -> bool {
        let mut down = false;
        for event in base.events() {
            if event.at > at {
                break;
            }
            match event.kind {
                FaultKind::Crash => down = true,
                FaultKind::Recover => down = false,
                _ => {}
            }
        }
        down
    };
    let storm_down_at =
        |at: Duration| -> bool { storm.is_some_and(|(from, to)| from <= at && at < to) };

    let mut down = false;
    for at in instants {
        if at >= horizon {
            break;
        }
        let now_down = background_down_at(at) || storm_down_at(at);
        if now_down != down {
            events.push(FaultEvent {
                at,
                kind: if now_down {
                    FaultKind::Crash
                } else {
                    FaultKind::Recover
                },
            });
            down = now_down;
        }
    }
    if down {
        events.push(FaultEvent {
            at: horizon,
            kind: FaultKind::Recover,
        });
    }
    FaultPlan::new(events)
}

/// Per-provider background plan for bit `i` of `fault_mask` (empty plan
/// when the bit is clear).
fn background_plan(i: usize, fault_mask: u8, seed: u64) -> FaultPlan {
    if fault_mask & (1 << i) != 0 {
        FaultPlan::seeded(seed.wrapping_add(i as u64), HORIZON, &profile())
    } else {
        FaultPlan::none()
    }
}

/// A fresh clock plus M providers wrapped with the given per-leaf plans.
fn rig_with_plans(
    m: usize,
    mask: u8,
    plans: &[FaultPlan],
) -> (Arc<VirtualClock>, Vec<Arc<dyn Provider>>) {
    let clock = Arc::new(VirtualClock::new());
    let providers = (0..m)
        .map(|i| {
            let device = SimulatedProvider::builder(format!("p{i}"), format!("cap{i}"))
                .latency(Duration::from_millis(LATENCIES_MS[i]))
                .cost(5.0 * (i as f64 + 1.0))
                .reliability(if mask & (1 << i) != 0 { 1.0 } else { 0.0 })
                .response(vec![b'r', (i % 2) as u8])
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build();
            FaultyProvider::new(
                device,
                Arc::clone(&clock) as Arc<dyn Clock>,
                plans[i].clone(),
            ) as Arc<dyn Provider>
        })
        .collect();
    (clock, providers)
}

fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    use rand::SeedableRng;
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    StrategySampler::new(&ids).sample(&mut rand_chacha::ChaCha8Rng::seed_from_u64(seed))
}

type TraceKey = (String, String, Duration, bool, Option<Vec<u8>>, u64);

fn trace_key(outcome: &InvocationOutcome) -> TraceKey {
    (
        outcome.provider_id.clone(),
        outcome.capability.clone(),
        outcome.latency,
        outcome.success,
        outcome.payload.clone(),
        outcome.cost.to_bits(),
    )
}

fn sorted_trace(invocations: &[InvocationOutcome]) -> Vec<TraceKey> {
    let mut keys: Vec<_> = invocations.iter().map(trace_key).collect();
    keys.sort();
    keys
}

fn run_engine(
    strategy: &Strategy,
    m: usize,
    mask: u8,
    plans: &[FaultPlan],
    policy: CompletionPolicy,
) -> qce_runtime::EngineOutcome {
    let (clock, providers) = rig_with_plans(m, mask, plans);
    ExecutionEngine::new(4)
        .execute(ExecSpec {
            strategy: strategy.clone(),
            providers,
            request: Invocation::new(7, "", vec![]),
            collector: None,
            telemetry: None,
            clock: clock as Arc<dyn Clock>,
            budget: Budget::unlimited(),
            policy,
        })
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// A correlated-crash storm compiled via `merge_crash_windows` is
    /// observationally identical to independently-constructed per-leaf
    /// plans with the same group-coupled crash windows, under both
    /// completion policies.
    #[test]
    fn storm_equals_group_coupled_per_leaf_plans(
        m in 1usize..6,
        seed in any::<u64>(),
        mask in any::<u8>(),
        fault_mask in any::<u8>(),
        group_mask in any::<u8>(),
        storm_from_ms in 0u64..40,
        storm_len_ms in 1u64..40,
        quorum in 1usize..4,
    ) {
        let strategy = sampled_strategy(m, seed);
        let storm = (
            Duration::from_millis(storm_from_ms),
            Duration::from_millis(storm_from_ms + storm_len_ms),
        );

        let mut compiled_plans = Vec::with_capacity(m);
        let mut oracle_plans = Vec::with_capacity(m);
        for i in 0..m {
            let base = background_plan(i, fault_mask, seed);
            let member = group_mask & (1 << i) != 0;
            let windows: &[(Duration, Duration)] = if member { &[storm] } else { &[] };
            compiled_plans.push(merge_crash_windows(&base, windows, HORIZON));
            oracle_plans.push(oracle_merge(&base, member.then_some(storm), HORIZON));
        }

        for policy in [CompletionPolicy::FirstSuccess, CompletionPolicy::Quorum { quorum }] {
            let compiled = run_engine(&strategy, m, mask, &compiled_plans, policy);
            let oracle = run_engine(&strategy, m, mask, &oracle_plans, policy);
            let ctx = format!("strategy {strategy} policy {policy:?}");
            match (&compiled.completion, &oracle.completion) {
                (
                    Completion::First { success: a, payload: pa },
                    Completion::First { success: b, payload: pb },
                ) => {
                    prop_assert_eq!(a, b, "{}", ctx);
                    prop_assert_eq!(pa, pb, "{}", ctx);
                }
                (
                    Completion::Agreement { payload: pa, votes: va, votes_cast: ca, agreed: ga },
                    Completion::Agreement { payload: pb, votes: vb, votes_cast: cb, agreed: gb },
                ) => {
                    prop_assert_eq!(pa, pb, "{}", ctx);
                    prop_assert_eq!(va, vb, "{}", ctx);
                    prop_assert_eq!(ca, cb, "{}", ctx);
                    prop_assert_eq!(ga, gb, "{}", ctx);
                }
                _ => prop_assert!(false, "mismatched completion kinds: {}", ctx),
            }
            prop_assert_eq!(compiled.latency, oracle.latency, "{}", ctx);
            prop_assert_eq!(compiled.cost.to_bits(), oracle.cost.to_bits(), "{}", ctx);
            prop_assert_eq!(
                sorted_trace(&compiled.invocations),
                sorted_trace(&oracle.invocations),
                "{}",
                ctx
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite 2: churn mid-slot with a request in flight.
// ---------------------------------------------------------------------------

fn churn_script() -> ServiceScript {
    ServiceScript::new(
        "svc",
        vec![
            MsSpec {
                name: "slow".into(),
                capability: "cap-slow".into(),
                prior: Qos::new(1.0, 20.0, 1.0).unwrap(),
            },
            MsSpec {
                name: "fast".into(),
                capability: "cap-fast".into(),
                prior: Qos::new(50.0, 1.0, 1.0).unwrap(),
            },
        ],
        Requirements::new(100.0, 100.0, 0.9).unwrap(),
    )
}

#[test]
fn evicting_provider_mid_flight_then_rejoining_is_clean() {
    let harness = Harness::builder()
        .script(churn_script())
        .provider(
            SimulatedProvider::builder("dev/slow", "cap-slow")
                .cost(1.0)
                .latency(Duration::from_millis(20))
                .reliability(1.0),
        )
        .provider(
            SimulatedProvider::builder("dev/fast", "cap-fast")
                .cost(50.0)
                .latency(Duration::from_millis(1))
                .reliability(1.0),
        )
        .build();
    let gateway = harness.gateway();

    // Slot 0 (parallel default) observes both providers; slot 1 plans the
    // cheap slow one alone (it satisfies every requirement at 1/50th of
    // the cost).
    assert!(harness.invoke("svc").unwrap().success);
    gateway.end_slot("svc");

    let t0 = harness.clock().now();
    let result = std::thread::scope(|scope| {
        let h = &harness;
        let client = scope.spawn(move || {
            let _worker = WorkerGuard::enter(h.clock().as_ref());
            h.invoke("svc")
        });
        // Virtual time only advances once the client is asleep inside the
        // provider — i.e. the request is genuinely in flight.
        while h.clock().now() == t0 {
            std::thread::yield_now();
        }
        // The device leaves mid-flight; a second departure is a no-op.
        assert!(gateway.provider_left("dev/slow"));
        assert!(!gateway.provider_left("dev/slow"));
        client.join().expect("in-flight request must not panic")
    });
    // The in-flight request kept its provider Arc and ran to completion.
    let response = result.expect("in-flight request completes");
    assert!(response.success);

    // No worker-pool slots leaked by the departure.
    let stats = gateway.pool_stats();
    assert_eq!(stats.running, 0, "no stuck jobs: {stats:?}");

    // The next slot re-plans over the surviving provider.
    gateway.end_slot("svc");
    let response = harness.invoke("svc").unwrap();
    assert!(response.success);
    assert!(
        !response.strategy_text.contains("slow"),
        "departed provider must not be planned: {}",
        response.strategy_text
    );

    // The device re-joins next slot and serves again.
    let rejoined: Arc<dyn Provider> = Arc::clone(harness.provider("dev/slow")) as _;
    gateway.provider_joined(rejoined);
    gateway.end_slot("svc");
    assert!(harness.invoke("svc").unwrap().success);

    // Telemetry counted exactly one departure and one rejoin, despite the
    // duplicate `provider_left` call.
    let snapshot = harness.telemetry().snapshot();
    let provider = snapshot.provider("dev/slow").unwrap();
    assert_eq!(provider.departures, 1);
    assert_eq!(provider.rejoins, 1);
    let left_events = gateway
        .telemetry()
        .events()
        .iter()
        .filter(
            |e| matches!(&e.kind, EventKind::ProviderLeft { provider } if provider == "dev/slow"),
        )
        .count();
    assert_eq!(left_events, 1, "departure markers must not double-count");

    // Service eviction flushes its final stats exactly once even when
    // called twice.
    gateway.evict_service("svc");
    gateway.evict_service("svc");
    let after = harness.telemetry().snapshot();
    assert_eq!(
        after.service("svc").map(|s| s.plan_cache_stale),
        snapshot.service("svc").map(|s| s.plan_cache_stale),
        "double eviction must not re-flush final stats"
    );
}

// ---------------------------------------------------------------------------
// Satellite 3: DSL round-trip property + typed rejection of malformed JSON.
// ---------------------------------------------------------------------------

/// Builds a valid scenario from quantized primitives (all floats are
/// sixteenths, exactly representable, so equality is exact).
#[allow(clippy::too_many_arguments)]
fn build_scenario(
    seed: u64,
    slots: u32,
    slot_ms: u64,
    requests: u32,
    n_services: usize,
    n_ms: usize,
    cost_q: u32,
    lat_q: u32,
    rel_q: u32,
    mult_q: u32,
    with_load: bool,
    with_storm: bool,
    with_churn: bool,
    with_background: bool,
) -> Scenario {
    let services: Vec<ServiceDef> = (0..n_services)
        .map(|s| ServiceDef {
            name: format!("svc{s}"),
            class: None,
            microservices: (0..n_ms)
                .map(|m| MsDef {
                    name: format!("m{m}"),
                    cost: f64::from(cost_q + m as u32) / 16.0,
                    latency_ms: f64::from(lat_q + m as u32) / 16.0,
                    reliability: f64::from(rel_q.min(16)) / 16.0,
                })
                .collect(),
            require: Require {
                cost: f64::from(cost_q + 64) / 16.0 * n_ms as f64,
                latency_ms: f64::from(lat_q + 64) / 16.0 * n_ms as f64,
                reliability: 0.5,
            },
            penalty_k: (s % 2 == 0).then_some(2.5),
            quorum: None,
        })
        .collect();
    let horizon = u64::from(slots) * slot_ms;
    Scenario {
        name: "prop".to_string(),
        seed,
        slots,
        slot_ms,
        requests_per_slot: requests,
        services,
        load: if with_load {
            vec![LoadPhase {
                from_slot: 0,
                to_slot: slots,
                multiplier: f64::from(mult_q) / 16.0,
                burst: 0,
                classes: Vec::new(),
            }]
        } else {
            Vec::new()
        },
        storms: if with_storm {
            vec![Storm {
                name: "storm0".to_string(),
                group: (0..n_ms).map(|m| format!("svc0/m{m}")).collect(),
                from_ms: 0,
                to_ms: slot_ms,
            }]
        } else {
            Vec::new()
        },
        churn: if with_churn {
            vec![Churn {
                provider: "svc0/m0".to_string(),
                leave_ms: 0,
                rejoin_ms: Some(horizon),
            }]
        } else {
            Vec::new()
        },
        background: with_background.then_some(BackgroundFaults {
            mean_time_between_ms: 50,
            mean_duration_ms: 20,
            crash_weight: 1,
            latency_weight: 1,
            latency_spike_ms: 30,
        }),
        gateway: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse(serialize(s)) == s for valid scenarios.
    #[test]
    fn scenario_json_round_trips(
        seed in any::<u64>(),
        slots in 1u32..6,
        slot_ms in 1u64..500,
        requests in 0u32..50,
        n_services in 1usize..4,
        n_ms in 1usize..5,
        cost_q in 0u32..1000,
        lat_q in 0u32..1000,
        rel_q in 0u32..=16,
        mult_q in 0u32..64,
        with_load in any::<bool>(),
        with_storm in any::<bool>(),
        with_churn in any::<bool>(),
        with_background in any::<bool>(),
    ) {
        let scenario = build_scenario(
            seed, slots, slot_ms, requests, n_services, n_ms, cost_q, lat_q, rel_q, mult_q,
            with_load, with_storm, with_churn, with_background,
        );
        prop_assert!(scenario.validate().is_ok(), "fixture must be valid by construction");
        let json = scenario.to_json();
        let back = Scenario::from_json(&json).unwrap();
        prop_assert_eq!(&back, &scenario);
        // Serialization is a fixpoint: one more round trip is byte-stable.
        prop_assert_eq!(back.to_json(), json);
    }
}

#[test]
fn malformed_scenario_json_is_rejected_with_typed_errors() {
    let valid = build_scenario(1, 2, 100, 4, 1, 2, 16, 16, 16, 16, false, true, true, false);

    // Not JSON at all.
    assert!(matches!(
        Scenario::from_json("definitely { not json"),
        Err(ScenarioError::Parse { .. })
    ));
    // JSON, but not a scenario.
    assert!(matches!(
        Scenario::from_json("{\"name\": \"x\"}"),
        Err(ScenarioError::Parse { .. })
    ));

    // Structurally valid JSON failing semantic validation: every mutation
    // maps to its typed error.
    let mut s = valid.clone();
    s.storms[0].group.clear();
    assert!(matches!(
        Scenario::from_json(&s.to_json()),
        Err(ScenarioError::EmptyStormGroup { .. })
    ));

    let mut s = valid.clone();
    s.churn.push(Churn {
        provider: "svc0/m0".to_string(),
        leave_ms: 50,
        rejoin_ms: None,
    });
    assert!(matches!(
        Scenario::from_json(&s.to_json()),
        Err(ScenarioError::OverlappingChurn { .. })
    ));

    let mut s = valid.clone();
    s.storms[0].group = vec!["ghost/m9".to_string()];
    assert!(matches!(
        Scenario::from_json(&s.to_json()),
        Err(ScenarioError::UnknownProvider { .. })
    ));

    let mut s = valid.clone();
    s.storms[0].to_ms = s.storms[0].from_ms;
    assert!(matches!(
        Scenario::from_json(&s.to_json()),
        Err(ScenarioError::BadWindow { .. })
    ));

    // NaN cannot round-trip through JSON (the serializer writes null), so
    // the parse itself must fail — typed, not a panic.
    let mut s = valid;
    s.load.push(LoadPhase {
        from_slot: 0,
        to_slot: 1,
        multiplier: f64::NAN,
        burst: 0,
        classes: Vec::new(),
    });
    assert!(Scenario::from_json(&s.to_json()).is_err());
    // And the in-memory validation path reports it as non-finite.
    assert!(matches!(s.validate(), Err(ScenarioError::NonFinite { .. })));
}

// ---------------------------------------------------------------------------
// End-to-end smoke: a storm scenario replays deterministically twice.
// ---------------------------------------------------------------------------

#[test]
fn storm_scenario_replays_identically() {
    let scenario = Scenario {
        name: "storm-replay".to_string(),
        seed: 99,
        slots: 6,
        slot_ms: 100,
        requests_per_slot: 10,
        load: Vec::new(),
        services: vec![ServiceDef {
            name: "svc".to_string(),
            class: None,
            microservices: vec![
                MsDef {
                    name: "a".to_string(),
                    cost: 10.0,
                    latency_ms: 2.0,
                    reliability: 0.9,
                },
                MsDef {
                    name: "b".to_string(),
                    cost: 20.0,
                    latency_ms: 4.0,
                    reliability: 0.95,
                },
            ],
            require: Require {
                cost: 100.0,
                latency_ms: 50.0,
                reliability: 0.85,
            },
            penalty_k: None,
            quorum: None,
        }],
        storms: vec![Storm {
            name: "radio".to_string(),
            group: vec!["svc/a".to_string(), "svc/b".to_string()],
            from_ms: 200,
            to_ms: 300,
        }],
        churn: Vec::new(),
        background: None,
        gateway: Default::default(),
    };
    let a = qce_runtime::scenario::run_scenario(&scenario)
        .unwrap()
        .outcome;
    let b = qce_runtime::scenario::run_scenario(&scenario)
        .unwrap()
        .outcome;
    assert_eq!(a, b, "same scenario, same seed, same outcome");
    assert_eq!(a.per_slot[2].satisfaction_rate, 0.0, "blackout slot");
    let lags = a.adaptation_lags(0.8);
    assert!(
        matches!(lags[0].1, Some(lag) if lag <= 1),
        "recovery within a slot of the storm clearing: {lags:?}"
    );
    // Shed never happened; failures only inside the storm window.
    assert_eq!(a.total_shed, 0);
}

// Keep the unused-import lint honest: RuntimeError appears in match arms of
// helper closures only on some code paths.
#[allow(dead_code)]
fn _uses(err: RuntimeError) -> String {
    err.to_string()
}

//! Integration tests for the sharded gateway fleet: consistent-hash
//! routing end to end, cross-shard plan-cache sharing, provider replay
//! onto joining shards, and clean eviction with work in flight.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use qce_runtime::fleet::{FleetConfig, GatewayFleet};
use qce_runtime::{
    Clock, FnProvider, GatewayConfig, InMemoryMarket, Market, MsSpec, Request, RuntimeError,
    ServiceScript, SimulatedProvider, VirtualClock,
};
use qce_strategy::{PlanSource, Qos, Requirements};

/// A service over `arms` equivalent microservices with shared capability
/// names (`cap0`, `cap1`, …), so every service resolves to the same
/// fleet-registered providers.
fn script(service: &str, arms: usize) -> ServiceScript {
    ServiceScript::new(
        service,
        (0..arms)
            .map(|i| MsSpec {
                name: format!("m{i}"),
                capability: format!("cap{i}"),
                prior: Qos::new(50.0, 2.0 + i as f64, 0.9).unwrap(),
            })
            .collect(),
        Requirements::new(1000.0, 1000.0, 0.5).unwrap(),
    )
}

fn backend(services: &[&str], arms: usize) -> Arc<dyn Market> {
    let market = InMemoryMarket::new();
    for service in services {
        market.publish(script(service, arms)).unwrap();
    }
    Arc::new(market)
}

fn fleet_with(
    services: &[&str],
    arms: usize,
    config: FleetConfig,
) -> (Arc<VirtualClock>, GatewayFleet) {
    let clock = Arc::new(VirtualClock::new());
    let fleet = GatewayFleet::with_clock(
        backend(services, arms),
        config,
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    for i in 0..arms {
        fleet.register(
            SimulatedProvider::builder(format!("dev{i}"), format!("cap{i}"))
                .cost(10.0)
                .latency(Duration::from_millis(1 + i as u64))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
    }
    (clock, fleet)
}

#[test]
fn fleet_routes_stably_and_serves_every_service() {
    let services: Vec<String> = (0..12).map(|i| format!("svc-{i}")).collect();
    let names: Vec<&str> = services.iter().map(String::as_str).collect();
    let (_clock, fleet) = fleet_with(&names, 2, FleetConfig::default());
    assert_eq!(fleet.shard_ids(), vec![0, 1, 2, 3]);

    let owners: Vec<u32> = names.iter().map(|s| fleet.route(s).unwrap()).collect();
    for (service, &owner) in names.iter().zip(&owners) {
        let response = fleet.submit(Request::new(*service)).unwrap();
        assert!(response.success);
        // The responding shard is the routed one: its engine served the
        // request, so its market front fetched the script.
        assert_eq!(fleet.route(service), Some(owner));
    }
    // With 12 services over 4 shards and 64 vnodes, more than one shard
    // ends up owning something.
    let mut distinct = owners.clone();
    distinct.sort_unstable();
    distinct.dedup();
    assert!(distinct.len() > 1, "all services landed on one shard");

    // Each script was fetched exactly once, through the owning shard's
    // TTL front (misses), and never twice (no hits needed yet).
    let stats = fleet.stats();
    assert_eq!(stats.market.misses, 12);
    assert_eq!(stats.market.expired, 0);
    assert_eq!(stats.shards, 4);
}

/// The cross-shard economics the fleet exists for: a plan synthesized on
/// one shard is served warm — attributed as a *remote* hit — to an
/// identically-shaped search on another shard.
#[test]
fn plans_synthesized_on_one_shard_hit_remotely_on_another() {
    let services: Vec<String> = (0..16).map(|i| format!("svc-{i}")).collect();
    let names: Vec<&str> = services.iter().map(String::as_str).collect();
    let config = FleetConfig::default().gateway(GatewayConfig::builder().plan_cache(true).build());
    let (_clock, fleet) = fleet_with(&names, 2, config);

    // Two identically-scripted services owned by *different* shards.
    let a = names[0];
    let b = *names
        .iter()
        .find(|s| fleet.route(s) != fleet.route(a))
        .expect("16 services over 4 shards span more than one shard");
    assert_ne!(fleet.route(a), fleet.route(b));

    // Slot 0 on both: the default strategy gathers identical observations
    // (same providers, same latencies, one submission each).
    assert!(fleet.submit(Request::new(a)).unwrap().success);
    assert!(fleet.submit(Request::new(b)).unwrap().success);
    fleet.end_slot(a);
    fleet.end_slot(b);

    // Slot 1 on `a` synthesizes and stores the plan; slot 1 on `b`
    // searches with the same key (same script shape, same requirement,
    // same observed environment) and must hit `a`'s entry remotely.
    assert!(fleet.submit(Request::new(a)).unwrap().success);
    let before = fleet.stats().plan_cache;
    assert_eq!(before.misses, 1, "a's slot-1 search was the first lookup");
    assert!(fleet.submit(Request::new(b)).unwrap().success);
    let after = fleet.stats().plan_cache;
    assert_eq!(after.hits, before.hits + 1);
    assert_eq!(
        after.remote_hits,
        before.remote_hits + 1,
        "b's hit came from a's shard and must be attributed as remote"
    );

    // The owning shard's telemetry agrees: b's slot was replanned from
    // the cache.
    let owner = fleet.shard(fleet.route(b).unwrap()).unwrap();
    let snapshot = owner.gateway().telemetry().snapshot();
    let source = snapshot
        .recent_events
        .iter()
        .filter_map(|event| match &event.kind {
            qce_runtime::EventKind::SlotReplanned {
                service, source, ..
            } if service == b => Some(*source),
            _ => None,
        })
        .next_back()
        .flatten();
    assert_eq!(source, Some(PlanSource::Cached));
}

/// Providers registered before a shard joins are replayed onto it, so
/// services the ring moves to the newcomer still find their devices.
#[test]
fn joining_shard_receives_replayed_providers_and_serves_moved_services() {
    let services: Vec<String> = (0..24).map(|i| format!("svc-{i}")).collect();
    let names: Vec<&str> = services.iter().map(String::as_str).collect();
    let config = FleetConfig::default().shards(1);
    let (_clock, fleet) = fleet_with(&names, 2, config);
    assert!(names.iter().all(|s| fleet.route(s) == Some(0)));

    let joiner = fleet.add_shard();
    let moved: Vec<&str> = names
        .iter()
        .copied()
        .filter(|s| fleet.route(s) == Some(joiner))
        .collect();
    assert!(
        !moved.is_empty(),
        "24 services over 2 shards leave the joiner empty"
    );
    for service in moved {
        let response = fleet.submit(Request::new(service)).unwrap();
        assert!(response.success, "moved service failed on the joiner");
    }
}

/// Evicting a shard with a request still running on it must resolve that
/// request (success or `Shutdown` — never a panic or a hang), and the
/// service must immediately be servable by a surviving shard.
#[test]
fn evicted_shard_resolves_in_flight_requests_and_survivors_take_over() {
    let services: Vec<String> = (0..8).map(|i| format!("svc-{i}")).collect();
    let names: Vec<&str> = services.iter().map(String::as_str).collect();
    let clock = Arc::new(VirtualClock::new());
    let fleet = Arc::new(GatewayFleet::with_clock(
        backend(&names, 1),
        FleetConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));

    // A blocking provider the test holds at the gate, so the request is
    // guaranteed in flight when the shard is evicted.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let entered = Arc::new((Mutex::new(0u32), Condvar::new()));
    {
        let gate = Arc::clone(&gate);
        let entered = Arc::clone(&entered);
        fleet.register(FnProvider::new("dev0", "cap0", 10.0, move |_| {
            {
                let (count, cond) = &*entered;
                *count.lock().unwrap() += 1;
                cond.notify_all();
            }
            let (open, cond) = &*gate;
            let mut open = open.lock().unwrap();
            while !*open {
                open = cond.wait(open).unwrap();
            }
            Ok(vec![1])
        }));
    }

    let service = names[0];
    let victim = fleet.route(service).unwrap();
    let handle = fleet.submit_async(Request::new(service)).unwrap();
    {
        let (count, cond) = &*entered;
        let mut count = count.lock().unwrap();
        while *count < 1 {
            count = cond.wait(count).unwrap();
        }
    }

    // Evict on a helper thread: dropping the shard's gateway joins its
    // event loops, which blocks until the gated leaf finishes.
    let evictor = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || fleet.remove_shard(victim))
    };
    {
        let (open, cond) = &*gate;
        *open.lock().unwrap() = true;
        cond.notify_all();
    }
    assert!(evictor.join().expect("eviction must not panic"));
    assert!(!fleet.shard_ids().contains(&victim));

    match handle.wait() {
        Ok(response) => assert!(response.success),
        Err(RuntimeError::Shutdown) => {}
        Err(other) => panic!("unexpected error from an eviction race: {other:?}"),
    }

    // The ring re-homed the service; a survivor serves it.
    let new_owner = fleet.route(service).unwrap();
    assert_ne!(new_owner, victim);
    let response = fleet.submit(Request::new(service)).unwrap();
    assert!(response.success);
}

/// An empty fleet sheds cleanly instead of panicking.
#[test]
fn empty_fleet_rejects_submissions() {
    let clock = Arc::new(VirtualClock::new());
    let fleet = GatewayFleet::with_clock(
        backend(&["svc"], 1),
        FleetConfig::default().shards(0),
        Arc::clone(&clock) as Arc<dyn Clock>,
    );
    assert_eq!(fleet.route("svc"), None);
    assert!(matches!(
        fleet.submit(Request::new("svc")),
        Err(RuntimeError::Market { .. })
    ));
}

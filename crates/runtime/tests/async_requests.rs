//! Integration tests for the asynchronous submission path
//! ([`Gateway::submit_async`]): panic isolation of the event loops and
//! shutdown behaviour when the gateway drops with work in flight.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use qce_runtime::{
    Clock, FnProvider, Gateway, GatewayConfig, InMemoryMarket, Market, MsSpec, Request,
    RuntimeError, ServiceScript, SimulatedProvider, VirtualClock,
};
use qce_strategy::{Qos, Requirements};

/// Blocks providers until the test releases them, counting entries.
struct Gate {
    state: Mutex<(bool, u32)>,
    cond: Condvar,
}

impl Gate {
    fn new() -> Arc<Self> {
        Arc::new(Gate {
            state: Mutex::new((false, 0)),
            cond: Condvar::new(),
        })
    }

    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 += 1;
        self.cond.notify_all();
        while !state.0 {
            state = self.cond.wait(state).unwrap();
        }
    }

    fn await_entered(&self, n: u32) {
        let mut state = self.state.lock().unwrap();
        while state.1 < n {
            state = self.cond.wait(state).unwrap();
        }
    }

    fn open(&self) {
        let mut state = self.state.lock().unwrap();
        state.0 = true;
        self.cond.notify_all();
    }
}

fn script(service: &str, arms: usize) -> ServiceScript {
    ServiceScript::new(
        service,
        (0..arms)
            .map(|i| MsSpec {
                name: format!("m{i}"),
                capability: format!("{service}-cap{i}"),
                prior: Qos::new(50.0, 2.0 + i as f64, 0.9).unwrap(),
            })
            .collect(),
        Requirements::new(1000.0, 1000.0, 0.5).unwrap(),
    )
}

fn market_with(scripts: Vec<ServiceScript>) -> Box<dyn Market> {
    let market = InMemoryMarket::new();
    for script in scripts {
        market.publish(script).unwrap();
    }
    Box::new(market)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A provider panicking inside one arm of the first slot's parallel
    /// default must resume its panic on the thread that collects the
    /// handle — never on the event loop. The loop stays healthy: a
    /// sibling request already in flight and a request submitted *after*
    /// the panic both complete normally.
    #[test]
    fn panicking_par_arm_resumes_on_the_collector_not_the_event_loop(
        arms in 2usize..4,
        bad_seed in any::<u64>(),
    ) {
        let bad = (bad_seed as usize) % arms;
        let clock = Arc::new(VirtualClock::new());
        let gateway = Arc::new(Gateway::with_clock(
            market_with(vec![script("svc", arms), script("ok", 1)]),
            GatewayConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        for i in 0..arms {
            if i == bad {
                // No clock binding: the panicking arm takes the blocking
                // path through the worker pool.
                gateway.registry().register(FnProvider::new(
                    format!("dev{i}"),
                    format!("svc-cap{i}"),
                    10.0,
                    |_| panic!("boom: provider exploded"),
                ));
            } else {
                gateway.registry().register(
                    SimulatedProvider::builder(format!("dev{i}"), format!("svc-cap{i}"))
                        .cost(10.0)
                        .latency(Duration::from_millis(1 + i as u64))
                        .reliability(1.0)
                        .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                        .build(),
                );
            }
        }
        gateway.registry().register(
            SimulatedProvider::builder("dev-ok", "ok-cap0")
                .cost(10.0)
                .latency(Duration::from_millis(1))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );

        let sibling = gateway.submit_async(Request::new("ok")).unwrap();
        let doomed = gateway.submit_async(Request::new("svc")).unwrap();
        let panic = catch_unwind(AssertUnwindSafe(|| doomed.wait()))
            .expect_err("the provider panic must resume on the collector");
        let message = panic
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        prop_assert!(message.contains("boom"), "unexpected payload: {message}");

        // The sibling in flight during the panic and a fresh request after
        // it both resolve: the event loop was not poisoned.
        prop_assert!(sibling.wait().unwrap().success);
        let after = gateway.submit_async(Request::new("ok")).unwrap();
        prop_assert!(after.wait().unwrap().success);
    }
}

/// Bugfix regression: dropping the gateway while a blocking leaf is still
/// running on the worker pool used to panic the leaf's pool task
/// (`expect("engine outlives its walk")`). The race must resolve cleanly
/// whichever side wins: the handle resolves (success or `Shutdown`), the
/// drop completes, nothing panics or hangs.
#[test]
fn gateway_drop_races_a_blocking_leaf_without_panicking() {
    for _ in 0..25 {
        let clock = Arc::new(VirtualClock::new());
        let gateway = Arc::new(Gateway::with_clock(
            market_with(vec![script("svc", 1)]),
            GatewayConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let gate = Gate::new();
        let provider_gate = Arc::clone(&gate);
        gateway
            .registry()
            .register(FnProvider::new("dev0", "svc-cap0", 10.0, move |_| {
                provider_gate.enter();
                Ok(vec![1])
            }));
        let handle = gateway.submit_async(Request::new("svc")).unwrap();
        gate.await_entered(1);
        // The dropper blocks joining the pool until the gate opens, so the
        // leaf is guaranteed to still be running when shutdown begins.
        let dropper = std::thread::spawn(move || drop(gateway));
        gate.open();
        dropper.join().expect("gateway drop must not panic");
        match handle.wait() {
            Ok(response) => assert!(response.success),
            Err(RuntimeError::Shutdown) => {}
            Err(other) => panic!("unexpected error from a shutdown race: {other:?}"),
        }
    }
}

/// Bugfix audit (handle-leak sweep): a `RequestHandle` dropped without
/// `wait()` must not leak engine state. The handle is detached from the
/// request — the event core still drives the request to completion and
/// must then release its frames and clock registrations even though
/// nobody collects the response. 10³ dropped handles later, the core
/// drains to zero and a fresh request still completes.
#[test]
fn dropped_handles_do_not_leak_frames_or_clock_slots() {
    use qce_runtime::WorkerGuard;

    let clock = Arc::new(VirtualClock::new());
    let gateway = Arc::new(Gateway::with_clock(
        market_with(vec![script("svc", 1)]),
        GatewayConfig::default(),
        Arc::clone(&clock) as Arc<dyn Clock>,
    ));
    gateway.registry().register(
        SimulatedProvider::builder("dev0", "svc-cap0")
            .cost(10.0)
            .latency(Duration::from_millis(1))
            .reliability(1.0)
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build(),
    );

    // Pin virtual time during submission so every request is admitted at
    // t = 0 with the same 1 ms completion deadline; timers then fire in
    // submission order, so the last handle is a drain barrier for all the
    // dropped ones.
    let last = {
        let _pin = WorkerGuard::enter(&*clock);
        for _ in 0..1_000 {
            drop(gateway.submit_async(Request::new("svc")).unwrap());
        }
        gateway.submit_async(Request::new("svc")).unwrap()
    };
    let response = last.wait().unwrap();
    assert!(response.success);

    // Resolving the barrier handle may race the core's cleanup of that
    // final request by a beat; everything *dropped* must already be gone.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = gateway.engine_stats();
        if stats.in_flight == 0 && stats.frames_live == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine did not drain after dropped handles: {stats:?}"
        );
        std::thread::yield_now();
    }

    // The loops are still healthy: a request submitted after the flood
    // resolves normally.
    let after = gateway.submit_async(Request::new("svc")).unwrap();
    assert!(after.wait().unwrap().success);
    let stats = gateway.engine_stats();
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.frames_live, 0);
}

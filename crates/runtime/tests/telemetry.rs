//! Integration tests for the gateway telemetry layer and the slot-planning
//! concurrency fixes: exact-count accounting over a multi-slot virtual-time
//! run, and regression tests showing one service's slow script fetch or
//! slot re-plan no longer blocks other services.

use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use qce_runtime::{
    EventKind, Gateway, GatewayConfig, Harness, InMemoryMarket, Market, MsSpec, Request,
    RuntimeError, ServiceScript, SimulatedProvider, StrategyOrigin,
};
use qce_strategy::{Qos, Requirements};

fn spec(name: &str, capability: &str, latency: f64) -> MsSpec {
    MsSpec {
        name: name.into(),
        capability: capability.into(),
        prior: Qos::new(50.0, latency, 0.7).unwrap(),
    }
}

fn three_ms_script(service_id: &str, slot_size: u32) -> ServiceScript {
    let mut script = ServiceScript::new(
        service_id,
        vec![
            spec("m0", "c0", 5.0),
            spec("m1", "c1", 8.0),
            spec("m2", "c2", 12.0),
        ],
        Requirements::new(200.0, 100.0, 0.5).unwrap(),
    );
    script.slot_size = slot_size;
    script
}

fn three_devices() -> Vec<(&'static str, &'static str, u64)> {
    vec![("d0/c0", "c0", 2), ("d1/c1", "c1", 3), ("d2/c2", "c2", 5)]
}

fn harness(script: ServiceScript) -> Harness {
    let mut builder = Harness::builder().script(script);
    for (id, cap, ms) in three_devices() {
        builder = builder.provider(
            SimulatedProvider::builder(id, cap)
                .latency(Duration::from_millis(ms))
                .reliability(1.0)
                .cost(50.0),
        );
    }
    builder.build()
}

/// The acceptance scenario: a deterministic multi-slot virtual-time run
/// whose telemetry must agree exactly with the gateway's `slot_history`
/// and with the device-side ground-truth counters.
#[test]
fn snapshot_matches_slot_history_exactly() {
    let h = harness(three_ms_script("svc", 4));
    for _ in 0..12 {
        assert!(h.invoke("svc").unwrap().success);
    }

    let snapshot = h.telemetry().snapshot();
    let svc = snapshot.service("svc").expect("service was invoked");
    assert_eq!(svc.invocations, 12);
    assert_eq!(svc.successes, 12);
    assert_eq!(svc.replans, 3, "slots 0, 1 and 2 each planned once");
    assert_eq!(svc.plan_failures, 0);
    assert_eq!(svc.latency_ms.count, 12);
    assert_eq!(svc.cost.count, 12);

    // Every SlotReplanned event lines up, in order, with a slot_history
    // record: same slot, same strategy text, and the generator's
    // SynthesisReport numbers only for searched (non-default) slots.
    let history = h.gateway().slot_history("svc");
    assert_eq!(history.len(), 3);
    let events = h.telemetry().events();
    let replans: Vec<(u64, String, u64)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::SlotReplanned {
                service,
                slot,
                strategy,
                candidates_seen,
                ..
            } if service == "svc" => Some((*slot, strategy.clone(), *candidates_seen)),
            _ => None,
        })
        .collect();
    assert_eq!(replans.len(), history.len());
    for (record, (slot, strategy, seen)) in history.iter().zip(&replans) {
        assert_eq!(record.slot, *slot);
        assert_eq!(record.strategy_text, *strategy);
        if matches!(record.origin, StrategyOrigin::Default) {
            assert_eq!(*seen, 0, "the default strategy is not searched");
        } else {
            assert!(*seen > 0, "generated slots report search effort");
        }
    }

    // Strategy-switch events reproduce exactly the transitions visible in
    // the history.
    let expected_switches: Vec<(String, String)> = history
        .windows(2)
        .filter(|w| w[0].strategy_text != w[1].strategy_text)
        .map(|w| (w[0].strategy_text.clone(), w[1].strategy_text.clone()))
        .collect();
    assert!(
        !expected_switches.is_empty(),
        "slot 1 must abandon the parallel default"
    );
    let switches: Vec<(String, String)> = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::StrategySwitched {
                service, from, to, ..
            } if service == "svc" => Some((from.clone(), to.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(switches, expected_switches);
    assert_eq!(svc.strategy_switches as usize, expected_switches.len());

    // Event timestamps come from the shared virtual clock and never go
    // backwards.
    assert!(events
        .windows(2)
        .all(|w| w[0].at <= w[1].at && w[0].seq < w[1].seq));

    // Per-provider telemetry equals the device-side ground truth.
    for (id, _, _) in three_devices() {
        let device = h.provider(id).invocations();
        let counted = snapshot.provider(id).map_or(0, |p| p.invocations);
        assert_eq!(counted, device, "telemetry vs device counter for {id}");
    }
    // Slot 0's parallel default hit every device once per invocation.
    assert!(snapshot.provider("d0/c0").unwrap().invocations >= 4);
    assert_eq!(
        snapshot.market.fetches, 1,
        "script fetched once, then cached"
    );
}

#[test]
fn quorum_votes_flow_into_telemetry() {
    let mut script = three_ms_script("svc", 4);
    script.quorum = Some(2);
    let h = harness(script);
    let response = h.invoke("svc").unwrap();
    let (agreed, cast) = response.votes.expect("quorum execution reports votes");
    let snapshot = h.telemetry().snapshot();
    let svc = snapshot.service("svc").unwrap();
    assert_eq!(svc.quorum_votes_agreed, agreed as u64);
    assert_eq!(svc.quorum_votes_cast, cast as u64);
}

/// A two-phase turnstile: the blocked side parks in `enter` until the test
/// calls `release`; the test waits in `wait_entered` until the blocked side
/// has actually arrived.
#[derive(Default)]
struct Gate {
    state: Mutex<(bool, bool)>, // (entered, released)
    cv: Condvar,
}

impl Gate {
    fn enter(&self) {
        let mut state = self.state.lock().unwrap();
        state.0 = true;
        self.cv.notify_all();
        while !state.1 {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn wait_entered(&self) {
        let mut state = self.state.lock().unwrap();
        while !state.0 {
            state = self.cv.wait(state).unwrap();
        }
    }

    fn release(&self) {
        self.state.lock().unwrap().1 = true;
        self.cv.notify_all();
    }
}

/// A market whose fetch of one service blocks on a [`Gate`] — a stand-in
/// for a slow cloud round-trip.
struct GateMarket {
    inner: InMemoryMarket,
    slow_service: String,
    gate: Arc<Gate>,
}

impl Market for GateMarket {
    fn fetch(&self, service_id: &str) -> Result<ServiceScript, RuntimeError> {
        if service_id == self.slow_service {
            self.gate.enter();
        }
        self.inner.fetch(service_id)
    }

    fn service_ids(&self) -> Vec<String> {
        self.inner.service_ids()
    }
}

/// Runs `invoke(service_id)` on its own thread and asserts it completes
/// within a generous timeout — i.e. it was not serialized behind another
/// service's in-flight work.
fn assert_invoke_completes(gateway: &Arc<Gateway>, service_id: &str) {
    let (done_tx, done_rx) = mpsc::channel();
    let gateway = Arc::clone(gateway);
    let service_id = service_id.to_string();
    thread::spawn(move || {
        let response = gateway.submit(Request::new(&service_id));
        done_tx.send(response).unwrap();
    });
    let response = done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("the other service must proceed, not queue behind the blocked one");
    assert!(response.unwrap().success);
}

/// Regression (head-of-line blocking): while service A's script fetch is
/// stuck on a slow market, service B must still be served. Before the
/// per-service state cells, the fetch ran under the one global service
/// map lock and this test deadlocked.
#[test]
fn service_b_is_served_while_service_a_fetch_blocks() {
    let inner = InMemoryMarket::new();
    inner.publish(three_ms_script("slow", 4)).unwrap();
    inner.publish(three_ms_script("fast", 4)).unwrap();
    let gate = Arc::new(Gate::default());
    let market = GateMarket {
        inner,
        slow_service: "slow".into(),
        gate: Arc::clone(&gate),
    };
    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));
    for (id, cap, _) in three_devices() {
        gateway.registry().register(
            SimulatedProvider::builder(id, cap)
                .reliability(1.0)
                .cost(50.0)
                .build(),
        );
    }

    let blocked = {
        let gateway = Arc::clone(&gateway);
        thread::spawn(move || gateway.submit(Request::new("slow")))
    };
    gate.wait_entered();

    assert_invoke_completes(&gateway, "fast");

    gate.release();
    assert!(blocked.join().unwrap().unwrap().success);
}

/// Regression (head-of-line blocking): while service A is re-planning at a
/// slot boundary, service B must still be served. The telemetry sink fires
/// inside A's per-service critical section, so parking there holds exactly
/// the lock the old code shared across all services.
#[test]
fn service_b_is_served_during_service_a_replan() {
    let market = InMemoryMarket::new();
    market.publish(three_ms_script("a", 1)).unwrap();
    market.publish(three_ms_script("b", 4)).unwrap();
    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));
    for (id, cap, _) in three_devices() {
        gateway.registry().register(
            SimulatedProvider::builder(id, cap)
                .reliability(1.0)
                .cost(50.0)
                .build(),
        );
    }

    let gate = Arc::new(Gate::default());
    let sink_gate = Arc::clone(&gate);
    gateway.telemetry().set_sink(move |event| {
        if let EventKind::SlotReplanned { service, slot, .. } = &event.kind {
            if service == "a" && *slot == 1 {
                sink_gate.enter();
            }
        }
    });

    assert!(gateway.submit(Request::new("a")).unwrap().success); // slot 0 planned
    let blocked = {
        let gateway = Arc::clone(&gateway);
        // slot_size is 1, so this invocation re-plans (slot 1) and parks in
        // the sink while holding service A's state lock.
        thread::spawn(move || gateway.submit(Request::new("a")))
    };
    gate.wait_entered();

    assert_invoke_completes(&gateway, "b");

    gate.release();
    let response = blocked.join().unwrap().unwrap();
    assert_eq!(response.slot, 1);
    gateway.telemetry().clear_sink();
}

/// The `--trace` building block: a sink sees every event exactly once, in
/// order, even events that overflow the bounded ring.
#[test]
fn sink_streams_every_event_in_order() {
    // Tiny ring: most events are evicted.
    let config = GatewayConfig::builder().telemetry_events(2).build();
    let market = InMemoryMarket::new();
    market.publish(three_ms_script("svc", 1)).unwrap();
    let clock = Arc::new(qce_runtime::VirtualClock::new());
    let gateway = Arc::new(Gateway::with_clock(
        Box::new(market),
        config,
        Arc::clone(&clock) as Arc<dyn qce_runtime::Clock>,
    ));
    let seen = Arc::new(Mutex::new(Vec::new()));
    let sink_seen = Arc::clone(&seen);
    gateway.telemetry().set_sink(move |event| {
        sink_seen.lock().unwrap().push(event.seq);
    });
    for (id, cap, ms) in three_devices() {
        gateway.registry().register(
            SimulatedProvider::builder(id, cap)
                .latency(Duration::from_millis(ms))
                .reliability(1.0)
                .cost(50.0)
                .clock(Arc::clone(&clock) as Arc<dyn qce_runtime::Clock>)
                .build(),
        );
    }
    for _ in 0..6 {
        gateway.submit(Request::new("svc")).unwrap();
    }
    let seen = seen.lock().unwrap();
    let expected: Vec<u64> = (0..seen.len() as u64).collect();
    assert_eq!(*seen, expected, "gapless, ordered event stream");
    let snapshot = gateway.telemetry().snapshot();
    assert_eq!(snapshot.events.emitted, seen.len() as u64);
    assert!(snapshot.events.dropped > 0, "the tiny ring overflowed");
    assert_eq!(snapshot.recent_events.len(), 2);
}

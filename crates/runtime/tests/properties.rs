//! Property-based tests for the runtime: the estimator's reliability
//! invariant, and reproducibility of seeded fault injection.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qce_runtime::{
    execute_strategy_with_clock, Clock, FaultPlan, FaultProfile, FaultyProvider, Invocation,
    Provider, SimulatedProvider, VirtualClock,
};
use qce_strategy::enumerate::StrategySampler;
use qce_strategy::estimate::estimate;
use qce_strategy::{EnvQos, MsId, Qos, Strategy};

/// Draws a uniformly random strategy over `m` microservices from a seed.
fn sampled_strategy(m: usize, seed: u64) -> Strategy {
    let ids: Vec<MsId> = (0..m).map(MsId).collect();
    let sampler = StrategySampler::new(&ids);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    sampler.sample(&mut rng)
}

/// Random environment with `m` microservices; QoS drawn from a seed.
fn random_env(m: usize, seed: u64) -> EnvQos {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            Qos::new(
                rng.gen_range(1.0..300.0),
                rng.gen_range(1.0..300.0),
                rng.gen_range(0.05..0.99),
            )
            .expect("values in domain")
        })
        .collect()
}

/// Executes a fail-over pair — a seeded-faulty primary and a healthy
/// backup — over 30 virtual time steps, returning the full observable
/// trace.
fn faulty_failover_trace(seed: u64) -> Vec<(bool, Duration, Option<Vec<u8>>)> {
    let clock = Arc::new(VirtualClock::new());
    let primary = FaultyProvider::new(
        SimulatedProvider::builder("a", "cap")
            .latency(Duration::from_millis(2))
            .response(vec![1])
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build(),
        Arc::clone(&clock) as Arc<dyn Clock>,
        FaultPlan::seeded(seed, Duration::from_millis(300), &FaultProfile::default()),
    );
    let backup = SimulatedProvider::builder("b", "cap")
        .latency(Duration::from_millis(4))
        .response(vec![2])
        .clock(Arc::clone(&clock) as Arc<dyn Clock>)
        .build();
    let providers: Vec<Arc<dyn Provider>> = vec![primary, backup];
    let strategy = Strategy::parse("a-b").expect("valid strategy");
    (0..30)
        .map(|i| {
            let out = execute_strategy_with_clock(
                &strategy,
                &providers,
                &Invocation::new(i, "svc", vec![]),
                None,
                &*clock,
            )
            .expect("providers resolve");
            clock.advance(Duration::from_millis(10));
            (out.success, out.latency, out.payload)
        })
        .collect()
}

proptest! {
    /// Algorithm 1's reliability estimate for *any* strategy shape is
    /// `1 - Π(1 - r_m)` over its leaf set: every microservice gets tried
    /// before the strategy fails, whatever the mix of `-` and `*`.
    #[test]
    fn estimated_reliability_is_one_minus_product_of_leaf_failures(
        m in 1usize..7,
        seed in any::<u64>(),
        env_seed in any::<u64>(),
    ) {
        let strategy = sampled_strategy(m, seed);
        let env = random_env(m, env_seed);
        let estimated = estimate(&strategy, &env).expect("env covers the leaves");
        let expected = 1.0
            - strategy
                .leaves()
                .iter()
                .map(|id| env.get(*id).expect("env entry").reliability.failure_probability())
                .product::<f64>();
        prop_assert!(
            (estimated.reliability.value() - expected).abs() < 1e-9,
            "estimated {} vs leaf product {expected}",
            estimated.reliability.value(),
        );
    }

    /// The same `(seed, horizon, profile)` always draws the same fault
    /// schedule, and its windows never overlap.
    #[test]
    fn same_seed_draws_the_same_fault_plan(seed in any::<u64>(), horizon_ms in 1u64..3000) {
        let profile = FaultProfile::default();
        let horizon = Duration::from_millis(horizon_ms);
        let a = FaultPlan::seeded(seed, horizon, &profile);
        let b = FaultPlan::seeded(seed, horizon, &profile);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    /// Twin rigs under the same seeded misfortune produce identical
    /// executor traces — success, latency, and payload all match step for
    /// step, so any failure reproduces from its seed alone.
    #[test]
    fn same_seed_yields_identical_executor_outcomes(seed in any::<u64>()) {
        prop_assert_eq!(faulty_failover_trace(seed), faulty_failover_trace(seed));
    }
}

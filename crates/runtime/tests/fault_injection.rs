//! Fault-injection tests: devices leaving, going offline, overload, and
//! market outages — the "unreliable and dynamic resources" the system is
//! built for.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    Gateway, GatewayConfig, InMemoryMarket, Market, MsSpec, Request, RuntimeError, ServiceScript,
    SimulatedProvider,
};
use qce_strategy::{Qos, Requirements};

fn script(slot_size: u32, names: &[&str]) -> ServiceScript {
    let mut s = ServiceScript::new(
        "svc",
        names
            .iter()
            .map(|name| MsSpec {
                name: (*name).to_string(),
                capability: format!("cap-{name}"),
                prior: Qos::new(20.0, 5.0, 0.8).unwrap(),
            })
            .collect(),
        Requirements::new(100.0, 100.0, 0.9).unwrap(),
    );
    s.slot_size = slot_size;
    s
}

fn provider(name: &str, reliability: f64, ms: u64) -> Arc<SimulatedProvider> {
    SimulatedProvider::builder(format!("dev/{name}"), format!("cap-{name}"))
        .cost(20.0)
        .latency(Duration::from_millis(ms))
        .reliability(reliability)
        .seed(1)
        .build()
}

#[test]
fn offline_device_is_routed_around_by_the_strategy() {
    let market = InMemoryMarket::new();
    market.publish(script(20, &["x", "y"])).unwrap();
    let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
    let x = provider("x", 1.0, 2);
    gateway.registry().register(Arc::clone(&x) as _);
    gateway.registry().register(provider("y", 1.0, 6));

    // Healthy warm-up.
    for _ in 0..20 {
        assert!(gateway.submit(Request::new("svc")).unwrap().success);
    }
    // x's device goes dark: invocations fail instantly, but the equivalent
    // microservice y keeps the service alive within the same request.
    x.set_online(false);
    let mut ok = 0;
    for _ in 0..20 {
        if gateway.submit(Request::new("svc")).unwrap().success {
            ok += 1;
        }
    }
    assert_eq!(ok, 20, "fail-over to y keeps every request alive");
    // Force the slot to turn over so the generator sees the failures.
    gateway.end_slot("svc");
    gateway.submit(Request::new("svc")).unwrap();
    let strategy = gateway.current_strategy("svc").unwrap();
    assert!(
        !strategy.starts_with('x'),
        "offline device should not lead: {strategy}"
    );
}

#[test]
fn departed_device_fails_planning_until_replacement_registers() {
    let market = InMemoryMarket::new();
    market.publish(script(5, &["x"])).unwrap();
    let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
    gateway.registry().register(provider("x", 1.0, 1));
    assert!(gateway.submit(Request::new("svc")).unwrap().success);

    // The only provider for the capability leaves the environment.
    assert!(gateway.registry().deregister("dev/x"));
    gateway.end_slot("svc");
    assert!(matches!(
        gateway.submit(Request::new("svc")),
        Err(RuntimeError::NoProvider { .. })
    ));

    // A replacement shows up; planning succeeds again.
    gateway.registry().register(provider("x", 1.0, 1));
    assert!(gateway.submit(Request::new("svc")).unwrap().success);
}

#[test]
fn market_outage_after_first_fetch_is_invisible() {
    /// A market that can be switched off.
    struct FlakyMarket {
        inner: InMemoryMarket,
        up: AtomicBool,
    }
    impl Market for FlakyMarket {
        fn fetch(&self, id: &str) -> Result<ServiceScript, RuntimeError> {
            if self.up.load(Ordering::SeqCst) {
                self.inner.fetch(id)
            } else {
                Err(RuntimeError::Market {
                    reason: "cloud unreachable".to_string(),
                })
            }
        }
        fn service_ids(&self) -> Vec<String> {
            self.inner.service_ids()
        }
    }

    let inner = InMemoryMarket::new();
    inner.publish(script(5, &["x"])).unwrap();
    let market = Arc::new(FlakyMarket {
        inner,
        up: AtomicBool::new(true),
    });
    struct Shared(Arc<FlakyMarket>);
    impl Market for Shared {
        fn fetch(&self, id: &str) -> Result<ServiceScript, RuntimeError> {
            self.0.fetch(id)
        }
        fn service_ids(&self) -> Vec<String> {
            self.0.service_ids()
        }
    }
    let gateway = Gateway::new(
        Box::new(Shared(Arc::clone(&market))),
        GatewayConfig::default(),
    );
    gateway.registry().register(provider("x", 1.0, 1));

    // First request downloads the script.
    assert!(gateway.submit(Request::new("svc")).unwrap().success);
    // The cloud goes away — the edge keeps working from its local cache
    // ("the request can be processed entirely within the edge's local
    // environment", Section IV.A).
    market.up.store(false, Ordering::SeqCst);
    for _ in 0..12 {
        assert!(gateway.submit(Request::new("svc")).unwrap().success);
    }
    // A *new* service, however, cannot be provisioned during the outage.
    assert!(matches!(
        gateway.submit(Request::new("other")),
        Err(RuntimeError::Market { .. })
    ));
}

#[test]
fn overloaded_provider_degrades_gracefully() {
    let market = InMemoryMarket::new();
    market.publish(script(1000, &["x", "y"])).unwrap();
    let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));
    // x is better but has a single slot; y is slower but unlimited.
    gateway.registry().register(
        SimulatedProvider::builder("dev/x", "cap-x")
            .cost(20.0)
            .latency(Duration::from_millis(20))
            .capacity(1)
            .build(),
    );
    gateway.registry().register(provider("y", 1.0, 8));

    // Four concurrent clients: only one fits on x at a time; the rest
    // fall over to y inside the same request.
    let successes: Vec<bool> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gw = Arc::clone(&gateway);
                scope.spawn(move || (0..5).all(|_| gw.submit(Request::new("svc")).unwrap().success))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(
        successes.iter().all(|&ok| ok),
        "equivalents absorb the overload: {successes:?}"
    );
}

#[test]
fn all_devices_failing_reports_failure_not_error() {
    let market = InMemoryMarket::new();
    market.publish(script(10, &["x", "y"])).unwrap();
    let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
    let x = provider("x", 0.0, 1);
    let y = provider("y", 0.0, 1);
    gateway.registry().register(x as _);
    gateway.registry().register(y as _);
    let response = gateway.submit(Request::new("svc")).unwrap();
    assert!(!response.success);
    assert!(response.payload.is_none());
    assert_eq!(response.cost, 40.0, "both tried, both charged");
}

//! Deterministic virtual-time integration tests: the whole runtime —
//! executor, quorum voting, gateway feedback loop, fault injection — runs
//! on a shared [`VirtualClock`], so latency assertions are exact equalities
//! and simulated seconds cost real microseconds.

use std::sync::Arc;
use std::time::Duration;

use qce_runtime::{
    execute_strategy_with_clock, execute_with_quorum_clock, Clock, FaultEvent, FaultKind,
    FaultPlan, FaultyProvider, GatewayConfig, Harness, Invocation, MsSpec, Provider, ServiceScript,
    SimulatedProvider, VirtualClock,
};
use qce_strategy::{Qos, Requirements, Strategy};

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn req() -> Invocation {
    Invocation::new(1, "svc", vec![])
}

/// A provider on `clock` with fixed latency/reliability/cost.
fn provider(
    clock: &Arc<VirtualClock>,
    id: &str,
    latency: Duration,
    reliability: f64,
    cost: f64,
) -> Arc<SimulatedProvider> {
    SimulatedProvider::builder(id, id)
        .latency(latency)
        .reliability(reliability)
        .cost(cost)
        .clock(Arc::clone(clock) as Arc<dyn Clock>)
        .build()
}

/// A single-microservice script with lenient requirements.
fn one_ms_script(service_id: &str, slot_size: u32) -> ServiceScript {
    let mut script = ServiceScript::new(
        service_id,
        vec![MsSpec {
            name: "m".into(),
            capability: "cap".into(),
            prior: Qos::new(50.0, 5.0, 0.9).unwrap(),
        }],
        Requirements::new(500.0, 500.0, 0.5).unwrap(),
    );
    script.slot_size = slot_size;
    script
}

#[test]
fn failover_latency_is_exact() {
    // a (10 ms) always fails, b (5 ms) succeeds: the fail-over chain pays
    // both latencies back to back and both costs.
    let clock = Arc::new(VirtualClock::new());
    let providers: Vec<Arc<dyn Provider>> = vec![
        provider(&clock, "a", ms(10), 0.0, 10.0),
        provider(&clock, "b", ms(5), 1.0, 20.0),
    ];
    let out = execute_strategy_with_clock(
        &Strategy::parse("a-b").unwrap(),
        &providers,
        &req(),
        None,
        &*clock,
    )
    .unwrap();
    assert!(out.success);
    assert_eq!(out.latency, ms(15), "10 ms failure + 5 ms backup");
    assert_eq!(out.cost, 30.0);
    assert_eq!(clock.now(), ms(15));
}

#[test]
fn speculative_winner_defines_latency() {
    // a*b races a 500 ms loser against a 2 ms winner: the response latency
    // is the winner's, even though the executor joins the loser (which
    // completes at 500 ms virtual) before returning.
    let clock = Arc::new(VirtualClock::new());
    let providers: Vec<Arc<dyn Provider>> = vec![
        provider(&clock, "a", ms(500), 1.0, 10.0),
        provider(&clock, "b", ms(2), 1.0, 20.0),
    ];
    let out = execute_strategy_with_clock(
        &Strategy::parse("a*b").unwrap(),
        &providers,
        &req(),
        None,
        &*clock,
    )
    .unwrap();
    assert!(out.success);
    assert_eq!(out.latency, ms(2), "first success wins");
    assert_eq!(out.cost, 30.0, "both started — both charged");
    assert_eq!(out.invocations.len(), 2, "the loser still completes");
    assert_eq!(clock.now(), ms(500), "the join waited for the loser");
}

#[test]
fn short_circuit_cancels_unstarted_backup() {
    // (a-b)*c: by the time a's slow failure (30 ms) would fall through to
    // b, c has already won (2 ms) — b must never start or be charged.
    let clock = Arc::new(VirtualClock::new());
    let providers: Vec<Arc<dyn Provider>> = vec![
        provider(&clock, "a", ms(30), 0.0, 10.0),
        provider(&clock, "b", ms(1), 1.0, 99.0),
        provider(&clock, "c", ms(2), 1.0, 20.0),
    ];
    let out = execute_strategy_with_clock(
        &Strategy::parse("(a-b)*c").unwrap(),
        &providers,
        &req(),
        None,
        &*clock,
    )
    .unwrap();
    assert!(out.success);
    assert_eq!(out.latency, ms(2));
    assert_eq!(out.cost, 30.0, "b was cancelled before starting");
    assert!(out.invocations.iter().all(|i| i.provider_id != "b"));
    assert_eq!(clock.now(), ms(30), "a's failure still ran to completion");
}

#[test]
fn total_failure_latency_spans_the_chain() {
    let clock = Arc::new(VirtualClock::new());
    let providers: Vec<Arc<dyn Provider>> = vec![
        provider(&clock, "a", ms(10), 0.0, 10.0),
        provider(&clock, "b", ms(5), 0.0, 20.0),
    ];
    let out = execute_strategy_with_clock(
        &Strategy::parse("a-b").unwrap(),
        &providers,
        &req(),
        None,
        &*clock,
    )
    .unwrap();
    assert!(!out.success);
    assert!(out.payload.is_none());
    assert_eq!(out.latency, ms(15), "failure latency covers every attempt");
    assert_eq!(out.cost, 30.0);
}

#[test]
fn quorum_outvotes_a_byzantine_provider() {
    // Two honest sensors and one compromised device racing in parallel:
    // with q = 2 the honest answer reaches quorum when the second honest
    // device completes at 3 ms.
    let clock = Arc::new(VirtualClock::new());
    let honest = |id: &str, latency| {
        SimulatedProvider::builder(id, "temp")
            .latency(latency)
            .response(vec![21])
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build()
    };
    let liar = FaultyProvider::new(
        honest("b", ms(2)),
        Arc::clone(&clock) as Arc<dyn Clock>,
        FaultPlan::new(vec![FaultEvent {
            at: Duration::ZERO,
            kind: FaultKind::Byzantine(vec![99]),
        }]),
    );
    let providers: Vec<Arc<dyn Provider>> = vec![honest("a", ms(1)), liar, honest("c", ms(3))];
    let out = execute_with_quorum_clock(
        &Strategy::parse("a*b*c").unwrap(),
        &providers,
        &req(),
        None,
        2,
        &*clock,
    )
    .unwrap();
    assert!(out.agreed);
    assert_eq!(out.payload, Some(vec![21]), "the liar is outvoted");
    assert_eq!(out.votes, 2);
    assert_eq!(out.votes_cast, 3, "the byzantine result still voted");
    assert_eq!(out.latency, ms(3), "quorum reached at the second honest");
}

#[test]
fn gateway_replans_around_a_crashed_provider() {
    // The cheap provider is crashed from the start; slot 0 keeps failing
    // on it, and the slot-1 re-plan routes the capability to the healthy
    // backup (Assumption 1 on collector data).
    let h = Harness::builder()
        .script(one_ms_script("svc", 3))
        .faulty(
            SimulatedProvider::builder("a/cap", "cap")
                .latency(ms(1))
                .cost(10.0),
            FaultPlan::new(vec![FaultEvent {
                at: Duration::ZERO,
                kind: FaultKind::Crash,
            }]),
        )
        .provider(
            SimulatedProvider::builder("b/cap", "cap")
                .latency(ms(5))
                .cost(50.0),
        )
        .build();

    for _ in 0..3 {
        let response = h.invoke("svc").unwrap();
        assert!(!response.success, "slot 0 rides the crashed provider");
        assert_eq!(response.slot, 0);
    }
    let response = h.invoke("svc").unwrap();
    assert_eq!(response.slot, 1);
    assert!(response.success, "slot 1 re-planned onto the backup");
    assert_eq!(response.latency, ms(5), "served by the 5 ms backup");
    assert_eq!(h.provider("b/cap").invocations(), 1);
    assert_eq!(
        h.provider("a/cap").invocations(),
        0,
        "crashes fail before reaching the device"
    );
}

#[test]
fn collector_window_evicts_stale_observations() {
    // Five failures fill the window; five later successes push them out, so
    // the windowed success rate recovers to 1.0 (not 0.5).
    let h = Harness::builder()
        .script(one_ms_script("svc", 1000))
        .config(GatewayConfig::builder().collector_window(5).build())
        .provider(
            SimulatedProvider::builder("d/cap", "cap")
                .latency(Duration::ZERO)
                .reliability(0.0),
        )
        .build();

    for _ in 0..5 {
        assert!(!h.invoke("svc").unwrap().success);
    }
    h.provider("d/cap").set_reliability(1.0);
    for _ in 0..5 {
        assert!(h.invoke("svc").unwrap().success);
    }
    let collector = h.gateway().collector();
    assert_eq!(collector.observation_count("d/cap"), 5, "window is capped");
    let stats = collector.stats("d/cap").unwrap();
    assert_eq!(stats.success_rate, 1.0, "old failures were evicted");
}

#[test]
fn crash_flap_follows_the_fault_plan() {
    // crash @5, recover @10, crash @15, recover @20: stepping the clock
    // through the windows flips availability exactly on schedule.
    let plan = FaultPlan::new(vec![
        FaultEvent {
            at: ms(5),
            kind: FaultKind::Crash,
        },
        FaultEvent {
            at: ms(10),
            kind: FaultKind::Recover,
        },
        FaultEvent {
            at: ms(15),
            kind: FaultKind::Crash,
        },
        FaultEvent {
            at: ms(20),
            kind: FaultKind::Recover,
        },
    ]);
    let h = Harness::builder()
        .script(one_ms_script("svc", 1000))
        .faulty(
            SimulatedProvider::builder("d/cap", "cap").latency(Duration::ZERO),
            plan,
        )
        .build();

    let mut successes = Vec::new();
    for _ in 0..5 {
        successes.push(h.invoke("svc").unwrap().success);
        h.clock().advance(ms(5)); // 0 → 5 → 10 → 15 → 20
    }
    assert_eq!(
        successes,
        vec![true, false, true, false, true],
        "availability flips at each scheduled window edge"
    );
}

#[test]
fn latency_fault_delays_the_response_exactly() {
    let h = Harness::builder()
        .script(one_ms_script("svc", 1000))
        .faulty(
            SimulatedProvider::builder("d/cap", "cap").latency(ms(2)),
            FaultPlan::new(vec![FaultEvent {
                at: Duration::ZERO,
                kind: FaultKind::AddLatency(ms(30)),
            }]),
        )
        .build();
    let response = h.invoke("svc").unwrap();
    assert!(response.success);
    assert_eq!(response.latency, ms(32), "30 ms spike + 2 ms service time");
    assert_eq!(h.clock().now(), ms(32));
}

#[test]
fn harness_serves_the_temperature_service() {
    // The paper's two-capability temperature service, wired in one
    // expression: the slot-0 default strategy races both microservices and
    // the faster one defines the latency.
    let script = ServiceScript::new(
        "detect-temperature",
        vec![
            MsSpec {
                name: "readTempSensor".into(),
                capability: "read-temp".into(),
                prior: Qos::new(50.0, 5.0, 0.7).unwrap(),
            },
            MsSpec {
                name: "estTemp".into(),
                capability: "est-temp".into(),
                prior: Qos::new(50.0, 8.0, 0.7).unwrap(),
            },
        ],
        Requirements::new(150.0, 100.0, 0.9).unwrap(),
    );
    let h = Harness::builder()
        .script(script)
        .provider(
            SimulatedProvider::builder("pi/read-temp", "read-temp")
                .latency(ms(2))
                .cost(50.0),
        )
        .provider(
            SimulatedProvider::builder("m92p/est-temp", "est-temp")
                .latency(ms(15))
                .cost(50.0),
        )
        .build();
    let response = h.invoke("detect-temperature").unwrap();
    assert!(response.success);
    assert_eq!(response.strategy_text, "readTempSensor*estTemp");
    assert_eq!(response.latency, ms(2), "the sensor wins the race");
    assert_eq!(response.cost, 100.0, "both speculative branches charged");
    assert_eq!(h.clock().now(), ms(15), "the loser finished at 15 ms");
}

#[test]
fn virtual_sleep_costs_no_real_time() {
    // Five virtual seconds of loser latency must not cost five real
    // seconds. (Test-side wall timing only; the runtime itself never reads
    // Instant::now outside WallClock.)
    let wall_start = std::time::Instant::now();
    let clock = Arc::new(VirtualClock::new());
    let providers: Vec<Arc<dyn Provider>> = vec![
        provider(&clock, "a", Duration::from_secs(5), 1.0, 10.0),
        provider(&clock, "b", ms(1), 1.0, 20.0),
    ];
    let out = execute_strategy_with_clock(
        &Strategy::parse("a*b").unwrap(),
        &providers,
        &req(),
        None,
        &*clock,
    )
    .unwrap();
    assert!(out.success);
    assert_eq!(clock.now(), Duration::from_secs(5));
    assert!(
        wall_start.elapsed() < Duration::from_secs(2),
        "virtual seconds must not sleep for real"
    );
}

#[test]
fn twin_rigs_with_the_same_seed_agree() {
    // Two independently built harnesses under the same seeded fault plan
    // observe the exact same success sequence: a failing run names its
    // misfortune reproducibly.
    let run = || {
        let plan = FaultPlan::seeded(42, Duration::from_secs(1), &Default::default());
        let h = Harness::builder()
            .script(one_ms_script("svc", 1000))
            .faulty(
                SimulatedProvider::builder("d/cap", "cap").latency(Duration::ZERO),
                plan,
            )
            .build();
        (0..100)
            .map(|_| {
                let success = h.invoke("svc").unwrap().success;
                h.clock().advance(ms(10));
                success
            })
            .collect::<Vec<bool>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert!(
        first.iter().any(|&s| !s) && first.iter().any(|&s| s),
        "the default profile produces both fault windows and healthy gaps"
    );
}

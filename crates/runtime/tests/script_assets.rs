//! The committed sample script asset stays loadable: guards the script
//! wire format against accidental breaking changes.

use qce_runtime::ServiceScript;

fn asset_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../assets/detect-fire.script.json")
}

#[test]
fn sample_script_parses_and_validates() {
    let json = std::fs::read_to_string(asset_path()).expect("asset exists");
    let script = ServiceScript::from_json(&json).expect("asset is a valid script");
    assert_eq!(script.service_id, "detect-fire");
    assert_eq!(script.microservices.len(), 5);
    assert_eq!(script.slot_size, 100);
    assert_eq!(script.quorum, None);
    let strategy = script
        .parsed_default_strategy()
        .expect("default strategy parses")
        .expect("a default strategy is pinned");
    assert!(strategy.is_failover());
    assert_eq!(strategy.len(), 5);
}

#[test]
fn sample_script_round_trips_losslessly() {
    let json = std::fs::read_to_string(asset_path()).unwrap();
    let script = ServiceScript::from_json(&json).unwrap();
    let reserialized = script.to_json();
    let reparsed = ServiceScript::from_json(&reserialized).unwrap();
    assert_eq!(script, reparsed);
}

#[test]
fn sample_script_priors_match_the_papers_example() {
    // The asset encodes the Section III.D fire-detection QoS table.
    let json = std::fs::read_to_string(asset_path()).unwrap();
    let script = ServiceScript::from_json(&json).unwrap();
    let expected = [
        (50.0, 0.6),
        (100.0, 0.6),
        (150.0, 0.7),
        (200.0, 0.7),
        (250.0, 0.8),
    ];
    for (spec, (cost, reliability)) in script.microservices.iter().zip(expected) {
        assert_eq!(spec.prior.cost, cost);
        assert_eq!(spec.prior.reliability.value(), reliability);
    }
}

//! # qce-runtime
//!
//! The MOLE-extended edge gateway runtime of *"Win with What You Have:
//! QoS-Consistent Edge Services with Unreliable and Dynamic Resources"*
//! (Song & Tilevich, ICDCS 2020), Section IV.
//!
//! The runtime provisions edge services out of *equivalent microservices*
//! hosted on unreliable devices, and keeps their QoS consistent with a
//! feedback loop:
//!
//! ```text
//!  client ──ServiceID──▶ Gateway ──script──▶ Market (cloud, cached locally)
//!                          │
//!            ┌─ collector ─┤ (records per-provider QoS)
//!            │             │
//!            └▶ generator ─┤ (re-plans the strategy each time slot)
//!                          ▼
//!                   strategy executor ──invocations──▶ edge devices
//! ```
//!
//! * [`ServiceScript`] / [`Market`] — self-describing scripts downloaded
//!   from the cloud and cached at the gateway;
//! * [`Provider`] / [`Registry`] — devices register the microservices they
//!   host; the gateway picks the best provider per capability
//!   (Assumption 1);
//! * [`Collector`] — windowed per-provider QoS statistics;
//! * [`execute_strategy`] — threaded execution with fail-over, speculative
//!   parallelism, global short-circuit, and Assumption-2 cost accounting;
//! * [`execute_with_quorum`] — the paper's future-work extension: require
//!   `q` agreeing results to outvote malicious devices;
//! * [`Gateway`] — ties it all together with per-time-slot strategy
//!   regeneration; [`Client`] adds the Section IV.C advisory protocol;
//! * [`scenario`] — the adversarial scenario suite: a declarative DSL for
//!   trace-driven workloads (load curves, correlated failure storms,
//!   device churn), compiled to fault plans and replayed deterministically
//!   on virtual time.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use qce_runtime::{
//!     Client, Gateway, GatewayConfig, InMemoryMarket, MsSpec, ServiceScript,
//!     SimulatedProvider,
//! };
//! use qce_strategy::{Qos, Requirements};
//!
//! // 1. Publish a service script to the market.
//! let market = InMemoryMarket::new();
//! market.publish(ServiceScript::new(
//!     "detect-temperature",
//!     vec![
//!         MsSpec { name: "readTempSensor".into(), capability: "read-temp".into(),
//!                  prior: Qos::new(50.0, 5.0, 0.7)? },
//!         MsSpec { name: "estTemp".into(), capability: "est-temp".into(),
//!                  prior: Qos::new(50.0, 8.0, 0.7)? },
//!     ],
//!     Requirements::new(150.0, 100.0, 0.9)?,
//! ))?;
//!
//! // 2. Stand up the gateway and register device-hosted microservices.
//! let gateway = Arc::new(Gateway::new(Box::new(market), GatewayConfig::default()));
//! gateway.registry().register(
//!     SimulatedProvider::builder("pi/read-temp", "read-temp")
//!         .latency(Duration::from_millis(2)).reliability(0.9).cost(50.0).build());
//! gateway.registry().register(
//!     SimulatedProvider::builder("desktop/est-temp", "est-temp")
//!         .latency(Duration::from_millis(3)).reliability(0.9).cost(50.0).build());
//!
//! // 3. Invoke: slot 0 runs the default strategy; later slots adapt.
//! let client = Client::new(gateway);
//! let response = client.invoke("detect-temperature")?;
//! println!("strategy {} -> success={}", response.strategy_text, response.success);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod client;
pub mod clock;
pub mod collector;
pub mod device;
pub mod engine;
pub mod executor;
pub mod fault;
pub mod fleet;
pub mod gateway;
pub mod generator;
pub mod harness;
pub mod market;
pub mod message;
pub mod pipeline;
pub mod quorum;
pub mod registry;
pub mod request;
pub mod scenario;
pub mod script;
pub mod telemetry;

pub use client::{AdvisoryPolicy, Client, ClientError, QosRejected};
pub use clock::{Clock, VirtualClock, WallClock, WorkerGuard};
pub use collector::{Collector, ExecutionRecord, ProviderStats};
pub use device::{FnProvider, Provider, SimulatedProvider, SimulatedProviderBuilder};
pub use engine::{
    Budget, Completion, CompletionPolicy, EngineOutcome, EngineStats, ExecSpec, ExecutionEngine,
    PoolStats, PruneDetail, PruneReason,
};
pub use executor::{
    execute_strategy, execute_strategy_instrumented, execute_strategy_with_clock, ServiceOutcome,
};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultProfile, FaultyProvider};
pub use fleet::{FleetConfig, FleetStats, GatewayFleet, GatewayShard, ServiceRouter, ShardStats};
pub use gateway::{
    Gateway, GatewayConfig, GatewayConfigBuilder, GatewayControl, QosAdvisory, RequestHandle,
    ServiceResponse, SlotRecord,
};
pub use generator::{
    assumed_env, env_drift, plan_slot, Planner, SlotPlan, StrategyOrigin, SynthesisSettings,
};
pub use harness::{Harness, HarnessBuilder};
pub use market::{CachingMarket, FileMarket, InMemoryMarket, Market, MarketCacheStats, TtlMarket};
pub use message::{Invocation, InvocationOutcome, InvokeError, RuntimeError};
pub use pipeline::{invoke_pipeline, PipelineResponse};
pub use qce_strategy::SynthesisReport;
pub use quorum::{
    execute_with_quorum, execute_with_quorum_clock, execute_with_quorum_instrumented, QuorumOutcome,
};
pub use registry::Registry;
pub use request::{QosClass, Request, CLASS_COUNT};
pub use script::{MsSpec, ServiceScript};
pub use telemetry::{
    ClassSnapshot, EventKind, EventRingSnapshot, HistogramBucket, HistogramSnapshot,
    MarketSnapshot, MetricsSnapshot, ProviderSnapshot, ServiceSnapshot, Telemetry, TelemetryEvent,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Gateway>();
        assert_send_sync::<Client>();
        assert_send_sync::<Collector>();
        assert_send_sync::<Registry>();
        assert_send_sync::<ServiceScript>();
        assert_send_sync::<InMemoryMarket>();
        assert_send_sync::<ServiceResponse>();
    }
}

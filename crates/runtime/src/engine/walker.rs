//! The single Seq/Par strategy walker shared by first-success and quorum
//! execution, with pluggable parallel-leg spawning.
//!
//! The walk itself is policy-agnostic: leaves invoke providers and report
//! successes to the [`PolicyState`]; Seq chains stop early per the policy;
//! Par nodes fan their children out through a [`LegSpawner`]. Two spawners
//! exist:
//!
//! * [`ScopedSpawner`] — `std::thread::scope`, one OS thread per leg,
//!   byte-for-byte the pre-engine executor/quorum behaviour. Used by the
//!   borrowing [`execute_scoped`](super::execute_scoped) entry point.
//! * [`OwnedExec`] — legs run as `'static` jobs on the engine's bounded
//!   [`WorkerPool`](super::pool::WorkerPool), re-deriving their node from
//!   the owned strategy via a child-index path. Used by
//!   [`ExecutionEngine::execute`](super::ExecutionEngine::execute).
//!
//! Both spawners follow the same virtual-clock discipline as the original
//! executors: reserve one worker slot per spawned leg *before* it is
//! scheduled, adopt the slot on the leg's thread, run the first leg inline
//! on the parent, and join under a passive mark so the clock can advance
//! while the parent blocks. The slot of the last leg to finish *while the
//! parent is parked* is handed to the parent rather than released by the
//! leg (see [`SlotHandoff`] and the advance-protocol notes in
//! [`crate::clock`]), so virtual time cannot skip past the parent's
//! continuation while it is still parked. Leg panics are caught and
//! re-raised on the parent — inline leg first, then spawned legs in
//! order.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError, Weak};
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::{Node, Strategy};

use crate::clock::Clock;
use crate::collector::{Collector, ExecutionRecord};
use crate::device::Provider;
use crate::message::{Invocation, InvocationOutcome};
use crate::telemetry::Telemetry;

use super::budget::Budget;
use super::policy::PolicyState;
use super::pool::WorkerPool;

/// Per-subtree walk status (identical to the pre-engine executor's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeStatus {
    /// At least one microservice in the subtree succeeded.
    Succeeded,
    /// Every started microservice failed and nothing remains to try.
    Failed,
    /// The subtree stopped before starting all its legs: the policy
    /// halted the walk, or the budget was cancelled / its deadline passed.
    Cancelled,
}

/// Everything a leg needs to run, borrowed for the leg's lifetime.
pub(crate) struct Ctx<'a> {
    pub providers: &'a [Arc<dyn Provider>],
    pub request: &'a Invocation,
    pub collector: Option<&'a Collector>,
    pub telemetry: Option<&'a Telemetry>,
    pub clock: &'a dyn Clock,
    pub budget: &'a Budget,
    pub started_at: Duration,
    pub policy: &'a PolicyState,
    pub invocations: &'a Mutex<Vec<InvocationOutcome>>,
    /// First budget-prune reason observed during the walk, for reporting.
    pub pruned: &'a Mutex<Option<super::PruneDetail>>,
    pub spawn: &'a dyn LegSpawner,
}

impl Ctx<'_> {
    /// The global stop check, applied before starting any leg: the policy
    /// has halted the walk, or the budget prunes. A budget prune is
    /// recorded (first reason wins) so the engine can report it.
    fn stopped(&self) -> bool {
        if self.policy.halted() {
            return true;
        }
        if let Some(detail) = self.budget.prune_detail(self.clock) {
            let mut pruned = self.pruned.lock();
            if pruned.is_none() {
                *pruned = Some(detail);
            }
            return true;
        }
        false
    }
}

/// How a Par node runs its children. `path` is the child-index path of the
/// Par node itself within the strategy tree; implementations return one
/// status per child, in child order.
pub(crate) trait LegSpawner: Sync {
    fn run_par(&self, ctx: &Ctx<'_>, children: &[Node], path: &[usize]) -> Vec<NodeStatus>;
}

/// Unwraps a parallel child's result, resuming its panic on the parent
/// thread instead of masking it as a failure.
fn propagate(result: std::thread::Result<NodeStatus>) -> NodeStatus {
    result.unwrap_or_else(|panic| resume_unwind(panic))
}

/// The walker: one node, any policy, any spawner.
pub(crate) fn run_node(node: &Node, path: &[usize], ctx: &Ctx<'_>) -> NodeStatus {
    match node {
        Node::Leaf(id) => {
            // The short-circuit: once the policy halts (strategy won /
            // quorum met) or the budget trips, new invocations never start
            // (and are never charged).
            if ctx.stopped() {
                return NodeStatus::Cancelled;
            }
            let provider = &ctx.providers[id.index()];
            let t0 = ctx.clock.now();
            let result = provider.invoke(ctx.request);
            let latency = ctx.clock.now().saturating_sub(t0);
            let success = result.is_ok();
            let outcome = InvocationOutcome {
                provider_id: provider.id().to_string(),
                capability: provider.capability().to_string(),
                payload: result.as_ref().ok().cloned(),
                latency,
                cost: provider.cost(),
                success,
            };
            if let Some(collector) = ctx.collector {
                collector.record(
                    provider.id(),
                    ExecutionRecord {
                        success,
                        latency,
                        cost: provider.cost(),
                    },
                );
            }
            if let Some(telemetry) = ctx.telemetry {
                telemetry.record_invocation(provider.id(), success, latency, provider.cost());
            }
            ctx.invocations.lock().push(outcome);
            match result {
                Ok(payload) => {
                    let at = ctx.clock.now().saturating_sub(ctx.started_at);
                    ctx.policy.on_success(payload, at);
                    NodeStatus::Succeeded
                }
                Err(_) => NodeStatus::Failed,
            }
        }
        Node::Seq(children) => {
            for (i, child) in children.iter().enumerate() {
                // Re-check the stop condition between sequential legs: a
                // leaf leg would notice on its own, but a parallel leg
                // reserves worker slots and spawns threads before any of
                // its leaves looks at the flag — pure overhead once the
                // walk has stopped (in-flight legs are still charged in
                // full per Assumption 2; this only stops legs that have
                // not started).
                if ctx.stopped() {
                    return NodeStatus::Cancelled;
                }
                let mut child_path = path.to_vec();
                child_path.push(i);
                match run_node(child, &child_path, ctx) {
                    // Under first-success semantics a succeeding fail-over
                    // leg absorbs the chain; under quorum every stage still
                    // runs so it can contribute votes.
                    NodeStatus::Succeeded if ctx.policy.seq_absorbs_success() => {
                        return NodeStatus::Succeeded
                    }
                    NodeStatus::Cancelled => return NodeStatus::Cancelled,
                    NodeStatus::Succeeded | NodeStatus::Failed => {}
                }
            }
            NodeStatus::Failed
        }
        Node::Par(children) => {
            let statuses = ctx.spawn.run_par(ctx, children, path);
            if statuses.contains(&NodeStatus::Succeeded) {
                NodeStatus::Succeeded
            } else if statuses.contains(&NodeStatus::Cancelled) {
                NodeStatus::Cancelled
            } else {
                NodeStatus::Failed
            }
        }
    }
}

/// Coordinates the worker-slot handoff between a `Par` node's spawned
/// legs and the joining parent.
///
/// The hazard: once the parent is passively parked, the *last* leg
/// releasing its own slot opens a window — legs done, parent notified but
/// not yet rescheduled — in which `worker_sleepers + parked >= workers`
/// holds spuriously and virtual time skips past the parent's pending
/// continuation (e.g. a quorum decides before a Seq's next leg starts).
/// So a leg that finishes last *while the parent is parked* keeps its
/// slot counted and the parent releases it after `exit_passive`, once it
/// is demonstrably running again. A leg that finishes while the parent is
/// still active (running the inline first child, possibly asleep) must
/// release its own slot instead, or that sleep could never advance time.
/// Both decisions and the parent's park transition share one mutex, so
/// they cannot interleave.
struct SlotHandoff {
    state: StdMutex<HandoffState>,
}

struct HandoffState {
    outstanding: usize,
    parent_parked: bool,
    kept: bool,
}

impl SlotHandoff {
    fn new(legs: usize) -> Self {
        SlotHandoff {
            state: StdMutex::new(HandoffState {
                outstanding: legs,
                parent_parked: false,
                kept: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HandoffState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A leg finished (slot already unbound): true if the leg releases its
    /// own slot, false if it leaves the slot to the parked parent.
    fn leg_done(&self) -> bool {
        let mut state = self.lock();
        state.outstanding -= 1;
        if state.outstanding == 0 && state.parent_parked {
            state.kept = true;
            false
        } else {
            true
        }
    }

    /// The parent is about to wait: marks it parked unless every leg has
    /// already finished (in which case parking would be the very window
    /// this type exists to close).
    fn park_parent(&self) -> bool {
        let mut state = self.lock();
        if state.outstanding == 0 {
            false
        } else {
            state.parent_parked = true;
            true
        }
    }

    /// After the wait: whether the last leg left its slot for the parent
    /// to release.
    fn take_kept(&self) -> bool {
        let mut state = self.lock();
        state.parent_parked = false;
        std::mem::replace(&mut state.kept, false)
    }
}

/// RAII for one spawned leg's worker slot: binds the calling thread to
/// the slot its parent reserved; on drop — panic or not — unbinds and
/// settles the handoff (see [`SlotHandoff`]).
struct LegSlot<'a> {
    clock: &'a dyn Clock,
    handoff: &'a SlotHandoff,
}

impl<'a> LegSlot<'a> {
    fn adopt(clock: &'a dyn Clock, handoff: &'a SlotHandoff) -> Self {
        clock.adopt_worker();
        LegSlot { clock, handoff }
    }
}

impl Drop for LegSlot<'_> {
    fn drop(&mut self) {
        self.clock.disown_worker();
        if self.handoff.leg_done() {
            self.clock.release_worker();
        }
    }
}

/// One scoped OS thread per spawned leg — the pre-engine behaviour.
pub(crate) struct ScopedSpawner;

impl LegSpawner for ScopedSpawner {
    fn run_par(&self, ctx: &Ctx<'_>, children: &[Node], path: &[usize]) -> Vec<NodeStatus> {
        let spawned = children.len() - 1;
        let handoff = SlotHandoff::new(spawned);
        std::thread::scope(|scope| {
            // Reserve the spawned children's worker slots *before*
            // spawning, so a virtual clock never advances while a child
            // is scheduled but not yet running; each child binds its
            // own thread to a slot when it starts.
            for _ in 0..spawned {
                ctx.clock.reserve_worker();
            }
            let handles: Vec<_> = children
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, child)| {
                    let mut child_path = path.to_vec();
                    child_path.push(i);
                    let handoff = &handoff;
                    scope.spawn(move || {
                        // The drop side runs even if the child panics, or
                        // the clock counts a phantom worker forever.
                        let _slot = LegSlot::adopt(ctx.clock, handoff);
                        run_node(child, &child_path, ctx)
                    })
                })
                .collect();
            // Run the first child on the current thread: a Par of n
            // children needs only n − 1 extra threads. Catch its panic
            // so the spawned children still get joined first.
            let mut first_path = path.to_vec();
            first_path.push(0);
            let first = catch_unwind(AssertUnwindSafe(|| {
                run_node(&children[0], &first_path, ctx)
            }));
            // Joining is a passive wait: losers may still be mid-sleep.
            // (If every leg already finished, the joins return without
            // blocking on anything virtual-time-dependent and parking
            // would itself open the spurious-advance window.)
            let parked = handoff.park_parent();
            if parked {
                ctx.clock.enter_passive();
            }
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            if parked {
                ctx.clock.exit_passive();
            }
            if handoff.take_kept() {
                // The last leg handed its slot to us (see SlotHandoff).
                ctx.clock.release_worker();
            }
            // Child panics propagate to the caller instead of being
            // masked as ordinary microservice failures.
            let mut statuses = vec![propagate(first)];
            statuses.extend(joined.into_iter().map(propagate));
            statuses
        })
    }
}

/// Completion rendezvous for pooled legs: slot results plus a count of
/// outstanding legs the parent waits on.
struct LegJoin {
    state: StdMutex<JoinState>,
    done: Condvar,
}

struct JoinState {
    remaining: usize,
    results: Vec<Option<std::thread::Result<NodeStatus>>>,
}

impl LegJoin {
    fn new(legs: usize) -> Self {
        LegJoin {
            state: StdMutex::new(JoinState {
                remaining: legs,
                results: (0..legs).map(|_| None).collect(),
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, slot: usize, result: std::thread::Result<NodeStatus>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.results[slot] = Some(result);
        state.remaining -= 1;
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Vec<std::thread::Result<NodeStatus>> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while state.remaining > 0 {
            state = self
                .done
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state
            .results
            .iter_mut()
            .map(|slot| slot.take().expect("every leg completed"))
            .collect()
    }
}

/// The owned execution state behind [`ExecutionEngine::execute`]
/// (`super`): everything a `'static` pooled leg needs, shared via `Arc`.
/// Doubles as the pooled [`LegSpawner`].
pub(crate) struct OwnedExec {
    pub strategy: Strategy,
    pub providers: Vec<Arc<dyn Provider>>,
    pub request: Invocation,
    pub collector: Option<Arc<Collector>>,
    pub telemetry: Option<Arc<Telemetry>>,
    pub clock: Arc<dyn Clock>,
    pub budget: Budget,
    pub policy: PolicyState,
    pub started_at: Duration,
    pub invocations: Mutex<Vec<InvocationOutcome>>,
    pub pruned: Mutex<Option<super::PruneDetail>>,
    /// Weak so a leg job's `Arc<OwnedExec>` clone never keeps the pool
    /// alive: otherwise a worker thread dropping the last clone after the
    /// engine is gone would run the pool's `Drop` — and join itself.
    /// Upgrading is safe mid-walk because `ExecutionEngine::execute`
    /// borrows the engine (and so the pool) until every leg has joined.
    pub pool: Weak<WorkerPool>,
    /// Self-reference (set via `Arc::new_cyclic`) so `run_par` can hand
    /// owning clones to `'static` pool jobs.
    pub me: Weak<OwnedExec>,
}

impl OwnedExec {
    /// Borrows a walker context off the owned state.
    pub fn ctx(&self) -> Ctx<'_> {
        Ctx {
            providers: &self.providers,
            request: &self.request,
            collector: self.collector.as_deref(),
            telemetry: self.telemetry.as_deref(),
            clock: &*self.clock,
            budget: &self.budget,
            started_at: self.started_at,
            policy: &self.policy,
            invocations: &self.invocations,
            pruned: &self.pruned,
            spawn: self,
        }
    }

    /// Resolves a child-index path to its node in the owned strategy.
    fn node_at(&self, path: &[usize]) -> &Node {
        let mut node = self.strategy.node();
        for &index in path {
            node = match node {
                Node::Seq(children) | Node::Par(children) => &children[index],
                Node::Leaf(_) => unreachable!("paths never descend into leaves"),
            };
        }
        node
    }
}

impl LegSpawner for OwnedExec {
    fn run_par(&self, ctx: &Ctx<'_>, children: &[Node], path: &[usize]) -> Vec<NodeStatus> {
        let exec = self
            .me
            .upgrade()
            .expect("execution state outlives its walk");
        let pool = self.pool.upgrade().expect("engine outlives its walk");
        let spawned = children.len() - 1;
        let join = Arc::new(LegJoin::new(spawned));
        let handoff = Arc::new(SlotHandoff::new(spawned));
        // Same clock discipline as the scoped spawner: reserve before
        // scheduling, adopt on the leg's thread.
        for _ in 0..spawned {
            ctx.clock.reserve_worker();
        }
        for index in 1..children.len() {
            let exec = Arc::clone(&exec);
            let join = Arc::clone(&join);
            let handoff = Arc::clone(&handoff);
            let mut child_path = path.to_vec();
            child_path.push(index);
            pool.submit(Box::new(move || {
                let result = {
                    // The drop side runs even if the leg panics — and
                    // *before* signalling completion, so the handoff is
                    // settled by the time the parent can resume.
                    let _slot = LegSlot::adopt(&*exec.clock, &handoff);
                    let ctx = exec.ctx();
                    let node = exec.node_at(&child_path);
                    catch_unwind(AssertUnwindSafe(|| run_node(node, &child_path, &ctx)))
                };
                join.complete(index - 1, result);
            }));
        }
        let mut first_path = path.to_vec();
        first_path.push(0);
        let first = catch_unwind(AssertUnwindSafe(|| {
            run_node(&children[0], &first_path, ctx)
        }));
        // See the scoped spawner: park only while legs are outstanding.
        let parked = handoff.park_parent();
        if parked {
            ctx.clock.enter_passive();
        }
        let joined = join.wait();
        if parked {
            ctx.clock.exit_passive();
        }
        if handoff.take_kept() {
            // The last leg handed its slot to us (see SlotHandoff).
            ctx.clock.release_worker();
        }
        let mut statuses = vec![propagate(first)];
        statuses.extend(joined.into_iter().map(propagate));
        statuses
    }
}

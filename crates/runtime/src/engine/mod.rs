//! The unified execution engine: one Seq/Par strategy walker serving both
//! first-success and quorum semantics, with bounded worker-pool
//! parallelism and per-request budgets.
//!
//! Two entry points share the walker core:
//!
//! * [`execute_scoped`] — borrows everything, runs parallel legs on scoped
//!   OS threads. This is what [`execute_strategy`](crate::execute_strategy)
//!   and [`execute_with_quorum`](crate::execute_with_quorum) delegate to;
//!   with an unlimited [`Budget`] its behaviour is bit-for-bit the
//!   pre-engine executors'.
//! * [`ExecutionEngine::execute`] — owns its inputs ([`ExecSpec`]), runs
//!   parallel legs on the engine's bounded, reusable worker pool. This is
//!   what the [`Gateway`](crate::Gateway) uses, so concurrent requests
//!   share a capped set of threads instead of spawning per leg. A
//!   saturated pool spills legs to one-shot threads rather than queueing
//!   them behind their own parents, so capacity never deadlocks an
//!   execution (see [`PoolStats`] for the observable counters).
//!
//! Both honour the paper's semantics: Assumption-2 cost accounting (every
//! started invocation is charged in full), global short-circuit, and the
//! reserve-before-spawn virtual-clock discipline that keeps
//! [`VirtualClock`](crate::VirtualClock) executions deterministic.
//! Budgets add deadline/cancel pruning at exactly the points the
//! short-circuit is already checked, so a pruned leg is always one that
//! had not started.

mod budget;
mod policy;
pub(crate) mod pool;
mod walker;

pub use budget::{Budget, PruneDetail};
pub use policy::Completion;
pub use pool::PoolStats;
pub use qce_strategy::{CompletionPolicy, PruneReason};

use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::Strategy;

use crate::clock::{Clock, WorkerGuard};
use crate::collector::Collector;
use crate::device::Provider;
use crate::message::{Invocation, InvocationOutcome, RuntimeError};
use crate::telemetry::Telemetry;

use policy::PolicyState;
use pool::WorkerPool;
use walker::{run_node, Ctx, OwnedExec, ScopedSpawner};

/// The result of one engine execution, common to both completion
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// How the execution completed (first-success outcome or quorum
    /// votes).
    pub completion: Completion,
    /// Time from request start to the policy's decision instant (first
    /// success / quorum agreement), or to the completion of the last
    /// invocation when no decision was reached.
    pub latency: Duration,
    /// Total cost charged across all started invocations (Assumption 2).
    pub cost: f64,
    /// Every invocation that started, in completion order.
    pub invocations: Vec<InvocationOutcome>,
    /// Why the walk stopped early, when the request's [`Budget`] tripped
    /// (`None` for a walk the policy completed on its own).
    pub pruned: Option<PruneReason>,
    /// Full attribution of the first prune (reason, traffic class, and
    /// remaining deadline budget at the prune instant). Always present
    /// when [`EngineOutcome::pruned`] is.
    pub prune_detail: Option<PruneDetail>,
}

/// Owned inputs for [`ExecutionEngine::execute`].
pub struct ExecSpec {
    /// The strategy to execute.
    pub strategy: Strategy,
    /// Resolved providers, indexed by [`MsId`](qce_strategy::MsId).
    pub providers: Vec<Arc<dyn Provider>>,
    /// The client request.
    pub request: Invocation,
    /// Records completed invocations when provided.
    pub collector: Option<Arc<Collector>>,
    /// Records per-provider counters/histograms when provided.
    pub telemetry: Option<Arc<Telemetry>>,
    /// The clock the execution runs on.
    pub clock: Arc<dyn Clock>,
    /// Deadline/cancellation budget for this request.
    pub budget: Budget,
    /// When is the execution complete.
    pub policy: CompletionPolicy,
}

impl std::fmt::Debug for ExecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSpec")
            .field("strategy", &self.strategy)
            .field("providers", &self.providers.len())
            .field("request", &self.request.request_id)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Rejects strategies that reference an unresolved provider index.
fn validate(strategy: &Strategy, providers: &[Arc<dyn Provider>]) -> Result<(), RuntimeError> {
    for id in strategy.leaves() {
        if providers.get(id.index()).is_none() {
            return Err(RuntimeError::NoProvider {
                capability: format!("strategy operand {id}"),
            });
        }
    }
    Ok(())
}

/// Executes `strategy` with borrowed inputs, running parallel legs on
/// scoped OS threads (one per leg). The behaviour with
/// [`Budget::unlimited`] is bit-for-bit the pre-engine
/// [`execute_strategy_with_clock`](crate::execute_strategy_with_clock) /
/// [`execute_with_quorum_clock`](crate::execute_with_quorum_clock).
///
/// # Errors
///
/// Returns [`RuntimeError::NoProvider`] if the strategy references an
/// index with no resolved provider.
///
/// # Panics
///
/// Panics if `policy` is a quorum of zero, or if a provider panics (the
/// leg's panic is propagated, with clock worker accounting unwound).
#[allow(clippy::too_many_arguments)]
pub fn execute_scoped(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    clock: &dyn Clock,
    telemetry: Option<&Telemetry>,
    budget: &Budget,
    policy: CompletionPolicy,
) -> Result<EngineOutcome, RuntimeError> {
    validate(strategy, providers)?;
    let policy = PolicyState::new(policy);

    // A caller already registered as a worker of this clock (e.g. a load
    // generator driving many concurrent requests) keeps its own slot; the
    // walk runs inline on its thread, so registering again would double-
    // count it and stall the virtual clock.
    let worker = (!clock.thread_is_worker()).then(|| WorkerGuard::enter(clock));
    let invocations = Mutex::new(Vec::new());
    let pruned = Mutex::new(None);
    let ctx = Ctx {
        providers,
        request,
        collector,
        telemetry,
        clock,
        budget,
        started_at: clock.now(),
        policy: &policy,
        invocations: &invocations,
        pruned: &pruned,
        spawn: &ScopedSpawner,
    };
    let started_at = ctx.started_at;
    run_node(strategy.node(), &[], &ctx);
    drop(worker);

    let invocations = invocations.into_inner();
    let cost = invocations.iter().map(|i| i.cost).sum();
    let fallback = clock.now().saturating_sub(started_at);
    let (completion, latency) = policy.finish(fallback);
    let prune_detail = pruned.into_inner();
    Ok(EngineOutcome {
        completion,
        latency,
        cost,
        invocations,
        pruned: prune_detail.map(|d| d.reason),
        prune_detail,
    })
}

/// The unified execution engine: a bounded worker pool plus the shared
/// strategy walker. One engine (and so one pool) is meant to be shared by
/// many concurrent executions — the [`Gateway`](crate::Gateway) owns one.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use qce_runtime::engine::{Budget, CompletionPolicy, ExecSpec, ExecutionEngine};
/// use qce_runtime::{Clock, Invocation, Provider, SimulatedProvider, VirtualClock};
/// use qce_strategy::Strategy;
///
/// let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
/// let providers: Vec<Arc<dyn Provider>> = ["a", "b"]
///     .iter()
///     .map(|id| {
///         SimulatedProvider::builder(*id, *id)
///             .latency(Duration::from_millis(5))
///             .cost(10.0)
///             .clock(Arc::clone(&clock))
///             .build() as Arc<dyn Provider>
///     })
///     .collect();
///
/// let engine = ExecutionEngine::new(4);
/// let outcome = engine.execute(ExecSpec {
///     strategy: Strategy::parse("a*b")?,
///     providers,
///     request: Invocation::new(1, "", vec![]),
///     collector: None,
///     telemetry: None,
///     clock,
///     budget: Budget::unlimited(),
///     policy: CompletionPolicy::FirstSuccess,
/// })?;
/// assert!(outcome.completion.is_success());
/// assert_eq!(outcome.cost, 20.0); // both started: both charged
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ExecutionEngine {
    pool: Arc<WorkerPool>,
}

impl ExecutionEngine {
    /// Creates an engine whose pool keeps up to `capacity` persistent
    /// worker threads (`0` = no persistent workers; every parallel leg
    /// runs on a one-shot thread, the pre-engine behaviour).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ExecutionEngine {
            pool: Arc::new(WorkerPool::new(capacity)),
        }
    }

    /// Current worker-pool occupancy counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Executes `spec` with parallel legs on the engine's worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoProvider`] if the strategy references an
    /// index with no resolved provider.
    ///
    /// # Panics
    ///
    /// Panics if `spec.policy` is a quorum of zero, or if a provider
    /// panics (propagated to the caller).
    pub fn execute(&self, spec: ExecSpec) -> Result<EngineOutcome, RuntimeError> {
        validate(&spec.strategy, &spec.providers)?;
        let policy = PolicyState::new(spec.policy);

        let clock = Arc::clone(&spec.clock);
        // See `execute_scoped`: an already-registered caller keeps its slot.
        let worker = (!clock.thread_is_worker()).then(|| WorkerGuard::enter(&*clock));
        let exec = Arc::new_cyclic(|me| OwnedExec {
            strategy: spec.strategy,
            providers: spec.providers,
            request: spec.request,
            collector: spec.collector,
            telemetry: spec.telemetry,
            clock: spec.clock,
            budget: spec.budget,
            policy,
            started_at: clock.now(),
            invocations: Mutex::new(Vec::new()),
            pruned: Mutex::new(None),
            pool: Arc::downgrade(&self.pool),
            me: me.clone(),
        });
        {
            let ctx = exec.ctx();
            run_node(exec.strategy.node(), &[], &ctx);
        }
        drop(worker);

        // Every pooled leg was joined before the walk returned, so the
        // shared state is quiescent — but a finished leg's thread may not
        // have dropped its `Arc` clone yet, so drain by reference instead
        // of unwrapping the `Arc`.
        let invocations = std::mem::take(&mut *exec.invocations.lock());
        let cost = invocations.iter().map(|i| i.cost).sum();
        let fallback = clock.now().saturating_sub(exec.started_at);
        let (completion, latency) = exec.policy.finish(fallback);
        let prune_detail = *exec.pruned.lock();
        Ok(EngineOutcome {
            completion,
            latency,
            cost,
            invocations,
            pruned: prune_detail.map(|d| d.reason),
            prune_detail,
        })
    }
}

//! The unified execution engine: one event-driven Seq/Par state machine
//! serving both first-success and quorum semantics, with per-request
//! budgets and O(frames) — not O(threads) — memory per request.
//!
//! Strategy walks no longer park one OS thread per running leg. Instead,
//! every started `Seq`/`Par` node is a small heap frame and every leaf
//! invocation is a completion event scheduled on the [`Clock`] (see
//! `engine/event.rs` for the core). Two entry points share it:
//!
//! * [`execute_scoped`] — borrows everything; the calling thread drives
//!   the event loop, and the rare leaf that must really block (capacity
//!   limits, foreign clocks, closure providers) runs on a scoped OS
//!   thread. This is what [`execute_strategy`](crate::execute_strategy)
//!   and [`execute_with_quorum`](crate::execute_with_quorum) delegate to;
//!   with an unlimited [`Budget`] its behaviour is bit-for-bit the
//!   pre-engine executors'.
//! * [`ExecutionEngine::execute`] — owns its inputs ([`ExecSpec`]); the
//!   calling thread drives, and blocking leaves run on the engine's
//!   bounded, reusable worker pool (a saturated pool spills to one-shot
//!   threads rather than queueing legs behind their own parents, so
//!   capacity never deadlocks an execution — see [`PoolStats`]).
//!
//! Both honour the paper's semantics: Assumption-2 cost accounting (every
//! started invocation is charged in full), global short-circuit, and
//! deterministic [`VirtualClock`](crate::VirtualClock) executions — the
//! event core processes completions in `(deadline, schedule-order)` order,
//! so a replay is bit-identical. Budgets add deadline/cancel pruning at
//! exactly the points the short-circuit is already checked, so a pruned
//! leg is always one that had not started.

mod budget;
pub(crate) mod event;
mod policy;
pub(crate) mod pool;

pub use budget::{Budget, PruneDetail};
pub use policy::Completion;
pub use pool::PoolStats;
pub use qce_strategy::{CompletionPolicy, PruneReason};

use std::panic::resume_unwind;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::Strategy;

use crate::clock::{Clock, WorkerGuard};
use crate::collector::Collector;
use crate::device::Provider;
use crate::message::{Invocation, InvocationOutcome, RuntimeError};
use crate::telemetry::Telemetry;

use event::{run_blocking, BlockingTask, EventCore, RequestResult, RequestSpec, Shared};
pub(crate) use policy::PolicyState;
pub(crate) use pool::WorkerPool;

/// The result of one engine execution, common to both completion
/// policies.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// How the execution completed (first-success outcome or quorum
    /// votes).
    pub completion: Completion,
    /// Time from request start to the policy's decision instant (first
    /// success / quorum agreement), or to the completion of the last
    /// invocation when no decision was reached.
    pub latency: Duration,
    /// Total cost charged across all started invocations (Assumption 2).
    pub cost: f64,
    /// Every invocation that started, in completion order.
    pub invocations: Vec<InvocationOutcome>,
    /// Why the walk stopped early, when the request's [`Budget`] tripped
    /// (`None` for a walk the policy completed on its own).
    pub pruned: Option<PruneReason>,
    /// Full attribution of the first prune (reason, traffic class, and
    /// remaining deadline budget at the prune instant). Always present
    /// when [`EngineOutcome::pruned`] is.
    pub prune_detail: Option<PruneDetail>,
}

/// Point-in-time occupancy of the execution core: in-flight requests and
/// the continuation frames their walks are holding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests currently in flight.
    pub in_flight: usize,
    /// Live `Seq`/`Par` continuation frames across all in-flight
    /// requests.
    pub frames_live: usize,
    /// High-water mark of `frames_live` since the core was created.
    pub frames_peak: usize,
    /// Bytes of core-resident state per frame (for memory-per-request
    /// accounting: a request's walk costs `frames × frame_bytes` plus its
    /// bookkeeping, where the old model paid one OS thread stack per
    /// running leg).
    pub frame_bytes: usize,
}

/// Owned inputs for [`ExecutionEngine::execute`].
pub struct ExecSpec {
    /// The strategy to execute.
    pub strategy: Strategy,
    /// Resolved providers, indexed by [`MsId`](qce_strategy::MsId).
    pub providers: Vec<Arc<dyn Provider>>,
    /// The client request.
    pub request: Invocation,
    /// Records completed invocations when provided.
    pub collector: Option<Arc<Collector>>,
    /// Records per-provider counters/histograms when provided.
    pub telemetry: Option<Arc<Telemetry>>,
    /// The clock the execution runs on.
    pub clock: Arc<dyn Clock>,
    /// Deadline/cancellation budget for this request.
    pub budget: Budget,
    /// When is the execution complete.
    pub policy: CompletionPolicy,
}

impl std::fmt::Debug for ExecSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSpec")
            .field("strategy", &self.strategy)
            .field("providers", &self.providers.len())
            .field("request", &self.request.request_id)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

/// Rejects strategies that reference an unresolved provider index.
pub(crate) fn validate(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
) -> Result<(), RuntimeError> {
    for id in strategy.leaves() {
        if providers.get(id.index()).is_none() {
            return Err(RuntimeError::NoProvider {
                capability: format!("strategy operand {id}"),
            });
        }
    }
    Ok(())
}

/// Unwraps a resolved request's result, re-raising a provider panic on
/// the submitting thread.
fn settle(result: Option<RequestResult>) -> EngineOutcome {
    match result.expect("driving to resolution settles the request") {
        RequestResult::Finished(outcome) => outcome,
        RequestResult::Panicked(panic) => resume_unwind(panic),
        RequestResult::Shutdown => unreachable!("ephemeral cores are never shut down"),
    }
}

/// Executes `strategy` with borrowed inputs on the calling thread's event
/// loop; blocking leaves run on scoped OS threads. The behaviour with
/// [`Budget::unlimited`] is bit-for-bit the pre-engine
/// [`execute_strategy_with_clock`](crate::execute_strategy_with_clock) /
/// [`execute_with_quorum_clock`](crate::execute_with_quorum_clock).
///
/// # Errors
///
/// Returns [`RuntimeError::NoProvider`] if the strategy references an
/// index with no resolved provider.
///
/// # Panics
///
/// Panics if `policy` is a quorum of zero, or if a provider panics (the
/// leg's panic is propagated, with clock worker accounting unwound).
#[allow(clippy::too_many_arguments)]
pub fn execute_scoped(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    clock: &dyn Clock,
    telemetry: Option<&Telemetry>,
    budget: &Budget,
    policy: CompletionPolicy,
) -> Result<EngineOutcome, RuntimeError> {
    validate(strategy, providers)?;
    let policy = PolicyState::new(policy);

    // A caller already registered as a worker of this clock (e.g. a load
    // generator driving many concurrent requests) keeps its own slot; the
    // event loop runs inline on its thread, so registering again would
    // double-count it and stall the virtual clock.
    let worker = (!clock.thread_is_worker()).then(|| WorkerGuard::enter(clock));
    let result: Mutex<Option<RequestResult>> = Mutex::new(None);
    let core = EventCore::new(Shared::Borrowed(clock));
    std::thread::scope(|scope| {
        let core = &core;
        let spawn = move |task: BlockingTask| {
            scope.spawn(move || run_blocking(core, task));
        };
        let req = core.submit(
            RequestSpec {
                strategy: Shared::Borrowed(strategy),
                providers: Shared::Borrowed(providers),
                request: Shared::Borrowed(request),
                collector: collector.map(Shared::Borrowed),
                telemetry: telemetry.map(Shared::Borrowed),
                budget: budget.clone(),
                policy,
                done: Box::new(|r| *result.lock() = Some(r)),
            },
            &spawn,
        );
        core.drive_request(req, &spawn);
    });
    drop(core);
    drop(worker);
    Ok(settle(result.into_inner()))
}

/// The unified execution engine: a bounded worker pool (for blocking
/// leaves) plus the shared event core. One engine (and so one pool) is
/// meant to be shared by many concurrent executions — the
/// [`Gateway`](crate::Gateway) owns one.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use qce_runtime::engine::{Budget, CompletionPolicy, ExecSpec, ExecutionEngine};
/// use qce_runtime::{Clock, Invocation, Provider, SimulatedProvider, VirtualClock};
/// use qce_strategy::Strategy;
///
/// let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
/// let providers: Vec<Arc<dyn Provider>> = ["a", "b"]
///     .iter()
///     .map(|id| {
///         SimulatedProvider::builder(*id, *id)
///             .latency(Duration::from_millis(5))
///             .cost(10.0)
///             .clock(Arc::clone(&clock))
///             .build() as Arc<dyn Provider>
///     })
///     .collect();
///
/// let engine = ExecutionEngine::new(4);
/// let outcome = engine.execute(ExecSpec {
///     strategy: Strategy::parse("a*b")?,
///     providers,
///     request: Invocation::new(1, "", vec![]),
///     collector: None,
///     telemetry: None,
///     clock,
///     budget: Budget::unlimited(),
///     policy: CompletionPolicy::FirstSuccess,
/// })?;
/// assert!(outcome.completion.is_success());
/// assert_eq!(outcome.cost, 20.0); // both started: both charged
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct ExecutionEngine {
    pool: Arc<WorkerPool>,
}

impl ExecutionEngine {
    /// Creates an engine whose pool keeps up to `capacity` persistent
    /// worker threads for blocking leaves (`0` = no persistent workers;
    /// every blocking leaf runs on a one-shot thread).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ExecutionEngine {
            pool: Arc::new(WorkerPool::new(capacity)),
        }
    }

    /// Current worker-pool occupancy counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The shared blocking-leaf pool, for callers (the gateway's event
    /// loops) that submit blocking work outside `execute`.
    pub(crate) fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// Executes `spec` on the calling thread's event loop; blocking
    /// leaves run on the engine's worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoProvider`] if the strategy references an
    /// index with no resolved provider.
    ///
    /// # Panics
    ///
    /// Panics if `spec.policy` is a quorum of zero, or if a provider
    /// panics (propagated to the caller).
    pub fn execute(&self, spec: ExecSpec) -> Result<EngineOutcome, RuntimeError> {
        validate(&spec.strategy, &spec.providers)?;
        let policy = PolicyState::new(spec.policy);

        let clock = Arc::clone(&spec.clock);
        // See `execute_scoped`: an already-registered caller keeps its slot.
        let worker = (!clock.thread_is_worker()).then(|| WorkerGuard::enter(&*clock));
        let core = Arc::new(EventCore::new(Shared::Owned(Arc::clone(&spec.clock))));
        let result = Arc::new(Mutex::new(None));
        let spawn = {
            let core = Arc::downgrade(&core);
            let clock = Arc::clone(&spec.clock);
            let pool = Arc::clone(&self.pool);
            move |task: BlockingTask| {
                let core = core.clone();
                let clock = Arc::clone(&clock);
                pool.submit(Box::new(move || match core.upgrade() {
                    Some(core) => run_blocking(&core, task),
                    // The core was torn down mid-flight (shutdown or
                    // eviction race): free the slot reserved for this leg
                    // and vanish instead of panicking.
                    None => clock.release_worker(),
                }));
            }
        };
        let done = {
            let result = Arc::clone(&result);
            Box::new(move |r| *result.lock() = Some(r))
        };
        let req = core.submit(
            RequestSpec {
                strategy: Shared::Owned(Arc::new(spec.strategy)),
                providers: Shared::Owned(spec.providers.into()),
                request: Shared::Owned(Arc::new(spec.request)),
                collector: spec.collector.map(Shared::Owned),
                telemetry: spec.telemetry.map(Shared::Owned),
                budget: spec.budget,
                policy,
                done,
            },
            &spawn,
        );
        core.drive_request(req, &spawn);
        drop(worker);
        let settled = settle(result.lock().take());
        Ok(settled)
    }
}

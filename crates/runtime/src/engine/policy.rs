//! Completion-policy state: the per-request mutable state behind a
//! [`CompletionPolicy`](qce_strategy::CompletionPolicy) — the first-success
//! winner slot, or the quorum vote tally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::CompletionPolicy;

/// The earliest successful invocation under first-success semantics.
#[derive(Debug)]
pub(crate) struct Win {
    pub at: Duration,
    pub payload: Vec<u8>,
}

/// Byte-equality vote tally for quorum execution.
#[derive(Debug, Default)]
pub(crate) struct VoteBox {
    /// payload → (votes, first-seen order)
    tally: HashMap<Vec<u8>, (usize, usize)>,
    pub total: usize,
    pub decided_at: Option<Duration>,
}

impl VoteBox {
    /// Registers a vote; returns the new count for this payload.
    pub fn vote(&mut self, payload: Vec<u8>) -> usize {
        let order = self.tally.len();
        let entry = self.tally.entry(payload).or_insert((0, order));
        entry.0 += 1;
        self.total += 1;
        entry.0
    }

    /// The plurality payload (ties broken by first-seen order).
    pub fn winner(&self) -> (Option<Vec<u8>>, usize) {
        self.tally
            .iter()
            .max_by(|(_, (va, oa)), (_, (vb, ob))| va.cmp(vb).then(ob.cmp(oa)))
            .map_or((None, 0), |(payload, (votes, _))| {
                (Some(payload.clone()), *votes)
            })
    }
}

/// The mutable per-request state of a completion policy: shared by every
/// leg of one execution, it decides when the walk halts and assembles the
/// final [`Completion`].
#[derive(Debug)]
pub(crate) enum PolicyState {
    /// First success ends the strategy (paper Section III.A).
    FirstSuccess {
        done: AtomicBool,
        win: Mutex<Option<Win>>,
    },
    /// Execution continues until `quorum` byte-equal payloads agree
    /// (paper Section VII).
    Quorum {
        quorum: usize,
        done: AtomicBool,
        votes: Mutex<VoteBox>,
    },
}

/// How an execution completed, per policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// First-success semantics: did any invocation succeed, and with what.
    First {
        /// Whether any microservice succeeded.
        success: bool,
        /// Payload of the earliest successful invocation.
        payload: Option<Vec<u8>>,
    },
    /// Quorum semantics: the vote outcome.
    Agreement {
        /// The payload that reached quorum (or the plurality payload).
        payload: Option<Vec<u8>>,
        /// Votes received by the winning payload.
        votes: usize,
        /// Total successful invocations (votes cast).
        votes_cast: usize,
        /// Whether the required quorum was reached.
        agreed: bool,
    },
}

impl Completion {
    /// Whether the execution counts as successful: a success under
    /// first-success semantics, agreement under quorum semantics.
    #[must_use]
    pub fn is_success(&self) -> bool {
        match self {
            Completion::First { success, .. } => *success,
            Completion::Agreement { agreed, .. } => *agreed,
        }
    }

    /// The winning payload, if any.
    #[must_use]
    pub fn payload(&self) -> Option<&Vec<u8>> {
        match self {
            Completion::First { payload, .. } | Completion::Agreement { payload, .. } => {
                payload.as_ref()
            }
        }
    }
}

impl PolicyState {
    pub fn new(policy: CompletionPolicy) -> Self {
        match policy {
            CompletionPolicy::FirstSuccess => PolicyState::FirstSuccess {
                done: AtomicBool::new(false),
                win: Mutex::new(None),
            },
            CompletionPolicy::Quorum { quorum } => {
                assert!(quorum >= 1, "quorum must be at least 1");
                PolicyState::Quorum {
                    quorum,
                    done: AtomicBool::new(false),
                    votes: Mutex::new(VoteBox::default()),
                }
            }
        }
    }

    /// Whether the walk has globally halted (strategy won / quorum met).
    pub fn halted(&self) -> bool {
        match self {
            PolicyState::FirstSuccess { done, .. } | PolicyState::Quorum { done, .. } => {
                done.load(Ordering::SeqCst)
            }
        }
    }

    /// Whether a Seq node returns as soon as a child succeeds.
    pub fn seq_absorbs_success(&self) -> bool {
        matches!(self, PolicyState::FirstSuccess { .. })
    }

    /// Registers a successful invocation that completed `at` after the
    /// execution started.
    pub fn on_success(&self, payload: Vec<u8>, at: Duration) {
        match self {
            PolicyState::FirstSuccess { done, win } => {
                let mut win = win.lock();
                let earlier = win.as_ref().is_none_or(|w| at < w.at);
                if earlier {
                    *win = Some(Win { at, payload });
                }
                drop(win);
                done.store(true, Ordering::SeqCst);
            }
            PolicyState::Quorum {
                quorum,
                done,
                votes,
            } => {
                let mut votes = votes.lock();
                let count = votes.vote(payload);
                if count >= *quorum && votes.decided_at.is_none() {
                    votes.decided_at = Some(at);
                    drop(votes);
                    done.store(true, Ordering::SeqCst);
                }
            }
        }
    }

    /// Assembles the completion and latency once the walk has finished.
    /// `fallback_latency` (start-to-now) is reported when the policy never
    /// decided — total failure, or quorum not reached.
    pub fn finish(&self, fallback_latency: Duration) -> (Completion, Duration) {
        match self {
            PolicyState::FirstSuccess { win, .. } => match &*win.lock() {
                Some(win) => (
                    Completion::First {
                        success: true,
                        payload: Some(win.payload.clone()),
                    },
                    win.at,
                ),
                None => (
                    Completion::First {
                        success: false,
                        payload: None,
                    },
                    fallback_latency,
                ),
            },
            PolicyState::Quorum { quorum, votes, .. } => {
                let votes = votes.lock();
                let (payload, winner_votes) = votes.winner();
                let agreed = winner_votes >= *quorum;
                let latency = votes.decided_at.unwrap_or(fallback_latency);
                (
                    Completion::Agreement {
                        payload,
                        votes: winner_votes,
                        votes_cast: votes.total,
                        agreed,
                    },
                    latency,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_keeps_the_earliest_win() {
        let state = PolicyState::new(CompletionPolicy::FirstSuccess);
        assert!(!state.halted());
        state.on_success(vec![2], Duration::from_millis(8));
        assert!(state.halted());
        // A slower success that finished later must not displace it.
        state.on_success(vec![9], Duration::from_millis(20));
        // An earlier completion (raced in) must.
        state.on_success(vec![1], Duration::from_millis(3));
        let (completion, latency) = state.finish(Duration::from_millis(99));
        assert_eq!(
            completion,
            Completion::First {
                success: true,
                payload: Some(vec![1])
            }
        );
        assert_eq!(latency, Duration::from_millis(3));
    }

    #[test]
    fn first_success_failure_uses_fallback_latency() {
        let state = PolicyState::new(CompletionPolicy::FirstSuccess);
        let (completion, latency) = state.finish(Duration::from_millis(42));
        assert!(!completion.is_success());
        assert_eq!(latency, Duration::from_millis(42));
    }

    #[test]
    fn quorum_decides_at_kth_agreeing_vote() {
        let state = PolicyState::new(CompletionPolicy::Quorum { quorum: 2 });
        state.on_success(vec![7], Duration::from_millis(1));
        assert!(!state.halted());
        state.on_success(vec![8], Duration::from_millis(2));
        assert!(!state.halted(), "disagreeing vote does not decide");
        state.on_success(vec![7], Duration::from_millis(5));
        assert!(state.halted());
        let (completion, latency) = state.finish(Duration::from_millis(99));
        assert_eq!(
            completion,
            Completion::Agreement {
                payload: Some(vec![7]),
                votes: 2,
                votes_cast: 3,
                agreed: true
            }
        );
        assert_eq!(latency, Duration::from_millis(5));
    }

    #[test]
    fn quorum_plurality_tie_breaks_on_first_seen() {
        let state = PolicyState::new(CompletionPolicy::Quorum { quorum: 3 });
        state.on_success(vec![1], Duration::from_millis(1));
        state.on_success(vec![2], Duration::from_millis(2));
        let (completion, latency) = state.finish(Duration::from_millis(10));
        assert_eq!(
            completion,
            Completion::Agreement {
                payload: Some(vec![1]),
                votes: 1,
                votes_cast: 2,
                agreed: false
            }
        );
        assert_eq!(latency, Duration::from_millis(10), "undecided: fallback");
    }

    #[test]
    #[should_panic(expected = "quorum")]
    fn zero_quorum_rejected() {
        let _ = PolicyState::new(CompletionPolicy::Quorum { quorum: 0 });
    }
}

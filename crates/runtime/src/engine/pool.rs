//! A bounded pool of persistent worker threads for parallel strategy
//! legs, with a deadlock-free overflow path.
//!
//! The pool never *queues* a job unless an idle worker is already parked
//! and guaranteed to pick it up; when every worker is busy and the pool is
//! at capacity, the job spills to a one-shot thread instead of waiting.
//! That invariant matters because pool jobs are parallel strategy legs
//! whose parents block until the legs complete: parking a leg behind a
//! parent that is itself waiting for it would deadlock. Spilling preserves
//! exactly the pre-pool scoped-spawn semantics for the overflow, so a
//! saturated pool degrades to the old behaviour rather than stalling.
//!
//! Idle pool threads are parked on a condvar and are *not* registered with
//! any [`Clock`](crate::Clock) — a job registers itself (adopting the slot
//! its submitter reserved) for exactly its own duration, so one pool can
//! serve executions on different clocks without cross-talk.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

use serde::{Deserialize, Serialize};

/// A unit of pool work: one parallel strategy leg.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

/// Point-in-time occupancy counters of an engine's worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Maximum persistent worker threads (`0` = spill-only).
    pub capacity: usize,
    /// Persistent worker threads currently alive.
    pub threads: usize,
    /// Worker threads parked waiting for a job.
    pub idle: usize,
    /// Jobs currently running on persistent workers.
    pub running: usize,
    /// High-water mark of `running` since the pool was created.
    pub peak_running: usize,
    /// Jobs submitted since the pool was created.
    pub submitted: u64,
    /// Jobs that overflowed to one-shot threads because the pool was
    /// saturated.
    pub spilled: u64,
}

struct PoolState {
    jobs: VecDeque<Job>,
    idle: usize,
    threads: usize,
    running: usize,
    peak_running: usize,
    submitted: u64,
    spilled: u64,
    shutdown: bool,
    handles: Vec<JoinHandle<()>>,
}

struct PoolInner {
    capacity: usize,
    state: Mutex<PoolState>,
    available: Condvar,
}

impl PoolInner {
    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn worker(self: Arc<Self>) {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.running += 1;
                state.peak_running = state.peak_running.max(state.running);
                drop(state);
                job();
                state = self.lock();
                state.running -= 1;
                continue;
            }
            if state.shutdown {
                state.threads -= 1;
                return;
            }
            state.idle += 1;
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
            state.idle -= 1;
        }
    }
}

/// A bounded worker pool (see the module docs for the no-queue-without-
/// an-idle-worker invariant that keeps it deadlock-free).
pub(crate) struct WorkerPool {
    inner: Arc<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("WorkerPool")
            .field("capacity", &stats.capacity)
            .field("threads", &stats.threads)
            .field("running", &stats.running)
            .finish_non_exhaustive()
    }
}

impl WorkerPool {
    /// Creates a pool of up to `capacity` persistent worker threads
    /// (spawned lazily). `capacity == 0` means every job spills to a
    /// one-shot thread — the pre-pool behaviour.
    pub fn new(capacity: usize) -> Self {
        WorkerPool {
            inner: Arc::new(PoolInner {
                capacity,
                state: Mutex::new(PoolState {
                    jobs: VecDeque::new(),
                    idle: 0,
                    threads: 0,
                    running: 0,
                    peak_running: 0,
                    submitted: 0,
                    spilled: 0,
                    shutdown: false,
                    handles: Vec::new(),
                }),
                available: Condvar::new(),
            }),
        }
    }

    /// Runs `job` on a pool worker if one is guaranteed to take it, on a
    /// freshly spawned persistent worker while below capacity, and on a
    /// one-shot overflow thread otherwise. Never blocks on pool capacity.
    pub fn submit(&self, job: Job) {
        let mut state = self.inner.lock();
        state.submitted += 1;
        // `idle` counts parked workers; queue only when a distinct parked
        // worker exists for every queued job plus this one, so no job can
        // wait on a worker that never comes.
        if state.idle > state.jobs.len() {
            state.jobs.push_back(job);
            drop(state);
            self.inner.available.notify_one();
        } else if state.threads < self.inner.capacity {
            state.threads += 1;
            state.jobs.push_back(job);
            let inner = Arc::clone(&self.inner);
            let handle = std::thread::spawn(move || inner.worker());
            state.handles.push(handle);
        } else {
            state.spilled += 1;
            drop(state);
            std::thread::spawn(job);
        }
    }

    /// Current occupancy counters.
    pub fn stats(&self) -> PoolStats {
        let state = self.inner.lock();
        PoolStats {
            capacity: self.inner.capacity,
            threads: state.threads,
            idle: state.idle,
            running: state.running,
            peak_running: state.peak_running,
            submitted: state.submitted,
            spilled: state.spilled,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        let handles = {
            let mut state = self.inner.lock();
            state.shutdown = true;
            std::mem::take(&mut state.handles)
        };
        self.inner.available.notify_all();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn run_and_wait(pool: &WorkerPool, jobs: usize) {
        let (tx, rx) = mpsc::channel();
        for _ in 0..jobs {
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                tx.send(()).unwrap();
            }));
        }
        for _ in 0..jobs {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
    }

    #[test]
    fn jobs_run_and_threads_are_reused() {
        let pool = WorkerPool::new(2);
        run_and_wait(&pool, 1);
        // Wait for the worker to go idle so the next submit reuses it.
        for _ in 0..500 {
            if pool.stats().idle == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        run_and_wait(&pool, 1);
        let stats = pool.stats();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.threads, 1, "second job reuses the idle worker");
        assert_eq!(stats.spilled, 0);
    }

    #[test]
    fn saturated_pool_spills_instead_of_queueing() {
        let pool = WorkerPool::new(2);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let started = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..5 {
            let gate = Arc::clone(&gate);
            let started = Arc::clone(&started);
            let tx = tx.clone();
            pool.submit(Box::new(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let (lock, cv) = &*gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                tx.send(()).unwrap();
            }));
        }
        // All five must be *running* (none parked behind the busy pool)
        // even though capacity is 2 — the overflow spilled.
        for _ in 0..500 {
            if started.load(Ordering::SeqCst) == 5 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(
            started.load(Ordering::SeqCst),
            5,
            "no job waits on a busy pool"
        );
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        for _ in 0..5 {
            rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.spilled, 3, "two pooled, three spilled");
        assert!(stats.peak_running <= 2);
    }

    #[test]
    fn zero_capacity_spills_everything() {
        let pool = WorkerPool::new(0);
        run_and_wait(&pool, 3);
        let stats = pool.stats();
        assert_eq!(stats.threads, 0);
        assert_eq!(stats.spilled, 3);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = WorkerPool::new(4);
        run_and_wait(&pool, 8);
        drop(pool); // must not hang
    }
}

//! Per-request execution budgets: a cancellation flag (optionally chained
//! to a parent flag, e.g. a service's eviction flag) plus an optional
//! absolute deadline on the execution clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use qce_strategy::exec::PruneReason;

use crate::clock::Clock;
use crate::request::QosClass;

/// Full attribution of a budget prune: *why* the walk stopped early,
/// *which traffic class* the request carried, and *how much deadline
/// budget remained* at the instant the prune fired.
///
/// A bare [`PruneReason`] is ambiguous in telemetry: a `Cancelled` with
/// most of its deadline left is an eviction; a `Cancelled` that raced a
/// nearly-expired deadline tells a different story. Recording the
/// remaining budget at prune time makes deadline-vs-cancel attribution
/// unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneDetail {
    /// Why the budget pruned (cancellation outranks the deadline).
    pub reason: PruneReason,
    /// Traffic class of the pruned request.
    pub class: QosClass,
    /// Deadline budget remaining when the prune fired: `None` when the
    /// budget had no deadline, `Some(ZERO)` when the deadline itself
    /// tripped, and a positive remainder when a cancellation cut in ahead
    /// of the deadline.
    pub remaining: Option<Duration>,
}

/// The execution budget of one service request.
///
/// A budget is checked at every point the engine's walker already checks
/// the global short-circuit flag — before starting a leaf invocation and
/// between sequential legs — so a tripped budget prunes exactly the legs
/// that have not started yet. Legs already in flight run to completion and
/// are charged in full, preserving the paper's Assumption 2.
///
/// Budgets are cheap to clone (two `Arc`s and a `Copy` deadline); clones
/// share the same cancellation flag.
///
/// # Examples
///
/// ```
/// use qce_runtime::engine::Budget;
///
/// let budget = Budget::unlimited();
/// assert!(!budget.is_cancelled());
/// budget.cancel();
/// assert!(budget.is_cancelled());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    /// Absolute deadline on the execution clock (`clock.now() >= deadline`
    /// prunes), or `None` for no deadline.
    deadline: Option<Duration>,
    /// Traffic class of the request this budget belongs to, attached to
    /// every prune for attribution.
    class: QosClass,
    /// This request's own cancellation flag.
    cancel: Arc<AtomicBool>,
    /// An upstream cancellation flag shared with other requests (e.g. the
    /// owning service's eviction flag); either flag cancels the budget.
    parent: Option<Arc<AtomicBool>>,
}

impl Budget {
    /// A budget with no deadline and no upstream cancellation source.
    #[must_use]
    pub fn unlimited() -> Self {
        Budget {
            deadline: None,
            class: QosClass::default(),
            cancel: Arc::new(AtomicBool::new(false)),
            parent: None,
        }
    }

    /// Tags the budget with the request's traffic class, carried into
    /// every [`PruneDetail`] this budget produces.
    #[must_use]
    pub fn with_class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// The traffic class of the request this budget belongs to.
    #[must_use]
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// Sets an absolute deadline (a [`Clock::now`] reading at or past
    /// `deadline` prunes all not-yet-started legs).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Chains an upstream cancellation flag: the budget counts as
    /// cancelled when either its own flag or `parent` is set.
    #[must_use]
    pub fn with_parent_flag(mut self, parent: Arc<AtomicBool>) -> Self {
        self.parent = Some(parent);
        self
    }

    /// The absolute deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Cancels the request: every leg that has not started yet is pruned.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether this budget (or its upstream parent) has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
            || self
                .parent
                .as_ref()
                .is_some_and(|p| p.load(Ordering::SeqCst))
    }

    /// Why the budget would prune right now, if it would. The clock is
    /// only consulted when a deadline is set, so unlimited budgets add no
    /// clock traffic to the walk.
    #[must_use]
    pub fn prune(&self, clock: &dyn Clock) -> Option<PruneReason> {
        self.prune_detail(clock).map(|detail| detail.reason)
    }

    /// As [`Budget::prune`], with full attribution: the reason, the
    /// request's class, and the deadline budget remaining at the instant
    /// the prune fired.
    #[must_use]
    pub fn prune_detail(&self, clock: &dyn Clock) -> Option<PruneDetail> {
        if self.is_cancelled() {
            return Some(PruneDetail {
                reason: PruneReason::Cancelled,
                class: self.class,
                remaining: self.deadline.map(|d| d.saturating_sub(clock.now())),
            });
        }
        match self.deadline {
            Some(deadline) if clock.now() >= deadline => Some(PruneDetail {
                reason: PruneReason::DeadlineExceeded,
                class: self.class,
                remaining: Some(Duration::ZERO),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn unlimited_budget_never_prunes() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited();
        assert_eq!(budget.prune(&clock), None);
        clock.advance(Duration::from_secs(3600));
        assert_eq!(budget.prune(&clock), None);
    }

    #[test]
    fn cancel_prunes_immediately() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited();
        budget.cancel();
        assert_eq!(budget.prune(&clock), Some(PruneReason::Cancelled));
    }

    #[test]
    fn clones_share_the_cancel_flag() {
        let budget = Budget::unlimited();
        let clone = budget.clone();
        clone.cancel();
        assert!(budget.is_cancelled());
    }

    #[test]
    fn parent_flag_cancels_all_children() {
        let clock = VirtualClock::new();
        let evicted = Arc::new(AtomicBool::new(false));
        let a = Budget::unlimited().with_parent_flag(Arc::clone(&evicted));
        let b = Budget::unlimited().with_parent_flag(Arc::clone(&evicted));
        assert_eq!(a.prune(&clock), None);
        evicted.store(true, Ordering::SeqCst);
        assert_eq!(a.prune(&clock), Some(PruneReason::Cancelled));
        assert_eq!(b.prune(&clock), Some(PruneReason::Cancelled));
    }

    #[test]
    fn deadline_prunes_at_and_after_the_instant() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited().with_deadline(Duration::from_millis(10));
        assert_eq!(budget.prune(&clock), None);
        clock.advance(Duration::from_millis(10));
        assert_eq!(budget.prune(&clock), Some(PruneReason::DeadlineExceeded));
        clock.advance(Duration::from_millis(5));
        assert_eq!(budget.prune(&clock), Some(PruneReason::DeadlineExceeded));
    }

    #[test]
    fn cancellation_outranks_the_deadline() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited().with_deadline(Duration::ZERO);
        budget.cancel();
        clock.advance(Duration::from_millis(1));
        assert_eq!(budget.prune(&clock), Some(PruneReason::Cancelled));
    }

    #[test]
    fn prune_detail_attributes_class_and_remaining_budget() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited()
            .with_class(QosClass::Critical)
            .with_deadline(Duration::from_millis(10));
        clock.advance(Duration::from_millis(4));
        budget.cancel();
        let detail = budget.prune_detail(&clock).unwrap();
        assert_eq!(detail.reason, PruneReason::Cancelled);
        assert_eq!(detail.class, QosClass::Critical);
        assert_eq!(
            detail.remaining,
            Some(Duration::from_millis(6)),
            "a cancellation records how much deadline budget was left"
        );
    }

    #[test]
    fn deadline_prune_detail_reports_zero_remaining() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited()
            .with_class(QosClass::Scavenger)
            .with_deadline(Duration::from_millis(3));
        clock.advance(Duration::from_millis(5));
        let detail = budget.prune_detail(&clock).unwrap();
        assert_eq!(detail.reason, PruneReason::DeadlineExceeded);
        assert_eq!(detail.class, QosClass::Scavenger);
        assert_eq!(detail.remaining, Some(Duration::ZERO));
    }

    #[test]
    fn cancelled_unlimited_budget_has_no_remaining() {
        let clock = VirtualClock::new();
        let budget = Budget::unlimited();
        budget.cancel();
        let detail = budget.prune_detail(&clock).unwrap();
        assert_eq!(detail.remaining, None, "no deadline, no remainder");
        assert_eq!(detail.class, QosClass::Interactive, "default class");
    }
}

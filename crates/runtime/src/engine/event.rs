//! The event-driven execution core: strategy walks as explicit heap
//! frames plus completion events on the [`Clock`], instead of one parked
//! OS thread per running leg.
//!
//! A running request is a small state machine:
//!
//! * every started `Seq`/`Par` node is a [`Frame`] in a per-request arena
//!   (frames are never removed until the request resolves, so the arena's
//!   high-water mark is the request's true memory footprint);
//! * every leaf invocation is either a **timed completion event** — the
//!   provider pre-computes `(latency, result)` via
//!   [`Provider::try_timed_invoke`] and the core schedules the completion
//!   on its timer heap — or, for providers that must really block
//!   (capacity limits, foreign clocks, arbitrary closures), a
//!   [`BlockingTask`] handed to a spawner, which posts the completion back
//!   to the ready queue when the call returns.
//!
//! One [`EventCore`] can hold any number of concurrent requests; one (or
//! N) driver threads drain it via [`EventCore::run_loop`] /
//! [`EventCore::drive_request`]. Events are processed in a deterministic
//! order — the ready queue FIFO first, then due timers in `(deadline,
//! schedule-order)` order — so a single-driver core on a
//! [`VirtualClock`](crate::VirtualClock) replays bit-identically.
//!
//! # Clock discipline
//!
//! The driver holds one worker slot (its caller's [`WorkerGuard`]
//! (crate::WorkerGuard) or its own). While idle it waits in
//! [`Clock::sleep_until_or`] — like a sleeper when a timer is armed, like
//! a passive parent otherwise — so virtual time advances exactly to the
//! next scheduled completion and never past it. A blocking leaf reserves a
//! worker slot *before* its task is spawned (so time cannot slip while the
//! task is in flight to a thread), binds it for the duration of the
//! provider call, and then leaves the slot **orphaned** — reserved but
//! unbound — while the completion event travels through the ready queue.
//! An orphaned slot pins virtual time, which is what makes the latency
//! and decision timestamps the driver records identical to the ones the
//! old thread-per-leg walker read on the leg's own thread. The driver
//! releases the slot after it has processed the completion (and after any
//! new reservations that processing made).

use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use qce_strategy::{Node, Strategy};

use crate::clock::Clock;
use crate::collector::{Collector, ExecutionRecord};
use crate::device::Provider;
use crate::message::{Invocation, InvocationOutcome, InvokeError};
use crate::telemetry::Telemetry;

use super::budget::Budget;
use super::policy::PolicyState;
use super::EngineOutcome;

/// A caught provider panic, re-raised on the submitter.
pub(crate) type PanicPayload = Box<dyn Any + Send + 'static>;

/// Per-request completion callback, run by the driver outside the core
/// lock once the request resolves.
pub(crate) type DoneFn<'env> = Box<dyn FnOnce(RequestResult) + Send + 'env>;

/// An embedder thunk queued on the core (admission grants, queue-deadline
/// cancellations). Runs on the driver thread, outside the core lock.
pub(crate) type TaskFn<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Either a borrow (scoped execution) or shared ownership (engine /
/// gateway execution) of one piece of request state. Lets one state
/// machine serve both the borrowing and the owning entry points.
pub(crate) enum Shared<'env, T: ?Sized> {
    /// Borrowed from the caller for the core's lifetime.
    Borrowed(&'env T),
    /// Owned via `Arc` (the `'static` entry points).
    Owned(Arc<T>),
}

impl<T: ?Sized> Deref for Shared<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        match self {
            Shared::Borrowed(t) => t,
            Shared::Owned(t) => t,
        }
    }
}

/// How one request ended.
pub(crate) enum RequestResult {
    /// The walk ran to a policy decision (or exhaustion).
    Finished(EngineOutcome),
    /// A provider panicked; the payload must be resumed on the submitter.
    Panicked(PanicPayload),
    /// The core was shut down while the request was in flight.
    Shutdown,
}

impl std::fmt::Debug for RequestResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestResult::Finished(outcome) => f.debug_tuple("Finished").field(outcome).finish(),
            RequestResult::Panicked(_) => f.write_str("Panicked(..)"),
            RequestResult::Shutdown => f.write_str("Shutdown"),
        }
    }
}

/// Everything one request needs, with per-field borrow-or-own flexibility.
pub(crate) struct RequestSpec<'env> {
    pub strategy: Shared<'env, Strategy>,
    pub providers: Shared<'env, [Arc<dyn Provider>]>,
    pub request: Shared<'env, Invocation>,
    pub collector: Option<Shared<'env, Collector>>,
    pub telemetry: Option<Shared<'env, Telemetry>>,
    pub budget: Budget,
    pub policy: PolicyState,
    pub done: DoneFn<'env>,
}

/// A leaf invocation that must run on a real thread: the provider either
/// declined [`Provider::try_timed_invoke`] (capacity limit, foreign clock)
/// or does not implement it (arbitrary closures). The worker slot for the
/// task was already reserved when it was created.
pub(crate) struct BlockingTask {
    req: u64,
    parent: Option<(usize, usize)>,
    provider_index: usize,
    provider: Arc<dyn Provider>,
    invocation: Invocation,
}

impl std::fmt::Debug for BlockingTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockingTask")
            .field("req", &self.req)
            .field("provider_index", &self.provider_index)
            .finish_non_exhaustive()
    }
}

/// Runs a [`BlockingTask`] to completion on the calling thread: binds the
/// reserved worker slot, invokes the provider (catching panics), unbinds,
/// and posts the completion event. The slot stays reserved — orphaned —
/// until the driver processes the event, pinning virtual time at the
/// completion instant.
pub(crate) fn run_blocking(core: &EventCore<'_>, task: BlockingTask) {
    let clock = core.clock();
    clock.adopt_worker();
    let t0 = clock.now();
    let result = catch_unwind(AssertUnwindSafe(|| task.provider.invoke(&task.invocation)));
    clock.disown_worker();
    let result = match result {
        Ok(outcome) => LeafOutcome::Completed(outcome),
        Err(panic) => LeafOutcome::Panicked(panic),
    };
    core.post_leaf(LeafEvent {
        req: task.req,
        parent: task.parent,
        provider_index: task.provider_index,
        t0,
        declared: None,
        result,
        orphan_slot: true,
    });
}

/// What a completed leaf reports back.
enum LeafOutcome {
    Completed(Result<Vec<u8>, InvokeError>),
    Panicked(PanicPayload),
}

/// A leaf completion travelling to the driver.
struct LeafEvent {
    req: u64,
    parent: Option<(usize, usize)>,
    provider_index: usize,
    t0: Duration,
    /// The latency the provider declared for a timed leaf. Blocking legs
    /// (`None`) measure `now - t0` on the driver instead. Timed legs must
    /// carry the declared value: their timer deadline is
    /// `t0.saturating_add(latency)`, and once that clamps (a deadline at
    /// the far end of `Duration`), `now - t0` under-reports by `t0` —
    /// records, histograms, and the policy would see a latency the
    /// provider never declared.
    declared: Option<Duration>,
    result: LeafOutcome,
    /// Whether a reserved-but-unbound worker slot rides with this event
    /// (blocking legs only); the driver releases it after processing.
    orphan_slot: bool,
}

enum Event<'env> {
    Leaf(LeafEvent),
    Task(TaskFn<'env>),
}

/// A scheduled event. The heap is a max-heap, so `Ord` is reversed on
/// `(deadline, seq)`: the earliest deadline — ties broken by schedule
/// order — is popped first, giving timers a deterministic total order.
struct Timer<'env> {
    deadline: Duration,
    seq: u64,
    event: Event<'env>,
}

impl PartialEq for Timer<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for Timer<'_> {}

impl PartialOrd for Timer<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Timer<'_> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The status a resolved subtree delivers to its parent frame — the
/// event-model twin of the old walker's `NodeStatus`, plus panics (which
/// the thread model expressed by unwinding).
enum Status {
    Succeeded,
    Failed,
    Cancelled,
    Panicked(PanicPayload),
}

/// A started `Seq`/`Par` node. ~100 bytes against the old model's one OS
/// thread (8 KiB stack minimum) per running leg.
struct Frame {
    parent: Option<(usize, usize)>,
    /// Child-index path of this node within the strategy tree.
    path: Vec<usize>,
    kind: FrameKind,
}

enum FrameKind {
    /// A sequential chain: `next` is the next child to start.
    Seq { next: usize, len: usize },
    /// A parallel fan-out waiting on `pending` children. Mirrors the
    /// walker's join-then-fold: every child (panicked or not) is awaited,
    /// then the lowest-ordinal panic wins, else success, else
    /// cancellation, else failure.
    Par {
        pending: usize,
        succeeded: bool,
        cancelled: bool,
        panicked: Option<(usize, PanicPayload)>,
    },
    /// Resolved; kept in the arena until the request completes so frame
    /// accounting reflects true per-request memory.
    Resolved,
}

/// One in-flight request.
struct RequestState<'env> {
    strategy: Shared<'env, Strategy>,
    providers: Shared<'env, [Arc<dyn Provider>]>,
    request: Shared<'env, Invocation>,
    collector: Option<Shared<'env, Collector>>,
    telemetry: Option<Shared<'env, Telemetry>>,
    budget: Budget,
    policy: PolicyState,
    started_at: Duration,
    invocations: Vec<InvocationOutcome>,
    pruned: Option<super::PruneDetail>,
    frames: Vec<Frame>,
    done: Option<DoneFn<'env>>,
}

impl RequestState<'_> {
    /// The global stop check, applied before starting any leg (identical
    /// to the old walker's): the policy has halted the walk, or the budget
    /// prunes. The first prune is recorded for attribution.
    fn stopped(&mut self, clock: &dyn Clock) -> bool {
        if self.policy.halted() {
            return true;
        }
        if let Some(detail) = self.budget.prune_detail(clock) {
            if self.pruned.is_none() {
                self.pruned = Some(detail);
            }
            return true;
        }
        false
    }
}

/// Point-in-time occupancy of an [`EventCore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CoreStats {
    /// Requests currently in flight.
    pub in_flight: usize,
    /// Live `Seq`/`Par` frames across all in-flight requests.
    pub frames_live: usize,
    /// High-water mark of `frames_live` since the core was created.
    pub frames_peak: usize,
}

struct CoreState<'env> {
    ready: VecDeque<Event<'env>>,
    timers: BinaryHeap<Timer<'env>>,
    timer_seq: u64,
    requests: BTreeMap<u64, RequestState<'env>>,
    next_req: u64,
    frames_live: usize,
    frames_peak: usize,
    shutdown: bool,
}

/// Everything processing defers to after the core lock is released.
#[derive(Default)]
struct Deferred<'env> {
    spawns: Vec<BlockingTask>,
    dones: Vec<(DoneFn<'env>, RequestResult)>,
    tasks: Vec<TaskFn<'env>>,
    release_slots: usize,
}

/// The event-driven execution core (see the module docs).
pub(crate) struct EventCore<'env> {
    clock: Shared<'env, dyn Clock + 'env>,
    state: Mutex<CoreState<'env>>,
    /// Set (after pushing, before [`Clock::notify_sleepers`]) by anyone
    /// posting work from outside the driver; the driver's idle wait
    /// re-checks it so a post-while-falling-asleep is never lost.
    signal: AtomicBool,
}

impl std::fmt::Debug for EventCore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("EventCore")
            .field("in_flight", &stats.in_flight)
            .field("frames_live", &stats.frames_live)
            .finish_non_exhaustive()
    }
}

/// Resolves a child-index path to the node's shallow shape.
enum NodeShape {
    Leaf(usize),
    Seq(usize),
    Par(usize),
}

fn node_shape(strategy: &Strategy, path: &[usize]) -> NodeShape {
    let mut node = strategy.node();
    for &index in path {
        node = match node {
            Node::Seq(children) | Node::Par(children) => &children[index],
            Node::Leaf(_) => unreachable!("paths never descend into leaves"),
        };
    }
    match node {
        Node::Leaf(id) => NodeShape::Leaf(id.index()),
        Node::Seq(children) => NodeShape::Seq(children.len()),
        Node::Par(children) => NodeShape::Par(children.len()),
    }
}

impl<'env> EventCore<'env> {
    pub(crate) fn new(clock: Shared<'env, dyn Clock + 'env>) -> Self {
        EventCore {
            clock,
            state: Mutex::new(CoreState {
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
                requests: BTreeMap::new(),
                next_req: 0,
                frames_live: 0,
                frames_peak: 0,
                shutdown: false,
            }),
            signal: AtomicBool::new(false),
        }
    }

    /// The clock this core schedules on.
    pub(crate) fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    /// Current occupancy counters.
    pub(crate) fn stats(&self) -> CoreStats {
        let state = self.state.lock();
        CoreStats {
            in_flight: state.requests.len(),
            frames_live: state.frames_live,
            frames_peak: state.frames_peak,
        }
    }

    /// Bytes of core-resident state per started `Seq`/`Par` node.
    pub(crate) fn frame_bytes() -> usize {
        std::mem::size_of::<Frame>()
    }

    /// Admits a request and starts its root node synchronously (so
    /// `started_at` is the submission instant, exactly like the walker).
    /// Blocking legs the root fans out immediately are handed to `spawn`;
    /// a request whose whole tree resolves synchronously (e.g. a
    /// pre-tripped budget) has its `done` callback run before this
    /// returns.
    pub(crate) fn submit(&self, spec: RequestSpec<'env>, spawn: &dyn Fn(BlockingTask)) -> u64 {
        let mut deferred = Deferred::default();
        let req;
        {
            let mut state = self.state.lock();
            req = state.next_req;
            state.next_req += 1;
            if state.shutdown {
                deferred.dones.push((spec.done, RequestResult::Shutdown));
            } else {
                if let Some(telemetry) = &spec.telemetry {
                    telemetry.record_engine_request_start();
                }
                let started_at = self.clock().now();
                state.requests.insert(
                    req,
                    RequestState {
                        strategy: spec.strategy,
                        providers: spec.providers,
                        request: spec.request,
                        collector: spec.collector,
                        telemetry: spec.telemetry,
                        budget: spec.budget,
                        policy: spec.policy,
                        started_at,
                        invocations: Vec::new(),
                        pruned: None,
                        frames: Vec::new(),
                        done: Some(spec.done),
                    },
                );
                self.start_node(&mut state, &mut deferred, req, Vec::new(), None);
            }
        }
        self.flush(deferred, spawn);
        self.wake();
        req
    }

    /// Drives the core until request `req` resolves. The calling thread is
    /// the driver: it should hold a worker slot on the clock.
    pub(crate) fn drive_request(&self, req: u64, spawn: &dyn Fn(BlockingTask)) {
        while self.step(spawn, &|state| !state.requests.contains_key(&req)) {}
    }

    /// Drives the core until [`EventCore::shutdown`] is called. This is
    /// the gateway's event-loop thread body.
    pub(crate) fn run_loop(&self, spawn: &dyn Fn(BlockingTask)) {
        while self.step(spawn, &|state| state.shutdown) {}
    }

    /// Queues an embedder thunk on the ready queue.
    pub(crate) fn post_task(&self, task: TaskFn<'env>) {
        {
            let mut state = self.state.lock();
            if !state.shutdown {
                state.ready.push_back(Event::Task(task));
            }
        }
        self.wake();
    }

    /// Schedules an embedder thunk to run once the clock reaches
    /// `deadline`.
    pub(crate) fn schedule_task(&self, deadline: Duration, task: TaskFn<'env>) {
        {
            let mut state = self.state.lock();
            if !state.shutdown {
                let seq = state.timer_seq;
                state.timer_seq += 1;
                state.timers.push(Timer {
                    deadline,
                    seq,
                    event: Event::Task(task),
                });
            }
        }
        self.wake();
    }

    /// Shuts the core down: every in-flight request's `done` callback
    /// fires with [`RequestResult::Shutdown`], queued events are dropped
    /// (releasing any worker slots riding on them), and the drivers exit.
    /// Blocking legs still on provider threads finish on their own and
    /// release their slots when they find the core shut down.
    pub(crate) fn shutdown(&self) {
        let mut deferred = Deferred::default();
        {
            let mut state = self.state.lock();
            state.shutdown = true;
            while let Some(event) = state.ready.pop_front() {
                if let Event::Leaf(leaf) = event {
                    if leaf.orphan_slot {
                        deferred.release_slots += 1;
                    }
                }
            }
            state.timers.clear();
            let requests = std::mem::take(&mut state.requests);
            for (_, mut request) in requests {
                state.frames_live -= request.frames.len();
                if let Some(telemetry) = &request.telemetry {
                    telemetry.record_engine_frames_done(request.frames.len());
                    telemetry.record_engine_request_end();
                }
                if let Some(done) = request.done.take() {
                    deferred.dones.push((done, RequestResult::Shutdown));
                }
            }
        }
        for _ in 0..deferred.release_slots {
            self.clock().release_worker();
        }
        for (done, result) in deferred.dones {
            done(result);
        }
        self.wake();
    }

    /// Posts a leaf completion from a blocking task's thread. If the core
    /// has shut down the event is dropped and its orphan slot released
    /// here, so an abandoned in-flight leg cannot freeze the clock.
    fn post_leaf(&self, event: LeafEvent) {
        let release_now = {
            let mut state = self.state.lock();
            if state.shutdown {
                event.orphan_slot
            } else {
                state.ready.push_back(Event::Leaf(event));
                false
            }
        };
        if release_now {
            self.clock().release_worker();
        }
        self.wake();
    }

    /// Signals the drivers that new events exist. The first signal in a
    /// quiet period also *reserves a worker slot on the clock*: a driver
    /// idling in [`Clock::sleep_until_or`] stays registered as a deadline
    /// sleeper until it actually wakes, so without the reservation a
    /// third thread deregistering (e.g. a submitter dropping its
    /// [`WorkerGuard`]) could advance virtual time to the driver's own
    /// deadline while posted events sit unprocessed — time running ahead
    /// of work that was runnable at the earlier instant. The slot is
    /// released when a driver disarms the signal ([`EventCore::step`]'s
    /// idle path) or, if no driver ever runs again, on drop.
    fn wake(&self) {
        // Events are pushed before wake() is called and a driver disarms
        // before re-checking the queues, so if the signal reads armed here
        // the driver is guaranteed to find our event; only an unarmed
        // signal needs the reservation. Reserving *before* publishing the
        // armed state keeps the slot count conservative: a concurrent
        // disarm can only release a reservation that already exists.
        if !self.signal.load(Ordering::SeqCst) {
            self.clock().reserve_worker();
            if self.signal.swap(true, Ordering::SeqCst) {
                self.clock().release_worker();
            }
        }
        self.clock().notify_sleepers();
    }

    /// Disarms the wake signal, releasing the clock slot [`wake`] reserved
    /// with it. Returns with the signal observed `false`.
    ///
    /// [`wake`]: EventCore::wake
    fn disarm(&self) {
        if self.signal.swap(false, Ordering::SeqCst) {
            self.clock().release_worker();
        }
    }

    /// One driver iteration: process a ready event, else a due timer, else
    /// wait. Returns `false` once `stop` holds.
    fn step(&self, spawn: &dyn Fn(BlockingTask), stop: &dyn Fn(&CoreState<'env>) -> bool) -> bool {
        let mut deferred = Deferred::default();
        {
            let mut state = self.state.lock();
            if stop(&state) {
                return false;
            }
            let event = if let Some(event) = state.ready.pop_front() {
                Some(event)
            } else {
                let now = self.clock().now();
                if state.timers.peek().is_some_and(|t| t.deadline <= now) {
                    state.timers.pop().map(|t| t.event)
                } else {
                    None
                }
            };
            if let Some(event) = event {
                self.process_event(&mut state, &mut deferred, event);
                drop(state);
                self.flush(deferred, spawn);
                return true;
            }
        }
        // Idle: disarm the signal, then re-check under the lock — a post
        // that landed between the unlock above and the disarm is caught
        // here; one that lands later re-arms the signal our wait watches
        // (and re-reserves the clock slot that keeps virtual time from
        // advancing over it).
        self.disarm();
        let deadline = {
            let state = self.state.lock();
            if stop(&state) {
                return false;
            }
            let now = self.clock().now();
            if !state.ready.is_empty() || state.timers.peek().is_some_and(|t| t.deadline <= now) {
                return true;
            }
            state.timers.peek().map(|t| t.deadline)
        };
        self.clock()
            .sleep_until_or(deadline, &|| self.signal.load(Ordering::SeqCst));
        true
    }

    fn flush(&self, deferred: Deferred<'env>, spawn: &dyn Fn(BlockingTask)) {
        // Orphan slots are released only after processing (and after any
        // new reservations processing made), so virtual time never runs
        // ahead of a completion the driver has not finished accounting.
        for _ in 0..deferred.release_slots {
            self.clock().release_worker();
        }
        for (done, result) in deferred.dones {
            done(result);
        }
        for task in deferred.tasks {
            task();
        }
        for task in deferred.spawns {
            spawn(task);
        }
    }

    fn process_event(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        event: Event<'env>,
    ) {
        match event {
            Event::Task(task) => deferred.tasks.push(task),
            Event::Leaf(leaf) => self.process_leaf(state, deferred, leaf),
        }
    }

    /// Completes one leaf: records the invocation exactly as the old
    /// walker did (outcome, collector, telemetry, policy — in that order)
    /// and delivers the resulting status to the parent frame. A completion
    /// for a request that no longer exists (core shut down concurrently)
    /// only releases its slot.
    fn process_leaf(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        event: LeafEvent,
    ) {
        if event.orphan_slot {
            deferred.release_slots += 1;
        }
        let status = match event.result {
            LeafOutcome::Panicked(panic) => Status::Panicked(panic),
            LeafOutcome::Completed(result) => {
                let clock = self.clock();
                let Some(request) = state.requests.get_mut(&event.req) else {
                    return;
                };
                let provider = Arc::clone(&request.providers[event.provider_index]);
                let now = clock.now();
                // Timed legs report the latency the provider declared; on
                // an unclamped virtual clock `now - t0` equals it exactly,
                // but a saturated deadline would silently shrink it by t0.
                let latency = event
                    .declared
                    .unwrap_or_else(|| now.saturating_sub(event.t0));
                let success = result.is_ok();
                let outcome = InvocationOutcome {
                    provider_id: provider.id().to_string(),
                    capability: provider.capability().to_string(),
                    payload: result.as_ref().ok().cloned(),
                    latency,
                    cost: provider.cost(),
                    success,
                };
                if let Some(collector) = &request.collector {
                    collector.record(
                        provider.id(),
                        ExecutionRecord {
                            success,
                            latency,
                            cost: provider.cost(),
                        },
                    );
                }
                if let Some(telemetry) = &request.telemetry {
                    telemetry.record_invocation(provider.id(), success, latency, provider.cost());
                }
                request.invocations.push(outcome);
                match result {
                    Ok(payload) => {
                        let at = now.saturating_sub(request.started_at);
                        request.policy.on_success(payload, at);
                        Status::Succeeded
                    }
                    Err(_) => Status::Failed,
                }
            }
        };
        self.deliver(state, deferred, event.req, event.parent, status);
    }

    /// Starts the node at `path`, delivering to `parent` when it resolves.
    fn start_node(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        req: u64,
        path: Vec<usize>,
        parent: Option<(usize, usize)>,
    ) {
        let clock = self.clock();
        let Some(request) = state.requests.get_mut(&req) else {
            return;
        };
        match node_shape(&request.strategy, &path) {
            NodeShape::Leaf(provider_index) => {
                // The short-circuit: once the policy halts or the budget
                // trips, new invocations never start (never charged).
                if request.stopped(clock) {
                    self.deliver(state, deferred, req, parent, Status::Cancelled);
                    return;
                }
                let provider = Arc::clone(&request.providers[provider_index]);
                if let Some((latency, result)) = provider.try_timed_invoke(&request.request, clock)
                {
                    let t0 = clock.now();
                    let seq = state.timer_seq;
                    state.timer_seq += 1;
                    state.timers.push(Timer {
                        deadline: t0.saturating_add(latency),
                        seq,
                        event: Event::Leaf(LeafEvent {
                            req,
                            parent,
                            provider_index,
                            t0,
                            declared: Some(latency),
                            result: LeafOutcome::Completed(result),
                            orphan_slot: false,
                        }),
                    });
                } else {
                    // Reserve the slot *now*, under the core lock, so the
                    // clock cannot advance before the task's thread binds
                    // it — the same reserve-before-spawn discipline as the
                    // old walker.
                    clock.reserve_worker();
                    deferred.spawns.push(BlockingTask {
                        req,
                        parent,
                        provider_index,
                        provider,
                        invocation: (*request.request).clone(),
                    });
                }
            }
            NodeShape::Seq(len) => {
                let frame = self.alloc_frame(
                    state,
                    req,
                    Frame {
                        parent,
                        path,
                        kind: FrameKind::Seq { next: 0, len },
                    },
                );
                self.advance_seq(state, deferred, req, frame);
            }
            NodeShape::Par(len) => {
                let frame = self.alloc_frame(
                    state,
                    req,
                    Frame {
                        parent,
                        path: path.clone(),
                        kind: FrameKind::Par {
                            pending: len,
                            succeeded: false,
                            cancelled: false,
                            panicked: None,
                        },
                    },
                );
                if len == 0 {
                    self.resolve_frame(state, deferred, req, frame, Status::Failed);
                    return;
                }
                // Fan every child out before any completion can process:
                // `pending` starts at `len`, so even a zero-latency child
                // resolving synchronously cannot fold the Par early.
                for ordinal in 0..len {
                    let mut child_path = path.clone();
                    child_path.push(ordinal);
                    self.start_node(state, deferred, req, child_path, Some((frame, ordinal)));
                }
            }
        }
    }

    fn alloc_frame(&self, state: &mut CoreState<'env>, req: u64, frame: Frame) -> usize {
        state.frames_live += 1;
        if state.frames_live > state.frames_peak {
            state.frames_peak = state.frames_live;
        }
        let request = state
            .requests
            .get_mut(&req)
            .expect("frame allocated for a live request");
        if let Some(telemetry) = &request.telemetry {
            telemetry.record_engine_frame();
        }
        request.frames.push(frame);
        request.frames.len() - 1
    }

    /// Starts the next leg of a Seq frame — checking the stop condition at
    /// exactly the instants the old walker did: before each child, but not
    /// after the last one (an exhausted chain reports `Failed` as-is).
    fn advance_seq(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        req: u64,
        frame: usize,
    ) {
        enum Step {
            Exhausted,
            Stopped,
            Start(Vec<usize>, usize),
        }
        let clock = self.clock();
        let step = {
            let Some(request) = state.requests.get_mut(&req) else {
                return;
            };
            let FrameKind::Seq { next, len } = request.frames[frame].kind else {
                unreachable!("advance_seq on a non-Seq frame");
            };
            if next == len {
                Step::Exhausted
            } else if request.stopped(clock) {
                Step::Stopped
            } else {
                request.frames[frame].kind = FrameKind::Seq {
                    next: next + 1,
                    len,
                };
                let mut child_path = request.frames[frame].path.clone();
                child_path.push(next);
                Step::Start(child_path, next)
            }
        };
        match step {
            Step::Exhausted => self.resolve_frame(state, deferred, req, frame, Status::Failed),
            Step::Stopped => self.resolve_frame(state, deferred, req, frame, Status::Cancelled),
            Step::Start(child_path, ordinal) => {
                self.start_node(state, deferred, req, child_path, Some((frame, ordinal)));
            }
        }
    }

    /// Marks `frame` resolved and delivers `status` to its parent.
    fn resolve_frame(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        req: u64,
        frame: usize,
        status: Status,
    ) {
        let parent = {
            let Some(request) = state.requests.get_mut(&req) else {
                return;
            };
            request.frames[frame].kind = FrameKind::Resolved;
            request.frames[frame].parent
        };
        self.deliver(state, deferred, req, parent, status);
    }

    /// Delivers a resolved child's status to its parent slot (`None` =
    /// the strategy root; the request itself resolves).
    fn deliver(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        req: u64,
        slot: Option<(usize, usize)>,
        status: Status,
    ) {
        let Some((frame, ordinal)) = slot else {
            self.resolve_request(state, deferred, req, status);
            return;
        };
        enum Next {
            Advance,
            Resolve(Status),
            Wait,
        }
        let next = {
            let Some(request) = state.requests.get_mut(&req) else {
                return;
            };
            let absorbs = request.policy.seq_absorbs_success();
            match &mut request.frames[frame].kind {
                FrameKind::Seq { .. } => match status {
                    // A panic aborts the chain immediately, as unwinding
                    // did in the thread model.
                    Status::Panicked(panic) => Next::Resolve(Status::Panicked(panic)),
                    // Under first-success semantics a succeeding fail-over
                    // leg absorbs the chain; under quorum every stage
                    // still runs so it can contribute votes.
                    Status::Succeeded if absorbs => Next::Resolve(Status::Succeeded),
                    Status::Cancelled => Next::Resolve(Status::Cancelled),
                    Status::Succeeded | Status::Failed => Next::Advance,
                },
                FrameKind::Par {
                    pending,
                    succeeded,
                    cancelled,
                    panicked,
                } => {
                    match status {
                        Status::Succeeded => *succeeded = true,
                        Status::Cancelled => *cancelled = true,
                        Status::Failed => {}
                        Status::Panicked(panic) => {
                            // The thread model re-raised the first panic
                            // in child order (inline leg first); keep the
                            // lowest ordinal.
                            if panicked.as_ref().is_none_or(|(o, _)| ordinal < *o) {
                                *panicked = Some((ordinal, panic));
                            }
                        }
                    }
                    *pending -= 1;
                    if *pending == 0 {
                        let final_status = if let Some((_, panic)) = panicked.take() {
                            Status::Panicked(panic)
                        } else if *succeeded {
                            Status::Succeeded
                        } else if *cancelled {
                            Status::Cancelled
                        } else {
                            Status::Failed
                        };
                        Next::Resolve(final_status)
                    } else {
                        Next::Wait
                    }
                }
                FrameKind::Resolved => unreachable!("delivery to a resolved frame"),
            }
        };
        match next {
            Next::Advance => self.advance_seq(state, deferred, req, frame),
            Next::Resolve(status) => self.resolve_frame(state, deferred, req, frame, status),
            Next::Wait => {}
        }
    }

    /// The root resolved: assembles the [`EngineOutcome`] (at the
    /// resolution instant — every leg has completed by construction) and
    /// defers the request's `done` callback.
    fn resolve_request(
        &self,
        state: &mut CoreState<'env>,
        deferred: &mut Deferred<'env>,
        req: u64,
        status: Status,
    ) {
        let Some(mut request) = state.requests.remove(&req) else {
            return;
        };
        state.frames_live -= request.frames.len();
        if let Some(telemetry) = &request.telemetry {
            telemetry.record_engine_frames_done(request.frames.len());
            telemetry.record_engine_request_end();
        }
        let result = match status {
            Status::Panicked(panic) => RequestResult::Panicked(panic),
            Status::Succeeded | Status::Failed | Status::Cancelled => {
                let invocations = std::mem::take(&mut request.invocations);
                let cost = invocations.iter().map(|i| i.cost).sum();
                let fallback = self.clock().now().saturating_sub(request.started_at);
                let (completion, latency) = request.policy.finish(fallback);
                let prune_detail = request.pruned;
                RequestResult::Finished(EngineOutcome {
                    completion,
                    latency,
                    cost,
                    invocations,
                    pruned: prune_detail.map(|d| d.reason),
                    prune_detail,
                })
            }
        };
        if let Some(done) = request.done.take() {
            deferred.dones.push((done, result));
        }
    }
}

impl Drop for EventCore<'_> {
    fn drop(&mut self) {
        // An armed wake signal holds a reserved worker slot on the clock
        // (see `wake`). If no driver runs again — the core shut down, or a
        // per-request core finished its walk — the slot must not outlive
        // the core, or it would freeze virtual time for every other user
        // of a shared clock.
        self.disarm();
    }
}

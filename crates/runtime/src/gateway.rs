//! The edge gateway: the centrepiece of the paper's system design
//! (Section IV, Fig. 4).
//!
//! The gateway accepts client service requests by `ServiceID`, fetches and
//! caches the service script from the market, resolves each equivalent
//! microservice to its best provider (Assumption 1), and runs the
//! **feedback loop**: the *collector* records per-provider QoS, the
//! *generator* re-synthesizes the execution strategy at every time-slot
//! boundary, and the *strategy executor* carries it out on real threads.
//! The first slot runs the default strategy to gather observations; each
//! later slot runs the strategy generated from the previous slot's data,
//! so the system self-adapts to dissimilar and drifting environments.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, PoisonError, Weak};
use std::time::Duration;

use parking_lot::{Mutex, RwLock};

use qce_strategy::{Attribute, EnvQos, PlanCacheHub, Qos, Requirements, Strategy};

use crate::clock::{Clock, WallClock, WorkerGuard};
use crate::collector::Collector;
use crate::device::Provider;
use crate::engine::event::{
    run_blocking, BlockingTask, DoneFn, EventCore, PanicPayload, RequestResult, RequestSpec,
    Shared, TaskFn,
};
use crate::engine::{
    Budget, Completion, CompletionPolicy, EngineStats, ExecSpec, ExecutionEngine, PolicyState,
    PoolStats, PruneDetail, PruneReason,
};
use crate::generator::{Planner, SlotPlan, StrategyOrigin, SynthesisSettings};
use crate::market::Market;
use crate::message::{Invocation, RuntimeError};
use crate::registry::Registry;
use crate::request::{QosClass, Request, CLASS_COUNT};
use crate::script::{MsSpec, ServiceScript};
use crate::telemetry::Telemetry;

/// Gateway configuration knobs.
///
/// Construct with [`GatewayConfig::builder`] (the struct is
/// `#[non_exhaustive]`, so literal construction outside the crate does not
/// compile — new knobs must never be a breaking change again).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct GatewayConfig {
    /// Sliding-window size of the QoS collector (observations per
    /// provider).
    pub collector_window: usize,
    /// Exhaustive/approximation threshold `θ` for the generator.
    pub generator_threshold: usize,
    /// Worker threads for the per-slot exhaustive search (`0` = one per
    /// available core).
    pub generator_parallelism: usize,
    /// Branch-and-bound pruning for the per-slot exhaustive search.
    /// Never changes the chosen strategy, only how fast it is found.
    pub generator_pruning: bool,
    /// Warm-start each slot's search with the previous slot's winner as
    /// the initial pruning bar. Never changes the chosen strategy, only
    /// how fast it is found.
    pub generator_warm_start: bool,
    /// Cache winning plans per service, keyed by the search inputs, so a
    /// slot whose environment is unchanged skips the search entirely.
    pub plan_cache: bool,
    /// Plan-cache capacity (entries per service) when `plan_cache` is on.
    pub plan_cache_capacity: usize,
    /// Plan-cache key quantization step. `0.0` (the default) keys on exact
    /// bit patterns, making cache hits provably bit-identical to a fresh
    /// search; positive steps trade that exactness for more hits under
    /// small environment drift.
    pub plan_quantize: f64,
    /// Which search backend plans each slot: a fixed backend
    /// (`Exhaustive` / `Greedy` / `Beam(W)`), the paper's threshold rule
    /// (`Threshold`, the default), or a per-service UCB1 bandit over the
    /// backends (`Auto`).
    pub planner: qce_strategy::BackendChoice,
    /// Re-plan at a slot boundary only when the collector's QoS table has
    /// drifted outside the active plan's quantization band (measured with
    /// [`env_drift`](crate::env_drift) at `plan_quantize` granularity).
    /// `false` (the default) re-plans at every boundary, the paper's
    /// fixed-cadence behavior.
    pub replan_on_drift: bool,
    /// Maximum [`SlotRecord`]s kept per service; older records are evicted
    /// (and counted in telemetry) so long-running services don't leak.
    pub history_limit: usize,
    /// Capacity of the telemetry event ring.
    pub telemetry_events: usize,
    /// Maximum concurrent invocations per service (`0` = unlimited).
    /// Requests beyond the limit wait in the admission queue.
    pub max_in_flight: usize,
    /// Admission-queue capacity per service. When a service is at its
    /// in-flight limit *and* this many requests are already queued, further
    /// requests are shed with [`RuntimeError::Overloaded`].
    pub admission_queue: usize,
    /// Per-request deadline, measured from admission. Legs of the strategy
    /// that have not started when the deadline passes are pruned; legs
    /// already in flight complete and are charged (Assumption 2).
    pub request_deadline: Option<Duration>,
    /// Persistent worker threads in the execution engine's pool (`0` = no
    /// pool; every parallel leg runs on its own one-shot thread).
    pub worker_pool: usize,
    /// Event-loop threads draining asynchronous submissions
    /// ([`Gateway::submit_async`]). Requests are state machines on a shared
    /// event core, so one loop drains every service; extra loops only help
    /// when per-event CPU work (planning, result assembly) saturates a
    /// core. `0` is treated as `1`.
    pub event_loops: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            collector_window: 100,
            generator_threshold: qce_strategy::generate::DEFAULT_THRESHOLD,
            generator_parallelism: 0,
            generator_pruning: true,
            generator_warm_start: false,
            plan_cache: false,
            plan_cache_capacity: 64,
            plan_quantize: 0.0,
            planner: qce_strategy::BackendChoice::Threshold,
            replan_on_drift: false,
            history_limit: 1024,
            telemetry_events: 1024,
            max_in_flight: 0,
            admission_queue: 16,
            request_deadline: None,
            worker_pool: 8,
            event_loops: 1,
        }
    }
}

impl GatewayConfig {
    /// Starts a builder seeded with the default configuration.
    #[must_use]
    pub fn builder() -> GatewayConfigBuilder {
        GatewayConfigBuilder::new()
    }

    /// The synthesis-engine settings implied by this configuration.
    #[must_use]
    pub fn synthesis_settings(&self) -> SynthesisSettings {
        SynthesisSettings {
            threshold: self.generator_threshold,
            parallelism: self.generator_parallelism,
            pruning: self.generator_pruning,
            warm_start: self.generator_warm_start,
            plan_cache: self.plan_cache,
            plan_cache_capacity: self.plan_cache_capacity,
            plan_quantize: self.plan_quantize,
            planner: self.planner,
            replan_on_drift: self.replan_on_drift,
        }
    }
}

/// Builder for [`GatewayConfig`]: every knob starts at its default and is
/// overridden fluently.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::GatewayConfig;
///
/// let config = GatewayConfig::builder()
///     .max_in_flight(4)
///     .admission_queue(8)
///     .request_deadline(Some(Duration::from_millis(100)))
///     .build();
/// assert_eq!(config.max_in_flight, 4);
/// assert_eq!(config.collector_window, 100, "untouched knobs keep defaults");
/// ```
#[derive(Debug, Clone, Default)]
pub struct GatewayConfigBuilder {
    config: GatewayConfig,
}

macro_rules! config_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $field(mut self, $field: $ty) -> Self {
                self.config.$field = $field;
                self
            }
        )*
    };
}

impl GatewayConfigBuilder {
    /// A builder seeded with [`GatewayConfig::default`].
    #[must_use]
    pub fn new() -> Self {
        GatewayConfigBuilder::default()
    }

    config_setters! {
        /// See [`GatewayConfig::collector_window`].
        collector_window: usize,
        /// See [`GatewayConfig::generator_threshold`].
        generator_threshold: usize,
        /// See [`GatewayConfig::generator_parallelism`].
        generator_parallelism: usize,
        /// See [`GatewayConfig::generator_pruning`].
        generator_pruning: bool,
        /// See [`GatewayConfig::generator_warm_start`].
        generator_warm_start: bool,
        /// See [`GatewayConfig::plan_cache`].
        plan_cache: bool,
        /// See [`GatewayConfig::plan_cache_capacity`].
        plan_cache_capacity: usize,
        /// See [`GatewayConfig::plan_quantize`].
        plan_quantize: f64,
        /// See [`GatewayConfig::planner`].
        planner: qce_strategy::BackendChoice,
        /// See [`GatewayConfig::replan_on_drift`].
        replan_on_drift: bool,
        /// See [`GatewayConfig::history_limit`].
        history_limit: usize,
        /// See [`GatewayConfig::telemetry_events`].
        telemetry_events: usize,
        /// See [`GatewayConfig::max_in_flight`].
        max_in_flight: usize,
        /// See [`GatewayConfig::admission_queue`].
        admission_queue: usize,
        /// See [`GatewayConfig::request_deadline`].
        request_deadline: Option<Duration>,
        /// See [`GatewayConfig::worker_pool`].
        worker_pool: usize,
        /// See [`GatewayConfig::event_loops`].
        event_loops: usize,
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> GatewayConfig {
        self.config
    }
}

/// The gateway's warning that a generated strategy cannot meet the QoS
/// requirements (Section IV.C: "the gateway reports the estimated
/// unsatisfied QoS to the client, which then determines whether the service
/// request with this expected QoS should be continued").
#[derive(Debug, Clone, PartialEq)]
pub struct QosAdvisory {
    /// The estimated QoS of the best strategy the generator could find.
    pub estimated: Qos,
    /// Which attributes miss their requirements.
    pub violations: Vec<Attribute>,
}

/// A completed service request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceResponse {
    /// Correlates with the client request.
    pub request_id: u64,
    /// The traffic class the request was admitted under, after resolving
    /// the request's explicit class against the service's live override
    /// and the [`QosClass::default`] fallback.
    pub class: QosClass,
    /// Whether any equivalent microservice succeeded.
    pub success: bool,
    /// Payload of the winning microservice, if any.
    pub payload: Option<Vec<u8>>,
    /// Wall-clock latency to the first success (or total failure).
    pub latency: Duration,
    /// Total cost charged (Assumption 2).
    pub cost: f64,
    /// The strategy that served the request.
    pub strategy: Strategy,
    /// The strategy rendered with the script's microservice names.
    pub strategy_text: String,
    /// Zero-based time slot the request fell into.
    pub slot: u64,
    /// How the slot's strategy was chosen.
    pub origin: StrategyOrigin,
    /// Present when the generator expects the QoS requirements to be
    /// missed (the client decides whether to continue).
    pub advisory: Option<QosAdvisory>,
    /// `(votes for the answer, votes cast)` when the script requests quorum
    /// execution (§VII); `None` under first-success semantics.
    pub votes: Option<(usize, usize)>,
    /// Present when the request's budget stopped the walk early: the
    /// deadline passed, or the service was evicted mid-request. Legs that
    /// had not started were skipped; the reported outcome covers only the
    /// legs that ran.
    pub pruned: Option<PruneReason>,
    /// Full attribution of the prune (reason, class, remaining deadline
    /// budget at the prune instant). Always present when
    /// [`ServiceResponse::pruned`] is.
    pub prune_detail: Option<PruneDetail>,
}

/// Record of one time slot's planning decision, kept for diagnostics and
/// for the adaptation experiments (Fig. 8).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotRecord {
    /// Zero-based slot index.
    pub slot: u64,
    /// The strategy chosen for the slot, with script names.
    pub strategy_text: String,
    /// How it was chosen.
    pub origin: StrategyOrigin,
    /// The generator's QoS estimate for the slot's strategy.
    pub estimated: Option<Qos>,
}

struct ActivePlan {
    plan: SlotPlan,
    providers: Vec<Arc<dyn Provider>>,
    /// Names of the microservices the plan was synthesized over, aligned
    /// with the strategy's indices. Usually the script's full name list,
    /// but a subset when providers for some capabilities were missing at
    /// planning time (the slot plans over what it has).
    names: Vec<String>,
    /// The effective requirement the plan was synthesized against, so the
    /// drift trigger never holds a plan across a live requirement change.
    requirement: Requirements,
}

struct ServiceState {
    script: ServiceScript,
    /// Persistent per-service planner: keeps the warm-start incumbent and
    /// the plan cache alive across slot boundaries.
    planner: Planner,
    slot: u64,
    invocations_in_slot: u32,
    active: Option<ActivePlan>,
    history: VecDeque<SlotRecord>,
}

/// Per-service admission control: a bounded in-flight limit plus a
/// bounded, **class-aware** wait queue. Requests beyond both bounds are
/// shed ([`RuntimeError::Overloaded`]) instead of piling up unboundedly.
///
/// The queue is one FIFO per [`QosClass`]. A freed in-flight slot is
/// handed to the next waiter by smooth weighted round-robin over the
/// nonempty class queues ([`pick_class`]), so a backlogged service serves
/// classes in proportion to [`QosClass::weight`] without ever starving a
/// nonempty queue. When every queue slot is taken, an arriving request may
/// *preempt* the newest waiter of the lowest queued class
/// ([`AdmissionGate::preemption_victim`]): Scavenger waiters shed first to
/// any higher class, and Critical arrivals preempt any lower class. The
/// preempted waiter wakes and is shed exactly as if it had never been
/// queued.
///
/// Waiters block on a plain OS condvar, *not* on the execution clock. An
/// *unregistered* caller's wait stays invisible to
/// [`VirtualClock`](crate::VirtualClock) accounting (the clock only
/// advances over registered workers' sleeps); a caller that **is** a
/// registered clock worker (e.g. a load generator that registers its
/// client threads so virtual time cannot advance past them before they
/// issue their request) is marked passive for the duration of the wait,
/// so a queued worker never stalls the in-flight requests it is waiting
/// on.
struct AdmissionGate {
    /// In-flight limit (`0` = unlimited).
    limit: usize,
    /// Total queue capacity (across all classes) once the limit is reached.
    max_queue: usize,
    state: StdMutex<GateState>,
    freed: Condvar,
}

#[derive(Default)]
struct GateState {
    in_flight: usize,
    /// FIFO of waiter tickets per class, indexed by [`QosClass::index`].
    waiting: [VecDeque<u64>; CLASS_COUNT],
    /// Smooth weighted-round-robin accumulators, one per class.
    wrr: [i64; CLASS_COUNT],
    /// Tickets whose waiters have been handed a freed in-flight slot.
    granted: Vec<u64>,
    /// Tickets preempted out of their queue slot by a higher class.
    preempted: Vec<u64>,
    /// Continuations of asynchronous waiters ([`Gateway::submit_async`]),
    /// keyed by ticket. A ticket with no entry here belongs to a blocking
    /// waiter parked on the condvar. The waker is removed together with
    /// its ticket — on grant, preemption, or cancellation — so it fires
    /// exactly once.
    wakers: HashMap<u64, WakerFn>,
    next_ticket: u64,
}

impl GateState {
    fn queued(&self) -> usize {
        self.waiting.iter().map(VecDeque::len).sum()
    }
}

/// Picks which class dequeues next by smooth weighted round-robin (the
/// nginx variant): every nonempty class gains its weight, the largest
/// accumulator wins (ties to the higher-priority class) and pays back the
/// total gained. Admissions interleave proportionally to the weights, and
/// a class whose queue stays nonempty is picked at least once every
/// `total_weight` picks — no nonempty class is ever starved.
fn pick_class(wrr: &mut [i64; CLASS_COUNT], nonempty: [bool; CLASS_COUNT]) -> Option<usize> {
    let mut total = 0i64;
    let mut best: Option<usize> = None;
    for (index, has_waiters) in nonempty.iter().enumerate() {
        if !has_waiters {
            continue;
        }
        let weight = i64::from(QosClass::ALL[index].weight());
        wrr[index] += weight;
        total += weight;
        if best.is_none_or(|b| wrr[index] > wrr[b]) {
            best = Some(index);
        }
    }
    let winner = best?;
    wrr[winner] -= total;
    Some(winner)
}

/// Why a request could not be admitted.
struct Shed {
    in_flight: u64,
    queued: u64,
}

/// How an asynchronous admission ticket left the queue. Delivered to the
/// ticket's [`WakerFn`] exactly once.
enum AdmitOutcome {
    /// A freed in-flight slot was handed to this ticket (the slot is
    /// already counted; the continuation wraps it in an [`OwnedPermit`]).
    Granted,
    /// Preempted out of its queue slot by a higher-class arrival.
    Preempted { in_flight: u64, queued: u64 },
    /// The queue-wait deadline expired before a slot freed up.
    Expired,
    /// The gateway is shutting down; no slot will ever be granted.
    Shutdown,
}

/// Continuation of an asynchronous waiter. Invoked after the gate lock is
/// released wherever that is possible; the blocking [`AdmissionGate::admit`]
/// path invokes preemption wakers while still holding the gate lock (it must
/// keep the lock to park on the condvar), which is safe because wakers only
/// touch the event core, the response handle, and telemetry — never the
/// gate.
type WakerFn = Box<dyn FnOnce(AdmitOutcome) + Send>;

/// Immediate result of a non-blocking admission attempt. The waker is
/// consumed only when the ticket actually queues; otherwise it comes back
/// to the caller, who invokes (on admission) or discards (on shed) it.
enum AsyncAdmission {
    /// A slot was free: the request is in flight.
    Admitted(WakerFn),
    /// The request waits in its class queue under this ticket; its waker
    /// fires when the ticket leaves the queue.
    Queued(u64),
    /// Queue full and nobody to preempt.
    Shed(Shed, WakerFn),
}

impl AdmissionGate {
    fn new(limit: usize, max_queue: usize) -> Self {
        AdmissionGate {
            limit,
            max_queue,
            state: StdMutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    /// The class index an arriving request of `class` may preempt a waiter
    /// from: the lowest-priority nonempty queue, and only when that queue
    /// is strictly lower priority than the arrival *and* either the victim
    /// is Scavenger (sheds first, to anyone higher) or the arrival is
    /// Critical (preempts every lower class).
    fn preemption_victim(state: &GateState, class: QosClass) -> Option<usize> {
        let victim = (0..CLASS_COUNT)
            .rev()
            .find(|&i| !state.waiting[i].is_empty())?;
        let lower = victim > class.index();
        let eligible = victim == QosClass::Scavenger.index() || class == QosClass::Critical;
        (lower && eligible).then_some(victim)
    }

    /// Makes room for an arriving `class` request when the queue is full:
    /// evicts the newest waiter of the lowest eligible class. The chosen
    /// queue's occupancy is re-checked under the lock on every iteration —
    /// a victim ticket can leave the queue through another door (a
    /// Scavenger's queue deadline cancelling it, a freed slot granting it),
    /// so an empty pop falls through to the next candidate instead of
    /// panicking on a stale "has waiters" snapshot.
    ///
    /// Returns the evicted waiter's waker when the victim was asynchronous
    /// (to fire once the gate bookkeeping is done), `Ok(None)` when it was
    /// a blocking waiter (flagged via `preempted`), or `Err` when nobody is
    /// eligible and the arrival itself is shed.
    fn preempt_for(state: &mut GateState, class: QosClass) -> Result<Option<WakerFn>, Shed> {
        loop {
            let Some(victim_class) = Self::preemption_victim(state, class) else {
                return Err(Shed {
                    in_flight: state.in_flight as u64,
                    queued: state.queued() as u64,
                });
            };
            if let Some(ticket) = state.waiting[victim_class].pop_back() {
                if let Some(waker) = state.wakers.remove(&ticket) {
                    return Ok(Some(waker));
                }
                state.preempted.push(ticket);
                return Ok(None);
            }
        }
    }

    /// Admits the caller, blocking in its class's queue when the service
    /// is at its in-flight limit. `on_queue_depth` is called with
    /// `(class, class depth, total depth)` whenever this caller enters or
    /// leaves the queue. A caller registered as a worker of `clock` is
    /// marked passive while queued (see the type docs).
    fn admit<'a>(
        &'a self,
        class: QosClass,
        clock: &dyn Clock,
        on_queue_depth: impl Fn(QosClass, u64, u64),
    ) -> Result<AdmissionPermit<'a>, Shed> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if self.limit > 0 && state.in_flight >= self.limit {
            let mut evicted = None;
            if state.queued() >= self.max_queue {
                // Queue full. Either a lower-class waiter gives up its
                // slot to this arrival, or the arrival itself is shed.
                evicted = Self::preempt_for(&mut state, class)?;
                self.freed.notify_all();
            }
            if let Some(waker) = evicted {
                // An async victim's waker fires here, before parking. It
                // never touches the gate (see [`WakerFn`]), so invoking it
                // under the gate lock cannot deadlock.
                let (in_flight, queued) = (state.in_flight as u64, state.queued() as u64);
                waker(AdmitOutcome::Preempted { in_flight, queued });
            }
            let ticket = state.next_ticket;
            state.next_ticket += 1;
            let index = class.index();
            state.waiting[index].push_back(ticket);
            on_queue_depth(
                class,
                state.waiting[index].len() as u64,
                state.queued() as u64,
            );
            let registered = clock.thread_is_worker();
            if registered {
                clock.enter_passive();
            }
            let admitted = loop {
                if let Some(pos) = state.granted.iter().position(|&t| t == ticket) {
                    state.granted.swap_remove(pos);
                    break true;
                }
                if let Some(pos) = state.preempted.iter().position(|&t| t == ticket) {
                    state.preempted.swap_remove(pos);
                    break false;
                }
                state = self
                    .freed
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            };
            if registered {
                clock.exit_passive();
            }
            on_queue_depth(
                class,
                state.waiting[index].len() as u64,
                state.queued() as u64,
            );
            if !admitted {
                return Err(Shed {
                    in_flight: state.in_flight as u64,
                    queued: state.queued() as u64,
                });
            }
            // The releasing permit transferred its in-flight slot with the
            // grant, so `in_flight` already counts this request.
            return Ok(AdmissionPermit { gate: self });
        }
        state.in_flight += 1;
        Ok(AdmissionPermit { gate: self })
    }

    /// Non-blocking admission for [`Gateway::submit_async`]: admits
    /// immediately when a slot is free, otherwise queues the ticket with
    /// `waker` as its continuation — or sheds when the queue is full and
    /// nobody can be preempted. Mirrors [`AdmissionGate::admit`] except
    /// that queueing returns instead of parking.
    fn admit_async(
        &self,
        class: QosClass,
        waker: WakerFn,
        on_queue_depth: impl Fn(QosClass, u64, u64),
    ) -> AsyncAdmission {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if self.limit == 0 || state.in_flight < self.limit {
            state.in_flight += 1;
            return AsyncAdmission::Admitted(waker);
        }
        let mut evicted = None;
        if state.queued() >= self.max_queue {
            match Self::preempt_for(&mut state, class) {
                Ok(evicted_waker) => evicted = evicted_waker,
                Err(shed) => return AsyncAdmission::Shed(shed, waker),
            }
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        let index = class.index();
        state.waiting[index].push_back(ticket);
        state.wakers.insert(ticket, waker);
        on_queue_depth(
            class,
            state.waiting[index].len() as u64,
            state.queued() as u64,
        );
        let (in_flight, queued) = (state.in_flight as u64, state.queued() as u64);
        drop(state);
        self.freed.notify_all();
        if let Some(waker) = evicted {
            waker(AdmitOutcome::Preempted { in_flight, queued });
        }
        AsyncAdmission::Queued(ticket)
    }

    /// Withdraws a queued asynchronous ticket, returning its waker if the
    /// ticket was still waiting. `None` means the ticket already left the
    /// queue (granted, preempted, or cancelled) and its waker has fired or
    /// is about to — the caller must then do nothing.
    fn cancel_ticket(
        &self,
        class: QosClass,
        ticket: u64,
        on_queue_depth: impl Fn(QosClass, u64, u64),
    ) -> Option<WakerFn> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let index = class.index();
        let pos = state.waiting[index].iter().position(|&t| t == ticket)?;
        state.waiting[index].remove(pos);
        let waker = state.wakers.remove(&ticket);
        on_queue_depth(
            class,
            state.waiting[index].len() as u64,
            state.queued() as u64,
        );
        waker
    }

    /// Removes every queued asynchronous ticket (blocking waiters stay
    /// parked — their submitter threads still exist) and returns the
    /// wakers, so shutdown can fail them instead of leaving their handles
    /// pending forever.
    fn drain_async(&self) -> Vec<WakerFn> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let wakers = std::mem::take(&mut state.wakers);
        for queue in &mut state.waiting {
            queue.retain(|ticket| !wakers.contains_key(ticket));
        }
        wakers.into_values().collect()
    }

    /// Releases one in-flight slot: hands it to the next queued waiter
    /// (weighted pick across the class queues) or, with nobody waiting,
    /// frees it. As in [`AdmissionGate::preempt_for`], the picked class's
    /// occupancy is re-checked under the lock — an empty pop retries the
    /// pick instead of panicking on a stale "is nonempty" snapshot.
    fn release_slot(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let granted_waker = loop {
            let nonempty = std::array::from_fn(|i| !state.waiting[i].is_empty());
            let Some(class) = pick_class(&mut state.wrr, nonempty) else {
                state.in_flight -= 1;
                drop(state);
                self.freed.notify_one();
                return;
            };
            // Hand the slot straight to the chosen waiter instead of
            // freeing it, so a racing new arrival cannot barge past the
            // queue.
            if let Some(ticket) = state.waiting[class].pop_front() {
                if let Some(waker) = state.wakers.remove(&ticket) {
                    break Some(waker);
                }
                state.granted.push(ticket);
                break None;
            }
        };
        drop(state);
        self.freed.notify_all();
        if let Some(waker) = granted_waker {
            waker(AdmitOutcome::Granted);
        }
    }
}

/// RAII admission slot: dropping it hands the slot to the next queued
/// waiter (weighted pick across the class queues) or, with nobody
/// waiting, releases it.
struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.release_slot();
    }
}

/// As [`AdmissionPermit`], but owning its service entry so asynchronous
/// requests — whose submitter returns before the request resolves — can
/// carry their slot through the event loop.
struct OwnedPermit {
    entry: ServiceCell,
}

impl Drop for OwnedPermit {
    fn drop(&mut self) {
        self.entry.gate.release_slot();
    }
}

/// Live per-service overrides set through [`GatewayControl`]. Applied to
/// every subsequent request that does not set the field explicitly,
/// without re-planning the slot.
#[derive(Debug, Clone, Copy, Default)]
struct ServiceOverrides {
    class: Option<QosClass>,
    deadline: Option<Duration>,
    requirement: Option<Requirements>,
}

impl ServiceOverrides {
    /// The requirement slot planning must satisfy under these overrides:
    /// the explicit requirement override, else the overridden class's
    /// default requirement derived from the script's, else the script's
    /// own. Mirrors the per-request resolution order (explicit request
    /// fields excluded — plans are per-service, not per-request).
    fn planning_requirement(&self, base: &Requirements) -> Requirements {
        self.requirement.unwrap_or_else(|| {
            self.class
                .map_or(*base, |class| class.default_requirement(base))
        })
    }
}

/// One service's entry in the gateway: its state cell (`None` until the
/// script has been fetched and validated), its admission gate, its live
/// control-plane overrides, and the eviction flag chained into every
/// in-flight request's [`Budget`]. Each service has its own lock so one
/// service's (potentially expensive) slot re-plan never blocks
/// invocations of another.
struct ServiceEntry {
    cell: Mutex<Option<ServiceState>>,
    gate: AdmissionGate,
    overrides: Mutex<ServiceOverrides>,
    evicted: Arc<AtomicBool>,
}

type ServiceCell = Arc<ServiceEntry>;

/// Everything a single request needs from its service's current slot plan,
/// cloned out of the per-service state cell so execution runs outside
/// every lock. Produced by [`Gateway::plan_slot`] for both the blocking
/// ([`Gateway::submit`]) and asynchronous ([`Gateway::submit_async`])
/// paths.
struct Planned {
    strategy: Strategy,
    providers: Vec<Arc<dyn Provider>>,
    names: Vec<String>,
    slot: u64,
    origin: StrategyOrigin,
    estimated: Option<Qos>,
    base_requirements: Requirements,
    quorum: Option<usize>,
}

/// The edge gateway.
///
/// # Examples
///
/// See the crate-level documentation and the `adaptive_temperature`
/// example for end-to-end usage; unit tests below exercise each behaviour.
pub struct Gateway {
    market: Box<dyn Market>,
    registry: Arc<Registry>,
    collector: Arc<Collector>,
    clock: Arc<dyn Clock>,
    config: GatewayConfig,
    telemetry: Arc<Telemetry>,
    engine: ExecutionEngine,
    services: RwLock<HashMap<String, ServiceCell>>,
    next_request: AtomicU64,
    /// Shared event core draining every asynchronous request
    /// ([`Gateway::submit_async`]) as a state machine: leaves complete as
    /// clock events, continuations are heap frames, and
    /// [`GatewayConfig::event_loops`] threads step the whole gateway.
    core: Arc<EventCore<'static>>,
    /// Routes a blocking leaf to the engine's worker pool. Holds the core
    /// weakly so a task that outlives the gateway releases its clock slot
    /// instead of touching freed state.
    spawn: Arc<dyn Fn(BlockingTask) + Send + Sync>,
    /// Event-loop threads, spawned lazily on the first `submit_async`,
    /// joined on drop.
    loops: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// When set (by [`Gateway::set_plan_hub`]), this gateway's one view
    /// of the fleet-shared plan store. Every service planner memoizes
    /// into it instead of a private cache, so plans synthesized by other
    /// gateways in the same fleet are served warm here — and because the
    /// whole gateway shares one view, only genuinely cross-gateway reuse
    /// is attributed as *remote*.
    plan_view: RwLock<Option<Arc<qce_strategy::PlanCache>>>,
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.config)
            .field("capabilities", &self.registry.capabilities())
            .finish_non_exhaustive()
    }
}

impl Gateway {
    /// Creates a gateway over a market with a fresh registry and collector,
    /// running on real time.
    #[must_use]
    pub fn new(market: Box<dyn Market>, config: GatewayConfig) -> Self {
        Gateway::with_clock(market, config, Arc::new(WallClock::new()))
    }

    /// As [`Gateway::new`], but every latency measurement and execution
    /// runs on `clock`. Pass the same shared
    /// [`VirtualClock`](crate::VirtualClock) as the registered providers
    /// for deterministic virtual-time tests.
    #[must_use]
    pub fn with_clock(
        market: Box<dyn Market>,
        config: GatewayConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let telemetry = Telemetry::new(Arc::clone(&clock), config.telemetry_events);
        let engine = ExecutionEngine::new(config.worker_pool);
        let core = Arc::new(EventCore::new(Shared::Owned(Arc::clone(&clock))));
        let spawn: Arc<dyn Fn(BlockingTask) + Send + Sync> = {
            let core = Arc::downgrade(&core);
            let clock = Arc::clone(&clock);
            let pool = Arc::clone(engine.pool());
            Arc::new(move |task: BlockingTask| {
                let core = Weak::clone(&core);
                let clock = Arc::clone(&clock);
                pool.submit(Box::new(move || match core.upgrade() {
                    Some(core) => run_blocking(&core, task),
                    None => clock.release_worker(),
                }));
            })
        };
        Gateway {
            market,
            registry: Arc::new(Registry::new()),
            collector: Arc::new(Collector::new(config.collector_window)),
            clock,
            engine,
            config,
            telemetry,
            services: RwLock::new(HashMap::new()),
            next_request: AtomicU64::new(1),
            core,
            spawn,
            loops: Mutex::new(Vec::new()),
            plan_view: RwLock::new(None),
        }
    }

    /// Plugs this gateway into a fleet-shared plan-cache hub: services
    /// initialised *after* this call plan through this gateway's one
    /// [view](PlanCacheHub::view) of the hub's store (when
    /// [`GatewayConfig::plan_cache`] is enabled), so a plan synthesized on
    /// any sharing gateway is a warm hit here — attributed as a *remote*
    /// hit in telemetry. Call before the first request; already-planned
    /// services keep their private caches.
    ///
    /// Invalidation stays view-scoped: a live override on one service
    /// drops every entry this *gateway* stored (conservative — siblings
    /// re-synthesize on their next slot), never other gateways' entries.
    pub fn set_plan_hub(&self, hub: Arc<PlanCacheHub>) {
        *self.plan_view.write() = Some(hub.view());
    }

    /// The device registry (devices register their microservices here).
    #[must_use]
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The QoS collector.
    #[must_use]
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }

    /// The clock executions run on.
    #[must_use]
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The gateway's telemetry hub (counters, histograms, and the event
    /// ring — see [`Telemetry`]).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Submits a typed [`Request`] to its service.
    ///
    /// On the first invocation the script is fetched from the market and
    /// cached. Each slot boundary re-plans the strategy from collector
    /// data. Concurrent invocations of the same service execute in
    /// parallel (planning is serialized per service; execution is not),
    /// bounded by [`GatewayConfig::max_in_flight`] with class-aware
    /// queueing (see [`QosClass`]).
    ///
    /// Unset request fields resolve in order: request explicit value →
    /// service live override ([`Gateway::control`]) → gateway
    /// configuration → class default.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownService`] if the market has no such
    /// script, [`RuntimeError::NoProvider`] if a capability has no
    /// registered provider, [`RuntimeError::Overloaded`] if the request
    /// was shed (queue full, or preempted out of its queue slot by a
    /// higher class), or an invalid-script/generation error.
    pub fn submit(&self, request: Request) -> Result<ServiceResponse, RuntimeError> {
        self.invoke_inner(request)
    }

    /// Submits a typed [`Request`] without blocking on its completion: the
    /// call returns a [`RequestHandle`] as soon as the request is admitted
    /// or queued, and the request itself runs as a state machine on the
    /// gateway's event loops ([`GatewayConfig::event_loops`]). Neither a
    /// queued nor an in-flight request holds a thread, so any number of
    /// concurrent requests cost one heap frame each, not one stack each.
    ///
    /// Field resolution, admission, planning, execution, and telemetry are
    /// identical to [`Gateway::submit`], with two differences inherent to
    /// the asynchronous shape: the deadline is measured from submission
    /// (a request whose deadline expires while still queued fails with
    /// [`RuntimeError::DeadlineExceeded`] without ever executing), and
    /// errors after admission — shed by preemption, planning failure,
    /// shutdown — are delivered through [`RequestHandle::wait`] rather
    /// than this call.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::DeadlineExceeded`] for a zero effective
    /// deadline and [`RuntimeError::Overloaded`] when the request is shed
    /// at submission. All later failures surface through the handle.
    pub fn submit_async(self: &Arc<Self>, request: Request) -> Result<RequestHandle, RuntimeError> {
        self.ensure_loops();
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (service_id, explicit_class, explicit_deadline, explicit_requirement, payload) =
            request.into_parts();
        let entry = self.service_entry(&service_id);
        let overrides = *entry.overrides.lock();
        let class = explicit_class.or(overrides.class).unwrap_or_default();
        let deadline = explicit_deadline
            .or(overrides.deadline)
            .or(self.config.request_deadline)
            .or_else(|| class.default_deadline());
        if deadline == Some(Duration::ZERO) {
            self.telemetry
                .record_deadline_exceeded(&service_id, request_id, class);
            return Err(RuntimeError::DeadlineExceeded { service_id, class });
        }
        let abs_deadline = deadline.map(|d| self.clock.now() + d);
        let shared = Arc::new(HandleShared {
            clock: Arc::clone(&self.clock),
            slot: StdMutex::new(None),
            done: Condvar::new(),
        });

        // The admitted continuation: planning, engine submission, and the
        // response-assembling done-callback, all running on an event-loop
        // thread. If the task is ever dropped unrun (shutdown), the
        // FinishGuard inside fails the handle instead of leaving its
        // waiter parked forever.
        let task: TaskFn<'static> = {
            let gateway = Arc::downgrade(self);
            let entry = Arc::clone(&entry);
            // The guard is captured (not created inside the body) so a
            // task discarded unrun — e.g. posted to an already shut-down
            // core — still resolves the handle from its drop.
            let finish = FinishGuard::new(Arc::clone(&shared));
            let service_id = service_id.clone();
            let requirement_override = overrides.requirement;
            Box::new(move || {
                let permit = OwnedPermit {
                    entry: Arc::clone(&entry),
                };
                let Some(gateway) = gateway.upgrade() else {
                    return;
                };
                // The deadline may have passed while the ticket was queued
                // (the scheduled cancellation races the grant): reject
                // before planning, never entering the engine. Exactly one
                // of this check and the cancellation task fires — whichever
                // removes the ticket/runs the continuation first.
                if let Some(abs) = abs_deadline {
                    if gateway.clock.now() >= abs {
                        gateway
                            .telemetry
                            .record_deadline_exceeded(&service_id, request_id, class);
                        finish.finish(Err(RuntimeError::DeadlineExceeded { service_id, class }));
                        return;
                    }
                }
                let planned = match gateway.plan_slot(&service_id, &entry) {
                    Ok(planned) => planned,
                    Err(error) => return finish.finish(Err(error)),
                };
                if let Err(error) = crate::engine::validate(&planned.strategy, &planned.providers) {
                    return finish.finish(Err(error));
                }
                let requirement = explicit_requirement
                    .or(requirement_override)
                    .unwrap_or_else(|| class.default_requirement(&planned.base_requirements));
                let advisory = planned.estimated.and_then(|estimated| {
                    let violations = requirement.violations(&estimated);
                    (!violations.is_empty()).then_some(QosAdvisory {
                        estimated,
                        violations,
                    })
                });
                let mut budget = Budget::unlimited()
                    .with_class(class)
                    .with_parent_flag(Arc::clone(&entry.evicted));
                if let Some(abs) = abs_deadline {
                    budget = budget.with_deadline(abs);
                }
                let policy = match planned.quorum {
                    Some(q) if q > 1 => CompletionPolicy::Quorum { quorum: q },
                    _ => CompletionPolicy::FirstSuccess,
                };
                let invocation = Invocation::new(request_id, service_id.clone(), payload);
                let Planned {
                    strategy,
                    providers,
                    names,
                    slot,
                    origin,
                    ..
                } = planned;
                let telemetry = Arc::clone(&gateway.telemetry);
                let response_strategy = strategy.clone();
                let done: DoneFn<'static> = Box::new(move |result| {
                    // The permit outlives the finish call so the freed
                    // admission slot is handed over only after the handle
                    // resolves.
                    let _slot = permit;
                    match result {
                        RequestResult::Finished(outcome) => {
                            let pruned = outcome.pruned;
                            let prune_detail = outcome.prune_detail;
                            if pruned == Some(PruneReason::DeadlineExceeded) {
                                telemetry.record_deadline_exceeded(&service_id, request_id, class);
                            }
                            let latency = outcome.latency;
                            let cost = outcome.cost;
                            let (success, payload, votes) = match outcome.completion {
                                Completion::First { success, payload } => (success, payload, None),
                                Completion::Agreement {
                                    payload,
                                    votes,
                                    votes_cast,
                                    agreed,
                                } => (agreed, payload, Some((votes, votes_cast))),
                            };
                            telemetry.record_request(
                                &service_id,
                                class,
                                success,
                                latency,
                                cost,
                                advisory.is_some(),
                                votes,
                            );
                            finish.finish(Ok(ServiceResponse {
                                request_id,
                                class,
                                success,
                                payload,
                                latency,
                                cost,
                                strategy_text: response_strategy.to_string_with_names(&names),
                                strategy: response_strategy,
                                slot,
                                origin,
                                advisory,
                                votes,
                                pruned,
                                prune_detail,
                            }));
                        }
                        RequestResult::Panicked(panic) => finish.finish_panic(panic),
                        RequestResult::Shutdown => finish.finish(Err(RuntimeError::Shutdown)),
                    }
                });
                gateway.core.submit(
                    RequestSpec {
                        strategy: Shared::Owned(Arc::new(strategy)),
                        providers: Shared::Owned(providers.into()),
                        request: Shared::Owned(Arc::new(invocation)),
                        collector: Some(Shared::Owned(Arc::clone(&gateway.collector))),
                        telemetry: Some(Shared::Owned(Arc::clone(&gateway.telemetry))),
                        budget,
                        policy: PolicyState::new(policy),
                        done,
                    },
                    &*gateway.spawn,
                );
            })
        };

        // The waker owns the continuation and fires exactly once, however
        // the ticket leaves the queue.
        let waker: WakerFn = {
            let telemetry = Arc::clone(&self.telemetry);
            let core = Arc::clone(&self.core);
            let shared = Arc::clone(&shared);
            let service_id = service_id.clone();
            Box::new(move |outcome| match outcome {
                AdmitOutcome::Granted => core.post_task(task),
                AdmitOutcome::Preempted { in_flight, queued } => {
                    telemetry.record_shed(&service_id, class, in_flight, queued);
                    shared.finish(Err(RuntimeError::Overloaded {
                        service_id: service_id.clone(),
                        class,
                        queue_depth: queued,
                    }));
                    // Dropping the unrun task fires its FinishGuard, whose
                    // late Shutdown loses to the result above (first wins).
                }
                AdmitOutcome::Expired => {
                    telemetry.record_deadline_exceeded(&service_id, request_id, class);
                    shared.finish(Err(RuntimeError::DeadlineExceeded {
                        service_id: service_id.clone(),
                        class,
                    }));
                }
                AdmitOutcome::Shutdown => drop(task),
            })
        };

        match entry
            .gate
            .admit_async(class, waker, |c, class_depth, total| {
                self.telemetry.record_admission_queue(&service_id, total);
                self.telemetry
                    .record_class_queue_depth(&service_id, c, class_depth);
            }) {
            AsyncAdmission::Admitted(waker) => {
                // The slot is counted; run the continuation on the event
                // loop exactly like a deferred grant.
                waker(AdmitOutcome::Granted);
            }
            AsyncAdmission::Queued(ticket) => {
                if let Some(abs) = abs_deadline {
                    let gateway = Arc::downgrade(self);
                    let entry = Arc::clone(&entry);
                    let service_id = service_id.clone();
                    self.core.schedule_task(
                        abs,
                        Box::new(move || {
                            let Some(gateway) = gateway.upgrade() else {
                                return;
                            };
                            let waker =
                                entry
                                    .gate
                                    .cancel_ticket(class, ticket, |c, class_depth, total| {
                                        gateway
                                            .telemetry
                                            .record_admission_queue(&service_id, total);
                                        gateway.telemetry.record_class_queue_depth(
                                            &service_id,
                                            c,
                                            class_depth,
                                        );
                                    });
                            if let Some(waker) = waker {
                                waker(AdmitOutcome::Expired);
                            }
                        }),
                    );
                }
            }
            AsyncAdmission::Shed(shed, waker) => {
                // The handle is never returned, so the waker (and the
                // continuation inside it) is simply discarded.
                drop(waker);
                self.telemetry
                    .record_shed(&service_id, class, shed.in_flight, shed.queued);
                return Err(RuntimeError::Overloaded {
                    service_id,
                    class,
                    queue_depth: shed.queued,
                });
            }
        }

        Ok(RequestHandle {
            request_id,
            class,
            shared,
        })
    }

    /// The single invocation path behind [`Gateway::submit`]: admission,
    /// script fetch/planning, engine execution, telemetry.
    fn invoke_inner(&self, request: Request) -> Result<ServiceResponse, RuntimeError> {
        let request_id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let (service_id, explicit_class, explicit_deadline, explicit_requirement, payload) =
            request.into_parts();
        let service_id = service_id.as_str();
        let entry = self.service_entry(service_id);
        let overrides = *entry.overrides.lock();
        let class = explicit_class.or(overrides.class).unwrap_or_default();
        let deadline = explicit_deadline
            .or(overrides.deadline)
            .or(self.config.request_deadline)
            .or_else(|| class.default_deadline());

        // A zero deadline can never be met: reject it here, before
        // admission, so it neither occupies a queue slot nor enters the
        // engine (where it would charge the cost of its started leaves
        // before the first prune check). Counted as exactly one
        // deadline-exceeded event.
        if deadline == Some(Duration::ZERO) {
            self.telemetry
                .record_deadline_exceeded(service_id, request_id, class);
            return Err(RuntimeError::DeadlineExceeded {
                service_id: service_id.to_string(),
                class,
            });
        }

        // Admission first: it bounds everything the request does from here
        // on (planning included). Shedding here keeps an overloaded
        // service's queue — and the gateway's thread usage — bounded.
        let _permit = match entry
            .gate
            .admit(class, &*self.clock, |c, class_depth, total| {
                self.telemetry.record_admission_queue(service_id, total);
                self.telemetry
                    .record_class_queue_depth(service_id, c, class_depth);
            }) {
            Ok(permit) => permit,
            Err(shed) => {
                self.telemetry
                    .record_shed(service_id, class, shed.in_flight, shed.queued);
                return Err(RuntimeError::Overloaded {
                    service_id: service_id.to_string(),
                    class,
                    queue_depth: shed.queued,
                });
            }
        };

        let Planned {
            strategy,
            providers,
            names,
            slot,
            origin,
            estimated,
            base_requirements,
            quorum,
        } = self.plan_slot(service_id, &entry)?;

        // The advisory judges the slot's estimated QoS against *this
        // request's* effective requirement (explicit → live override →
        // class default over the script's requirements), so a Scavenger
        // probe does not raise alarms calibrated for interactive clients.
        let requirement = explicit_requirement
            .or(overrides.requirement)
            .unwrap_or_else(|| class.default_requirement(&base_requirements));
        let advisory = estimated.and_then(|estimated| {
            let violations = requirement.violations(&estimated);
            if violations.is_empty() {
                None
            } else {
                Some(QosAdvisory {
                    estimated,
                    violations,
                })
            }
        });

        let request = Invocation::new(request_id, service_id.to_string(), payload);
        let mut budget = Budget::unlimited()
            .with_class(class)
            .with_parent_flag(Arc::clone(&entry.evicted));
        if let Some(deadline) = deadline {
            budget = budget.with_deadline(self.clock.now() + deadline);
        }
        let policy = match quorum {
            Some(q) if q > 1 => CompletionPolicy::Quorum { quorum: q },
            _ => CompletionPolicy::FirstSuccess,
        };
        let outcome = self.engine.execute(ExecSpec {
            strategy: strategy.clone(),
            providers,
            request,
            collector: Some(Arc::clone(&self.collector)),
            telemetry: Some(Arc::clone(&self.telemetry)),
            clock: Arc::clone(&self.clock),
            budget,
            policy,
        })?;

        let pruned = outcome.pruned;
        let prune_detail = outcome.prune_detail;
        if pruned == Some(PruneReason::DeadlineExceeded) {
            self.telemetry
                .record_deadline_exceeded(service_id, request_id, class);
        }
        let latency = outcome.latency;
        let cost = outcome.cost;
        let (success, payload, votes) = match outcome.completion {
            Completion::First { success, payload } => (success, payload, None),
            Completion::Agreement {
                payload,
                votes,
                votes_cast,
                agreed,
            } => (agreed, payload, Some((votes, votes_cast))),
        };

        self.telemetry.record_request(
            service_id,
            class,
            success,
            latency,
            cost,
            advisory.is_some(),
            votes,
        );

        Ok(ServiceResponse {
            request_id,
            class,
            success,
            payload,
            latency,
            cost,
            strategy_text: strategy.to_string_with_names(&names),
            strategy,
            slot,
            origin,
            advisory,
            votes,
            pruned,
            prune_detail,
        })
    }

    /// Fetches/validates the script and plans (or reuses) the slot's
    /// strategy under the *per-service* lock only — the global map lock is
    /// held just long enough to find the entry, so one service's
    /// exhaustive re-plan never blocks invocations of other services.
    /// Execution then happens outside every lock.
    fn plan_slot(&self, service_id: &str, entry: &ServiceCell) -> Result<Planned, RuntimeError> {
        let mut guard = entry.cell.lock();
        if guard.is_none() {
            let t0 = self.clock.now();
            let fetched = self.market.fetch(service_id);
            self.telemetry
                .record_market_fetch(self.clock.now().saturating_sub(t0), fetched.is_ok());
            let initialised = fetched.and_then(|script| {
                script.validate()?;
                let settings = self.config.synthesis_settings();
                // A fleet-shared view replaces the private per-service
                // cache (the local `plan_cache` knob still gates caching
                // as a whole).
                let view = self
                    .config
                    .plan_cache
                    .then(|| self.plan_view.read().clone())
                    .flatten();
                let planner = match view {
                    Some(view) => Planner::with_cache(&script, &settings, view)?,
                    None => Planner::new(&script, &settings)?,
                };
                Ok((script, planner))
            });
            match initialised {
                Ok((script, planner)) => {
                    *guard = Some(ServiceState {
                        script,
                        planner,
                        slot: 0,
                        invocations_in_slot: 0,
                        active: None,
                        history: VecDeque::new(),
                    });
                }
                Err(error) => {
                    drop(guard);
                    self.discard_uninitialised(service_id, entry);
                    return Err(error);
                }
            }
        }
        let state = guard.as_mut().expect("initialised above");

        if state.active.is_none() || state.invocations_in_slot >= state.script.slot_size {
            // Plan against the *effective* requirement: a live
            // `set_requirement`/`set_class` override changes what the
            // operator demands, and the synthesized strategy (and its
            // plan-cache key) must track it — not the deployed script.
            let requirement = entry
                .overrides
                .lock()
                .planning_requirement(&state.script.requirements);
            let mut replan = true;
            if state.active.is_some() {
                // With `replan_on_drift`, measure how far the collector's
                // table has moved from the active plan's assumptions
                // before discarding it (`None` = requirement or provider
                // set changed, which always re-plans).
                let drift = self
                    .config
                    .replan_on_drift
                    .then(|| self.boundary_drift(state, &requirement))
                    .flatten();
                state.slot += 1;
                state.invocations_in_slot = 0;
                match drift {
                    Some(drift) if drift <= 0.0 => {
                        // Every quantized cell of the assumed QoS table is
                        // unchanged: a re-plan would see identical search
                        // inputs, so hold the active plan for this slot.
                        self.telemetry.record_drift_hold(service_id);
                        replan = false;
                    }
                    drift => {
                        if let Some(drift) = drift {
                            self.telemetry
                                .record_drift_trigger(service_id, state.slot, drift);
                        }
                        // Clear the previous slot's plan *before*
                        // planning: if plan() fails (e.g. a provider
                        // departed), the stale plan must not keep serving
                        // the new slot — the next invocation retries
                        // planning instead.
                        state.active = None;
                    }
                }
            }
            if replan {
                let active = match self.plan(state, &requirement) {
                    Ok(active) => active,
                    Err(error) => {
                        self.telemetry
                            .record_plan_failure(service_id, state.slot, &error);
                        return Err(error);
                    }
                };
                let strategy_text = active.plan.strategy.to_string_with_names(&active.names);
                self.telemetry.record_replan(
                    service_id,
                    state.slot,
                    &active.plan.origin.to_string(),
                    &strategy_text,
                    active.plan.report.as_ref(),
                    active.plan.source,
                );
                state.history.push_back(SlotRecord {
                    slot: state.slot,
                    strategy_text,
                    origin: active.plan.origin.clone(),
                    estimated: active.plan.estimated,
                });
                let limit = self.config.history_limit.max(1);
                while state.history.len() > limit {
                    state.history.pop_front();
                    self.telemetry.record_history_evicted(service_id, 1);
                }
                state.active = Some(active);
            }
        }

        state.invocations_in_slot += 1;
        let active = state.active.as_ref().expect("planned above");
        Ok(Planned {
            strategy: active.plan.strategy.clone(),
            providers: active.providers.clone(),
            names: active.names.clone(),
            slot: state.slot,
            origin: active.plan.origin.clone(),
            estimated: active.plan.estimated,
            base_requirements: state.script.requirements,
            quorum: state.script.quorum,
        })
    }

    /// The gateway's runtime control plane: retunes a live service's
    /// traffic class, deadline, or requirement without re-planning its
    /// slot. Every applied override is recorded as exactly one
    /// [`EventKind::OverrideApplied`](crate::EventKind::OverrideApplied)
    /// telemetry event and takes effect at the next admission decision.
    #[must_use]
    pub fn control(&self) -> GatewayControl<'_> {
        GatewayControl { gateway: self }
    }

    /// Current occupancy counters of the engine's worker pool (capacity,
    /// live/idle/running threads, spill count).
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.engine.pool_stats()
    }

    /// Live occupancy of the event core: requests in flight, resident
    /// continuation frames (live and peak), and the size of one frame —
    /// the per-request memory unit that replaces a per-leg thread stack.
    #[must_use]
    pub fn engine_stats(&self) -> EngineStats {
        let stats = self.core.stats();
        EngineStats {
            in_flight: stats.in_flight,
            frames_live: stats.frames_live,
            frames_peak: stats.frames_peak,
            frame_bytes: EventCore::frame_bytes(),
        }
    }

    /// Spawns the event-loop threads on the first asynchronous submission.
    /// Each loop registers as a clock worker: while it processes events it
    /// pins virtual time, and when it idles it parks in
    /// [`Clock::sleep_until_or`], letting virtual time advance to the next
    /// completion.
    fn ensure_loops(&self) {
        let mut loops = self.loops.lock();
        if !loops.is_empty() {
            return;
        }
        for i in 0..self.config.event_loops.max(1) {
            let core = Arc::clone(&self.core);
            let clock = Arc::clone(&self.clock);
            let spawn = Arc::clone(&self.spawn);
            let handle = std::thread::Builder::new()
                .name(format!("qce-event-loop-{i}"))
                .spawn(move || {
                    let _worker = WorkerGuard::enter(&*clock);
                    core.run_loop(&*spawn);
                })
                .expect("spawn event-loop thread");
            loops.push(handle);
        }
    }

    /// Returns the entry of `service_id`, inserting an uninitialised one if
    /// needed. Holds the global map lock only for the lookup.
    fn service_entry(&self, service_id: &str) -> ServiceCell {
        if let Some(entry) = self.services.read().get(service_id) {
            return Arc::clone(entry);
        }
        let mut services = self.services.write();
        let config = &self.config;
        Arc::clone(services.entry(service_id.to_string()).or_insert_with(|| {
            Arc::new(ServiceEntry {
                cell: Mutex::new(None),
                gate: AdmissionGate::new(config.max_in_flight, config.admission_queue),
                overrides: Mutex::new(ServiceOverrides::default()),
                evicted: Arc::new(AtomicBool::new(false)),
            })
        }))
    }

    /// Removes `entry` from the map if it is still the registered,
    /// never-initialised entry for `service_id`, so failed fetches don't
    /// accumulate empty entries. An entry another thread initialised in the
    /// meantime is left alone.
    fn discard_uninitialised(&self, service_id: &str, entry: &ServiceCell) {
        let mut services = self.services.write();
        if let Some(existing) = services.get(service_id) {
            let discard = Arc::ptr_eq(existing, entry) && existing.cell.lock().is_none();
            if discard {
                services.remove(service_id);
            }
        }
    }

    /// Plans the current slot for `state`: resolve providers, then generate
    /// (or default) the strategy.
    fn plan(
        &self,
        state: &ServiceState,
        requirement: &Requirements,
    ) -> Result<ActivePlan, RuntimeError> {
        let utility = qce_strategy::UtilityIndex::new(state.script.penalty_k).map_err(|e| {
            RuntimeError::InvalidScript {
                reason: e.to_string(),
            }
        })?;
        // Resolve each equivalent microservice to its best provider.
        // Capabilities with no live provider (device churn) are dropped
        // from this slot's plan instead of failing the whole service — the
        // gateway plans over what it has, as long as anything survives.
        let mut specs: Vec<MsSpec> = Vec::with_capacity(state.script.microservices.len());
        let mut providers: Vec<Arc<dyn Provider>> =
            Vec::with_capacity(state.script.microservices.len());
        let mut missing: Option<RuntimeError> = None;
        for spec in &state.script.microservices {
            match self.registry.best_provider(
                &spec.capability,
                &spec.prior,
                &self.collector,
                utility,
                requirement,
            ) {
                Ok(provider) => {
                    specs.push(spec.clone());
                    providers.push(provider);
                }
                Err(error @ RuntimeError::NoProvider { .. }) => {
                    if missing.is_none() {
                        missing = Some(error);
                    }
                }
                Err(error) => return Err(error),
            }
        }
        if providers.is_empty() {
            return Err(missing.expect("no providers implies a missing capability"));
        }
        let reduced_script;
        let script = if specs.len() == state.script.microservices.len() {
            &state.script
        } else {
            reduced_script = ServiceScript {
                microservices: specs,
                ..state.script.clone()
            };
            &reduced_script
        };

        let plan = state.planner.plan_slot_for(
            script,
            requirement,
            &providers,
            &self.collector,
            state.slot,
            Some(&self.telemetry),
        )?;

        Ok(ActivePlan {
            names: script.ms_names().iter().map(|s| (*s).to_string()).collect(),
            plan,
            providers,
            requirement: *requirement,
        })
    }

    /// How far the collector's QoS table has drifted from the active
    /// plan's assumed table, at the plan-cache quantization granularity
    /// (see [`env_drift`](crate::env_drift)).
    ///
    /// Returns `None` — forcing a re-plan — when there is no active plan,
    /// the effective requirement changed since the plan was synthesized
    /// (live override), or the plan's microservice set no longer maps onto
    /// the script (provider churn reshaped the service mid-slot).
    fn boundary_drift(&self, state: &ServiceState, requirement: &Requirements) -> Option<f64> {
        let active = state.active.as_ref()?;
        if active.requirement != *requirement {
            return None;
        }
        // Rebuild the QoS table the planner would assume right now over
        // the active plan's own provider set, then compare cell-by-cell.
        let mut current: Vec<qce_strategy::Qos> = Vec::with_capacity(active.providers.len());
        for (name, provider) in active.names.iter().zip(&active.providers) {
            let spec = state
                .script
                .microservices
                .iter()
                .find(|spec| &spec.name == name)?;
            let prior = crate::collector::prior_with_advertised_cost(&spec.prior, provider.cost());
            current.push(self.collector.qos_or_prior(provider.id(), &prior));
        }
        let current: EnvQos = current.into_iter().collect();
        Some(crate::generator::env_drift(
            &active.plan.assumed_env,
            &current,
            self.config.plan_quantize,
        ))
    }

    /// Forces the next invocation of `service_id` to re-plan its strategy,
    /// as if a slot boundary had been reached.
    pub fn end_slot(&self, service_id: &str) {
        let Some(entry) = self.services.read().get(service_id).map(Arc::clone) else {
            return;
        };
        let mut guard = entry.cell.lock();
        if let Some(state) = guard.as_mut() {
            if state.active.is_some() {
                state.slot += 1;
                state.invocations_in_slot = 0;
                state.active = None;
            }
        }
    }

    /// Drops `service_id`'s cached and warm-started plans after a
    /// requirement-affecting override. The memoized winners (and the
    /// incumbent pruning bars) were synthesized for the *pre-override*
    /// requirement; without this, the next slot boundary could serve one
    /// of them and quietly plan against a requirement the operator just
    /// replaced. The active slot keeps serving (overrides never re-plan
    /// mid-slot); the next boundary runs a truly cold search.
    fn invalidate_override_plans(&self, service_id: &str, entry: &ServiceEntry) {
        let guard = entry.cell.lock();
        if let Some(state) = guard.as_ref() {
            state.planner.invalidate_plans();
            if let Some(stats) = state.planner.cache_stats() {
                self.telemetry.record_plan_cache(service_id, &stats);
            }
        }
    }

    /// The per-slot planning history of `service_id` (empty if the service
    /// has not been invoked yet). Bounded by
    /// [`GatewayConfig::history_limit`]; evictions are counted in
    /// telemetry.
    #[must_use]
    pub fn slot_history(&self, service_id: &str) -> Vec<SlotRecord> {
        let Some(entry) = self.services.read().get(service_id).map(Arc::clone) else {
            return Vec::new();
        };
        let guard = entry.cell.lock();
        guard
            .as_ref()
            .map(|state| state.history.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// The strategy currently serving `service_id`, rendered with script
    /// names.
    #[must_use]
    pub fn current_strategy(&self, service_id: &str) -> Option<String> {
        let entry = self.services.read().get(service_id).map(Arc::clone)?;
        let guard = entry.cell.lock();
        let state = guard.as_ref()?;
        let active = state.active.as_ref()?;
        Some(active.plan.strategy.to_string_with_names(&active.names))
    }

    /// Drops the cached script and planning state of `service_id` (e.g.
    /// after publishing an updated script to the market). Any cached plans
    /// were computed for the evicted script, so the planner's cache is
    /// invalidated first and the dropped entries are surfaced as stale in
    /// telemetry.
    ///
    /// Requests in flight at eviction time are cancelled through their
    /// budgets: every strategy leg that has not started is pruned, the
    /// request completes with whatever its started legs produced, and its
    /// response carries [`PruneReason::Cancelled`]. The planning state is
    /// *taken* out of the entry (not merely dropped with it), so the cache
    /// invalidation and its telemetry flush happen exactly once even when
    /// in-flight requests still hold the entry.
    pub fn evict_service(&self, service_id: &str) {
        let entry = self.services.write().remove(service_id);
        if let Some(entry) = entry {
            entry.evicted.store(true, Ordering::SeqCst);
            let state = entry.cell.lock().take();
            if let Some(state) = state {
                state.planner.invalidate();
                if let Some(stats) = state.planner.cache_stats() {
                    self.telemetry.record_plan_cache(service_id, &stats);
                }
            }
        }
    }

    /// Device churn: a provider left the environment mid-run. It is
    /// deregistered and its collector window is reset (stale observations
    /// must not outlive the device — when it later re-joins, its history
    /// starts fresh). Requests already holding the provider keep their
    /// `Arc` and run to completion per Assumption 2; subsequent slots
    /// re-resolve providers and will no longer select it.
    ///
    /// Returns `true` if the provider was registered. Emits an
    /// [`EventKind::ProviderLeft`](crate::EventKind::ProviderLeft) marker
    /// only when something was actually removed, so repeated departures
    /// are not double-counted.
    pub fn provider_left(&self, provider_id: &str) -> bool {
        let removed = self.registry.deregister(provider_id);
        if removed {
            self.collector.reset(provider_id);
            self.telemetry.record_provider_left(provider_id);
        }
        removed
    }

    /// Device churn: a provider joined (or re-joined) the environment. It
    /// becomes eligible at the next provider resolution — in-flight
    /// requests keep the providers their plan resolved. The collector
    /// window is reset so decisions about the re-joined device start from
    /// its advertised prior rather than pre-departure history.
    pub fn provider_joined(&self, provider: Arc<dyn Provider>) {
        let id = provider.id().to_string();
        self.collector.reset(&id);
        self.registry.register(provider);
        self.telemetry.record_provider_rejoined(&id);
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        // Queued async admissions first: nobody will ever grant them, so
        // their wakers fail the handles with `Shutdown` instead of leaving
        // waiters parked forever.
        let entries: Vec<ServiceCell> = self.services.read().values().map(Arc::clone).collect();
        for entry in entries {
            for waker in entry.gate.drain_async() {
                waker(AdmitOutcome::Shutdown);
            }
        }
        // Then the core: in-flight async requests resolve with `Shutdown`,
        // the loop threads observe the flag and exit, and blocking leaves
        // still running on the pool release their orphaned clock slots when
        // they post into the shut-down core.
        self.core.shutdown();
        for handle in self.loops.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

/// What an asynchronous request resolved to, parked in its handle until
/// the submitter collects it.
enum HandleResult {
    // Boxed: a `ServiceResponse` dwarfs the panic payload, and the slot
    // holds the variant until the submitter collects it.
    Done(Box<Result<ServiceResponse, RuntimeError>>),
    Panicked(PanicPayload),
}

/// State shared between a [`RequestHandle`] and the event-loop side that
/// resolves it. The first `finish` wins; later calls (e.g. a shutdown
/// guard racing a preemption result) are ignored.
struct HandleShared {
    clock: Arc<dyn Clock>,
    slot: StdMutex<Option<HandleResult>>,
    done: Condvar,
}

impl HandleShared {
    fn finish(&self, result: Result<ServiceResponse, RuntimeError>) {
        self.park(HandleResult::Done(Box::new(result)));
    }

    fn park(&self, result: HandleResult) {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some(result);
            drop(slot);
            self.done.notify_all();
        }
    }
}

/// Guards an asynchronous request's handle against being orphaned: drops
/// on any path that forgets to resolve the handle (a continuation discarded
/// by a shutting-down core, a panic between admission and submission) fail
/// it with [`RuntimeError::Shutdown`] so [`RequestHandle::wait`] can never
/// park forever. Explicit finishes consume the guard.
struct FinishGuard {
    shared: Option<Arc<HandleShared>>,
}

impl FinishGuard {
    fn new(shared: Arc<HandleShared>) -> Self {
        FinishGuard {
            shared: Some(shared),
        }
    }

    fn finish(mut self, result: Result<ServiceResponse, RuntimeError>) {
        if let Some(shared) = self.shared.take() {
            shared.finish(result);
        }
    }

    fn finish_panic(mut self, panic: PanicPayload) {
        if let Some(shared) = self.shared.take() {
            shared.park(HandleResult::Panicked(panic));
        }
    }
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            shared.finish(Err(RuntimeError::Shutdown));
        }
    }
}

/// A pending asynchronous request, returned by [`Gateway::submit_async`].
///
/// The handle is detached from the request's execution: dropping it does
/// not cancel the request (its deadline and admission bounds still
/// apply), and [`RequestHandle::wait`] merely parks until the event loop
/// resolves it.
#[derive(Debug)]
pub struct RequestHandle {
    request_id: u64,
    class: QosClass,
    shared: Arc<HandleShared>,
}

impl std::fmt::Debug for HandleShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HandleShared").finish_non_exhaustive()
    }
}

impl RequestHandle {
    /// The request id the response will carry.
    #[must_use]
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// The traffic class the request was admitted under.
    #[must_use]
    pub fn class(&self) -> QosClass {
        self.class
    }

    /// Returns the resolved response without blocking, or the handle back
    /// if the request is still pending.
    ///
    /// # Errors
    ///
    /// As [`RequestHandle::wait`], once resolved.
    pub fn try_wait(self) -> Result<Result<ServiceResponse, RuntimeError>, Self> {
        let resolved = {
            let mut slot = self
                .shared
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            slot.take()
        };
        match resolved {
            Some(HandleResult::Done(result)) => Ok(*result),
            Some(HandleResult::Panicked(panic)) => std::panic::resume_unwind(panic),
            None => Err(self),
        }
    }

    /// Parks until the request resolves and returns its response.
    ///
    /// A caller registered as a worker of the gateway's clock is marked
    /// passive for the duration of the wait (exactly as a queued blocking
    /// submit would be), so waiting on a handle never stalls the virtual
    /// time its own request needs to complete.
    ///
    /// If a provider panicked during the request, the panic resumes here,
    /// on the thread that collects the result — the event loop itself is
    /// never poisoned.
    ///
    /// # Errors
    ///
    /// Any error [`Gateway::submit`] can return, plus
    /// [`RuntimeError::Shutdown`] when the gateway was dropped before the
    /// request resolved and [`RuntimeError::DeadlineExceeded`] when the
    /// deadline expired while the request was still queued.
    pub fn wait(self) -> Result<ServiceResponse, RuntimeError> {
        let registered = self.shared.clock.thread_is_worker();
        if registered {
            self.shared.clock.enter_passive();
        }
        let result = {
            let mut slot = self
                .shared
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(result) = slot.take() {
                    break result;
                }
                slot = self
                    .shared
                    .done
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        if registered {
            self.shared.clock.exit_passive();
        }
        match result {
            HandleResult::Done(result) => *result,
            HandleResult::Panicked(panic) => std::panic::resume_unwind(panic),
        }
    }
}

/// Handle for live per-service overrides, obtained from
/// [`Gateway::control`].
///
/// Overrides retune a service mid-slot — no re-plan, no re-fetch. They
/// fill request fields that were not set explicitly (see the resolution
/// order on [`Gateway::submit`]) and apply from the next admission
/// decision on; requests already admitted are unaffected. Each setter
/// records exactly one telemetry event, so an operator replaying the
/// event ring can reconstruct the full override history.
///
/// # Examples
///
/// ```no_run
/// use qce_runtime::{Gateway, GatewayConfig, InMemoryMarket, QosClass};
///
/// let gateway = Gateway::new(Box::new(InMemoryMarket::new()), GatewayConfig::default());
/// gateway.control().set_class("temp", QosClass::Critical);
/// ```
#[derive(Debug)]
pub struct GatewayControl<'a> {
    gateway: &'a Gateway,
}

impl GatewayControl<'_> {
    /// Overrides the traffic class of `service_id` for every subsequent
    /// request that does not set one explicitly. The class default
    /// requirement changes what planning must satisfy, so the service's
    /// cached/warm-started plans are invalidated: the next slot boundary
    /// re-plans cold for the new class.
    pub fn set_class(&self, service_id: &str, class: QosClass) {
        let entry = self.gateway.service_entry(service_id);
        entry.overrides.lock().class = Some(class);
        self.gateway.invalidate_override_plans(service_id, &entry);
        self.gateway
            .telemetry
            .record_override(service_id, "class", &class.to_string());
    }

    /// Overrides the per-request deadline of `service_id` (`None` clears a
    /// previous override, falling back to the gateway configuration and
    /// the class default).
    pub fn set_deadline(&self, service_id: &str, deadline: Option<Duration>) {
        let entry = self.gateway.service_entry(service_id);
        entry.overrides.lock().deadline = deadline;
        let value = deadline.map_or_else(|| "none".to_string(), |d| format!("{}ms", d.as_millis()));
        self.gateway
            .telemetry
            .record_override(service_id, "deadline", &value);
    }

    /// Overrides the QoS requirement requests of `service_id` are judged
    /// against (the response advisory reports violations of this
    /// requirement instead of the script's) — and that slot planning must
    /// satisfy from the next boundary on. Plans cached or warm-started
    /// under the old requirement are invalidated so the next re-plan runs
    /// cold against the new one.
    pub fn set_requirement(&self, service_id: &str, requirement: Requirements) {
        let entry = self.gateway.service_entry(service_id);
        entry.overrides.lock().requirement = Some(requirement);
        self.gateway.invalidate_override_plans(service_id, &entry);
        self.gateway
            .telemetry
            .record_override(service_id, "requirement", &requirement.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimulatedProvider;
    use crate::market::InMemoryMarket;
    use crate::script::MsSpec;
    use qce_strategy::Requirements;

    fn market_with(script: ServiceScript) -> Box<dyn Market> {
        let market = InMemoryMarket::new();
        market.publish(script).unwrap();
        Box::new(market)
    }

    fn script(slot_size: u32) -> ServiceScript {
        let mut s = ServiceScript::new(
            "temp",
            vec![
                MsSpec {
                    name: "readTempSensor".into(),
                    capability: "read-temp".into(),
                    prior: Qos::new(50.0, 5.0, 0.7).unwrap(),
                },
                MsSpec {
                    name: "estTemp".into(),
                    capability: "est-temp".into(),
                    prior: Qos::new(50.0, 8.0, 0.7).unwrap(),
                },
                MsSpec {
                    name: "readLocTemp".into(),
                    capability: "loc-temp".into(),
                    prior: Qos::new(50.0, 12.0, 0.7).unwrap(),
                },
            ],
            Requirements::new(100.0, 100.0, 0.97).unwrap(),
        );
        s.slot_size = slot_size;
        s
    }

    fn register_devices(gateway: &Gateway, reliability: f64) {
        for (i, (cap, ms)) in [("read-temp", 2u64), ("est-temp", 3), ("loc-temp", 5)]
            .iter()
            .enumerate()
        {
            gateway.registry().register(
                SimulatedProvider::builder(format!("dev{i}/{cap}"), *cap)
                    .cost(50.0)
                    .latency(Duration::from_millis(*ms))
                    .reliability(reliability)
                    .seed(i as u64)
                    .build(),
            );
        }
    }

    #[test]
    fn unknown_service_is_reported() {
        let gateway = Gateway::new(Box::new(InMemoryMarket::new()), GatewayConfig::default());
        assert!(matches!(
            gateway.submit(Request::new("nope")),
            Err(RuntimeError::UnknownService { .. })
        ));
    }

    #[test]
    fn missing_provider_is_reported() {
        let gateway = Gateway::new(market_with(script(10)), GatewayConfig::default());
        assert!(matches!(
            gateway.submit(Request::new("temp")),
            Err(RuntimeError::NoProvider { .. })
        ));
    }

    #[test]
    fn first_slot_runs_speculative_parallel_default() {
        let gateway = Gateway::new(market_with(script(10)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert!(response.success);
        assert_eq!(response.slot, 0);
        assert_eq!(response.origin, StrategyOrigin::Default);
        assert!(response.strategy.is_parallel());
        assert_eq!(response.strategy_text, "readTempSensor*estTemp*readLocTemp");
        assert_eq!(response.cost, 150.0, "parallel default charges everyone");
    }

    #[test]
    fn second_slot_generates_from_observations() {
        let gateway = Gateway::new(market_with(script(5)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        for _ in 0..5 {
            gateway.submit(Request::new("temp")).unwrap();
        }
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert_eq!(response.slot, 1);
        assert!(matches!(response.origin, StrategyOrigin::Generated(_)));
        // With perfectly reliable observed providers, fail-over on the best
        // one dominates: cost collapses to a single invocation.
        assert_eq!(response.cost, 50.0, "generated strategy avoids redundancy");
        let history = gateway.slot_history("temp");
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].origin, StrategyOrigin::Default);
    }

    #[test]
    fn slot_boundary_respects_slot_size() {
        let gateway = Gateway::new(market_with(script(3)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        let slots: Vec<u64> = (0..7)
            .map(|_| gateway.submit(Request::new("temp")).unwrap().slot)
            .collect();
        assert_eq!(slots, vec![0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn end_slot_forces_replan() {
        let gateway = Gateway::new(market_with(script(100)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        gateway.submit(Request::new("temp")).unwrap();
        assert_eq!(gateway.slot_history("temp").len(), 1);
        gateway.end_slot("temp");
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert_eq!(response.slot, 1);
        assert_eq!(gateway.slot_history("temp").len(), 2);
    }

    #[test]
    fn advisory_reported_when_requirements_unreachable() {
        // Impossible requirements: reliability 99.9% from 50%-reliable
        // microservices costs more than the cost budget allows.
        let mut s = script(5);
        s.requirements = Requirements::new(10.0, 1.0, 0.999).unwrap();
        let gateway = Gateway::new(market_with(s), GatewayConfig::default());
        register_devices(&gateway, 0.5);
        for _ in 0..5 {
            let _ = gateway.submit(Request::new("temp")).unwrap();
        }
        let response = gateway.submit(Request::new("temp")).unwrap();
        let advisory = response.advisory.expect("requirements cannot be met");
        assert!(!advisory.violations.is_empty());
    }

    #[test]
    fn current_strategy_uses_names() {
        let gateway = Gateway::new(market_with(script(10)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        assert!(gateway.current_strategy("temp").is_none());
        gateway.submit(Request::new("temp")).unwrap();
        let text = gateway.current_strategy("temp").unwrap();
        assert!(text.contains("readTempSensor"), "{text}");
    }

    #[test]
    fn evict_service_forces_refetch() {
        let market = InMemoryMarket::new();
        market.publish(script(10)).unwrap();
        let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        gateway.submit(Request::new("temp")).unwrap();
        gateway.evict_service("temp");
        assert!(gateway.slot_history("temp").is_empty());
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert_eq!(response.slot, 0, "state restarted");
    }

    #[test]
    fn collector_fills_during_first_slot() {
        let gateway = Gateway::new(market_with(script(10)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        gateway.submit(Request::new("temp")).unwrap();
        // The parallel default invoked every provider once.
        assert_eq!(gateway.collector().provider_ids().len(), 3);
    }

    #[test]
    fn quorum_script_votes_and_costs_double() {
        let mut s = script(10);
        s.quorum = Some(2);
        let gateway = Gateway::new(market_with(s), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert!(response.success);
        let (votes, cast) = response.votes.expect("quorum execution reports votes");
        assert!(votes >= 2, "votes {votes}");
        assert!(cast >= votes);
    }

    #[test]
    fn failed_request_still_reports() {
        let gateway = Gateway::new(market_with(script(10)), GatewayConfig::default());
        register_devices(&gateway, 0.0);
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert!(!response.success);
        assert!(response.payload.is_none());
        assert_eq!(response.cost, 150.0, "all three tried and failed");
    }

    #[test]
    fn failed_replan_does_not_serve_stale_plan() {
        // Regression: every provider departs right at a slot boundary.
        // plan() fails after the slot counter was bumped; the previous
        // slot's plan must NOT keep serving the new slot once planning
        // becomes possible again.
        let gateway = Gateway::new(market_with(script(2)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        gateway.submit(Request::new("temp")).unwrap();
        gateway.submit(Request::new("temp")).unwrap(); // slot 0 exhausted

        assert!(gateway.registry().deregister("dev0/read-temp"));
        assert!(gateway.registry().deregister("dev1/est-temp"));
        assert!(gateway.registry().deregister("dev2/loc-temp"));
        let error = gateway.submit(Request::new("temp")).unwrap_err();
        assert!(matches!(error, RuntimeError::NoProvider { .. }));
        gateway.registry().register(
            SimulatedProvider::builder("dev1/est-temp", "est-temp")
                .cost(50.0)
                .latency(Duration::from_millis(3))
                .reliability(1.0)
                .build(),
        );
        gateway.registry().register(
            SimulatedProvider::builder("dev2/loc-temp", "loc-temp")
                .cost(50.0)
                .latency(Duration::from_millis(5))
                .reliability(1.0)
                .build(),
        );

        // The device comes back; the very next invocation must re-plan for
        // slot 1 instead of replaying slot 0's strategy.
        gateway.registry().register(
            SimulatedProvider::builder("dev0/read-temp", "read-temp")
                .cost(50.0)
                .latency(Duration::from_millis(2))
                .reliability(1.0)
                .build(),
        );
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert_eq!(response.slot, 1);
        assert!(
            matches!(response.origin, StrategyOrigin::Generated(_)),
            "slot 1 must be freshly planned, got {:?}",
            response.origin
        );
        let history = gateway.slot_history("temp");
        assert_eq!(history.len(), 2, "one record per planned slot");
        assert_eq!(history[1].slot, 1);

        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert_eq!(svc.plan_failures, 1);
        assert!(gateway.telemetry().events().iter().any(|e| matches!(
            &e.kind,
            crate::telemetry::EventKind::ProviderResolutionFailed { service, slot, .. }
                if service == "temp" && *slot == 1
        )));
    }

    #[test]
    fn plan_degrades_to_surviving_microservices_when_one_capability_is_gone() {
        // Device churn: losing one capability must not take the whole
        // service down — the next slot plans over what it still has.
        let gateway = Gateway::new(market_with(script(2)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        gateway.submit(Request::new("temp")).unwrap();
        gateway.submit(Request::new("temp")).unwrap(); // slot 0 exhausted

        assert!(gateway.provider_left("dev0/read-temp"));
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert!(response.success);
        assert_eq!(response.slot, 1);
        assert!(
            !response.strategy_text.contains("readTempSensor"),
            "departed capability must not appear in the plan: {}",
            response.strategy_text
        );
        assert!(
            response.strategy_text.contains("estTemp")
                || response.strategy_text.contains("readLocTemp"),
            "plan must use surviving microservices: {}",
            response.strategy_text
        );

        // The device rejoins; the following slot may use it again.
        gateway.provider_joined(
            SimulatedProvider::builder("dev0/read-temp", "read-temp")
                .cost(50.0)
                .latency(Duration::from_millis(2))
                .reliability(1.0)
                .build(),
        );
        gateway.submit(Request::new("temp")).unwrap(); // slot 1 exhausted
        let response = gateway.submit(Request::new("temp")).unwrap();
        assert!(response.success);
        assert_eq!(response.slot, 2);
        let snapshot = gateway.telemetry().snapshot();
        let provider = snapshot.provider("dev0/read-temp").unwrap();
        assert_eq!(provider.departures, 1);
        assert_eq!(provider.rejoins, 1);
    }

    #[test]
    fn history_is_bounded_and_evictions_are_counted() {
        let config = GatewayConfig::builder().history_limit(3).build();
        let gateway = Gateway::new(market_with(script(1)), config);
        register_devices(&gateway, 1.0);
        for _ in 0..10 {
            gateway.submit(Request::new("temp")).unwrap();
        }
        let history = gateway.slot_history("temp");
        assert_eq!(history.len(), 3, "ring keeps only the newest records");
        let slots: Vec<u64> = history.iter().map(|r| r.slot).collect();
        assert_eq!(slots, vec![7, 8, 9], "oldest slots were evicted first");
        let snapshot = gateway.telemetry().snapshot();
        assert_eq!(snapshot.service("temp").unwrap().history_evicted, 7);
    }

    /// Builds a virtual-clock gateway with three perfectly reliable
    /// providers (bit-reproducible latencies), for the drift-trigger
    /// tests.
    fn drift_gateway(config: GatewayConfig, reliability: f64) -> Gateway {
        use crate::clock::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let gateway = Gateway::with_clock(
            market_with(script(1)),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        for (i, (cap, ms)) in [("read-temp", 2u64), ("est-temp", 3), ("loc-temp", 5)]
            .iter()
            .enumerate()
        {
            gateway.registry().register(
                SimulatedProvider::builder(format!("dev{i}/{cap}"), *cap)
                    .cost(50.0)
                    .latency(Duration::from_millis(*ms))
                    .reliability(reliability)
                    .seed(i as u64)
                    .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                    .build(),
            );
        }
        gateway
    }

    #[test]
    fn drift_trigger_holds_stable_plans() {
        use crate::telemetry::EventKind;
        // Virtual time: after the priors-vs-observations jump at slot 1,
        // the assumed environment is bit-identical at every boundary, so
        // drift mode plans exactly twice and holds the rest.
        let config = GatewayConfig::builder().replan_on_drift(true).build();
        let gateway = drift_gateway(config, 1.0);
        let slots: Vec<u64> = (0..6)
            .map(|_| gateway.submit(Request::new("temp")).unwrap().slot)
            .collect();
        assert_eq!(slots, vec![0, 1, 2, 3, 4, 5], "slots still advance");
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert_eq!(svc.replans, 2, "slot 0 default + the slot-1 drift");
        assert_eq!(svc.drift_replans, 1, "only slot 1 left the band");
        assert_eq!(svc.drift_holds, 4, "slots 2-5 held the generated plan");
        let triggers: Vec<(u64, f64)> = snapshot
            .recent_events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::ReplanTriggered { slot, drift, .. } => Some((*slot, *drift)),
                _ => None,
            })
            .collect();
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].0, 1);
        assert!(triggers[0].1 > 0.0 && triggers[0].1 <= 1.0);
        // The cadence baseline re-plans at all six boundaries.
        let cadence = drift_gateway(GatewayConfig::default(), 1.0);
        for _ in 0..6 {
            cadence.submit(Request::new("temp")).unwrap();
        }
        let base = cadence.telemetry().snapshot();
        assert_eq!(base.service("temp").unwrap().replans, 6);
    }

    #[test]
    fn drift_trigger_fires_on_unstable_observations() {
        // Flaky providers (seeded, deterministic): the collector's
        // reliability mean moves between boundaries, so drift mode keeps
        // re-planning instead of holding a stale plan.
        let config = GatewayConfig::builder().replan_on_drift(true).build();
        let gateway = drift_gateway(config, 0.5);
        for _ in 0..8 {
            let _ = gateway.submit(Request::new("temp"));
        }
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert!(
            svc.drift_replans >= 2,
            "unstable observations must keep tripping the trigger \
             (drift_replans={}, drift_holds={})",
            svc.drift_replans,
            svc.drift_holds
        );
    }

    #[test]
    fn drift_hold_never_survives_a_requirement_override() {
        // A zero-drift boundary must still re-plan when a live override
        // changed the effective requirement: the held plan was synthesized
        // for a demand the operator just replaced.
        let config = GatewayConfig::builder().replan_on_drift(true).build();
        let gateway = drift_gateway(config, 1.0);
        for _ in 0..4 {
            gateway.submit(Request::new("temp")).unwrap();
        }
        let before = gateway.telemetry().snapshot();
        let before_svc = before.service("temp").unwrap();
        assert_eq!(before_svc.replans, 2, "steady state: holding");
        gateway
            .control()
            .set_requirement("temp", Requirements::new(500.0, 500.0, 0.5).unwrap());
        gateway.submit(Request::new("temp")).unwrap();
        let after = gateway.telemetry().snapshot();
        let after_svc = after.service("temp").unwrap();
        assert_eq!(
            after_svc.replans,
            before_svc.replans + 1,
            "the override boundary re-planned despite zero drift"
        );
    }

    #[test]
    fn drift_and_bandit_replay_byte_identical_telemetry() {
        use crate::telemetry::EventKind;
        // Satellite property: the whole adaptive stack — drift trigger +
        // UCB1 backend bandit — is deterministic. Two identical runs must
        // produce byte-identical telemetry event streams once the one
        // wall-clock field (synthesis elapsed) is zeroed.
        let run = || {
            let config = GatewayConfig::builder()
                .replan_on_drift(true)
                .planner(qce_strategy::BackendChoice::Auto)
                .generator_parallelism(1)
                .build();
            let gateway = drift_gateway(config, 0.5);
            for _ in 0..10 {
                let _ = gateway.submit(Request::new("temp"));
            }
            let events: Vec<crate::telemetry::TelemetryEvent> = gateway
                .telemetry()
                .events()
                .iter()
                .cloned()
                .map(|mut e| {
                    if let EventKind::SlotReplanned { elapsed, .. } = &mut e.kind {
                        *elapsed = Duration::ZERO;
                    }
                    e
                })
                .collect();
            serde_json::to_string(&events).unwrap()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second, "replayed telemetry streams diverged");
        // The streams exercise the new adaptive events, not a vacuous
        // equality of empty rings.
        let events: Vec<crate::telemetry::TelemetryEvent> = serde_json::from_str(&first).unwrap();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::BackendChosen { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ReplanTriggered { .. })));
    }

    #[test]
    fn plan_cache_and_warm_start_surface_in_telemetry() {
        use crate::clock::VirtualClock;
        use crate::telemetry::EventKind;
        use qce_strategy::PlanSource;

        // Virtual time makes provider latencies exactly reproducible, so
        // the collector means — and with them the assumed environment —
        // are bit-identical from slot to slot: the plan cache must hit.
        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .generator_warm_start(true)
            .plan_cache(true)
            .build();
        let gateway = Gateway::with_clock(
            market_with(script(1)),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        for (i, (cap, ms)) in [("read-temp", 2u64), ("est-temp", 3), ("loc-temp", 5)]
            .iter()
            .enumerate()
        {
            gateway.registry().register(
                SimulatedProvider::builder(format!("dev{i}/{cap}"), *cap)
                    .cost(50.0)
                    .latency(Duration::from_millis(*ms))
                    .reliability(1.0)
                    .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                    .build(),
            );
        }
        for _ in 0..6 {
            assert!(gateway.submit(Request::new("temp")).unwrap().success);
        }
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert_eq!(svc.replans, 6, "slot_size 1: one re-plan per invocation");
        assert_eq!(svc.plans_cold, 1, "slot 1 is the first real search");
        assert_eq!(
            svc.plans_cached, 4,
            "slots 2-5 see a bit-identical environment"
        );
        assert_eq!(svc.plan_cache_hits, 4);
        assert_eq!(svc.plan_cache_misses, 1);
        // The replan events carry the provenance (None for slot 0's
        // unsearched default).
        let sources: Vec<Option<PlanSource>> = snapshot
            .recent_events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SlotReplanned { source, .. } => Some(*source),
                _ => None,
            })
            .collect();
        assert_eq!(sources[0], None);
        assert_eq!(sources[1], Some(PlanSource::Cold));
        assert!(sources[2..].iter().all(|s| *s == Some(PlanSource::Cached)));
        // Eviction invalidates the cache and surfaces the drop as stale.
        gateway.evict_service("temp");
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert!(svc.plan_cache_stale >= 1, "evicted entries counted stale");
    }

    /// A gate the tests use to hold a provider open until released, with a
    /// count of how many invocations have entered it.
    struct TestGate {
        state: StdMutex<(bool, u32)>,
        cond: Condvar,
    }

    impl TestGate {
        fn new() -> Arc<Self> {
            Arc::new(TestGate {
                state: StdMutex::new((false, 0)),
                cond: Condvar::new(),
            })
        }

        /// Blocks the calling provider until [`TestGate::open`], counting it
        /// as entered first.
        fn enter(&self) {
            let mut state = self.state.lock().unwrap();
            state.1 += 1;
            self.cond.notify_all();
            while !state.0 {
                state = self.cond.wait(state).unwrap();
            }
        }

        /// Waits until `n` provider invocations are blocked inside the gate.
        fn await_entered(&self, n: u32) {
            let mut state = self.state.lock().unwrap();
            while state.1 < n {
                state = self.cond.wait(state).unwrap();
            }
        }

        fn open(&self) {
            let mut state = self.state.lock().unwrap();
            state.0 = true;
            self.cond.notify_all();
        }
    }

    fn one_ms_script() -> ServiceScript {
        let mut s = ServiceScript::new(
            "svc",
            vec![MsSpec {
                name: "a".into(),
                capability: "cap-a".into(),
                prior: Qos::new(50.0, 5.0, 0.9).unwrap(),
            }],
            Requirements::new(1000.0, 1000.0, 0.5).unwrap(),
        );
        s.slot_size = 100;
        s
    }

    /// Two microservices with the sequential fail-over default `a-b`, so a
    /// budget tripping between the legs has something left to prune.
    fn seq_script() -> ServiceScript {
        let mut s = ServiceScript::new(
            "svc",
            vec![
                MsSpec {
                    name: "a".into(),
                    capability: "cap-a".into(),
                    prior: Qos::new(50.0, 5.0, 0.9).unwrap(),
                },
                MsSpec {
                    name: "b".into(),
                    capability: "cap-b".into(),
                    prior: Qos::new(50.0, 5.0, 0.9).unwrap(),
                },
            ],
            Requirements::new(1000.0, 1000.0, 0.5).unwrap(),
        );
        s.default_strategy = Some("a-b".to_string());
        s.slot_size = 100;
        s
    }

    #[test]
    fn concurrent_invocations_of_one_service_run_in_parallel() {
        use std::sync::Barrier;

        let gateway = Gateway::new(market_with(one_ms_script()), GatewayConfig::default());
        // Both invocations must be inside the provider at the same moment,
        // or the barrier never releases and the test hangs.
        let rendezvous = Arc::new(Barrier::new(2));
        let barrier = Arc::clone(&rendezvous);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            move |_| {
                barrier.wait();
                Ok(vec![1])
            },
        ));
        std::thread::scope(|scope| {
            let a = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            let b = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            assert!(a.join().unwrap().success);
            assert!(b.join().unwrap().success);
        });
        let snapshot = gateway.telemetry().snapshot();
        assert_eq!(snapshot.service("svc").unwrap().invocations, 2);
    }

    #[test]
    fn admission_sheds_past_the_queue_and_counts_it() {
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(0)
            .build();
        let gateway = Gateway::new(market_with(one_ms_script()), config);
        let gate = TestGate::new();
        let provider_gate = Arc::clone(&gate);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            move |_| {
                provider_gate.enter();
                Ok(vec![1])
            },
        ));
        std::thread::scope(|scope| {
            let running = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            gate.await_entered(1);
            // The service is at its limit with no queue: shed immediately.
            let shed = gateway.submit(Request::new("svc"));
            assert!(matches!(shed, Err(RuntimeError::Overloaded { .. })));
            gate.open();
            assert!(running.join().unwrap().success);
        });
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 1);
        assert_eq!(svc.invocations, 1, "the shed request never executed");
        assert!(gateway.telemetry().events().iter().any(|e| matches!(
            &e.kind,
            crate::telemetry::EventKind::RequestShed {
                service,
                class,
                in_flight,
                queued,
            } if service == "svc"
                && *class == QosClass::Interactive
                && *in_flight == 1
                && *queued == 0
        )));
    }

    #[test]
    fn queued_request_waits_for_a_slot_and_proceeds() {
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(4)
            .build();
        let gateway = Gateway::new(market_with(one_ms_script()), config);
        let gate = TestGate::new();
        let provider_gate = Arc::clone(&gate);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            move |_| {
                provider_gate.enter();
                Ok(vec![1])
            },
        ));
        std::thread::scope(|scope| {
            let first = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            gate.await_entered(1);
            let queued = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            // Wait until the second request is visibly parked in the
            // admission queue before releasing the first.
            while gateway
                .telemetry()
                .snapshot()
                .service("svc")
                .map_or(0, |s| s.admission_queue_peak)
                < 1
            {
                std::thread::yield_now();
            }
            gate.open();
            assert!(first.join().unwrap().success);
            assert!(queued.join().unwrap().success);
        });
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 0, "the queue absorbed the burst");
        assert_eq!(svc.admission_queue_peak, 1);
        assert_eq!(svc.admission_queue_depth, 0, "queue drained");
        assert_eq!(svc.invocations, 2);
    }

    /// A caller that is already a registered clock worker (a load
    /// generator that pins its clients to virtual time) must park
    /// *passively* while queued for admission: if its condvar wait counted
    /// as an active worker, virtual time could never advance over the
    /// in-flight request it is waiting on, and the gateway would deadlock.
    #[test]
    fn registered_caller_queues_passively_without_stalling_virtual_time() {
        use crate::clock::{VirtualClock, WorkerGuard};

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(4)
            .build();
        let gateway = Gateway::with_clock(
            market_with(one_ms_script()),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let gate = TestGate::new();
        let provider_gate = Arc::clone(&gate);
        let provider_clock = Arc::clone(&clock);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            move |_| {
                provider_gate.enter();
                provider_clock.sleep(Duration::from_millis(8));
                Ok(vec![1])
            },
        ));
        std::thread::scope(|scope| {
            let first = scope.spawn(|| {
                let _worker = WorkerGuard::enter(&*clock);
                gateway.submit(Request::new("svc")).unwrap()
            });
            gate.await_entered(1);
            let queued = scope.spawn(|| {
                let _worker = WorkerGuard::enter(&*clock);
                gateway.submit(Request::new("svc")).unwrap()
            });
            // The second caller must be parked in the admission queue
            // before the first is released, or it would be admitted
            // directly and never exercise the passive wait.
            while gateway
                .telemetry()
                .snapshot()
                .service("svc")
                .map_or(0, |s| s.admission_queue_peak)
                < 1
            {
                std::thread::yield_now();
            }
            gate.open();
            assert!(first.join().unwrap().success);
            assert!(queued.join().unwrap().success);
        });
        // Each request slept 8 virtual ms, strictly serialised by the
        // in-flight limit of one.
        assert_eq!(clock.now(), Duration::from_millis(16));
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 0);
        assert_eq!(svc.admission_queue_peak, 1);
        assert_eq!(svc.invocations, 2);
    }

    #[test]
    fn deadline_prunes_unstarted_legs_and_is_counted() {
        use crate::clock::VirtualClock;

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .request_deadline(Some(Duration::from_millis(8)))
            .build();
        let gateway = Gateway::with_clock(
            market_with(seq_script()),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // Leg `a` fails after 16 virtual ms — past the 8 ms deadline — so
        // fail-over leg `b` must be pruned, not started.
        for (cap, reliability, ms) in [("cap-a", 0.0, 16u64), ("cap-b", 1.0, 1)] {
            gateway.registry().register(
                SimulatedProvider::builder(format!("dev/{cap}"), cap)
                    .cost(50.0)
                    .latency(Duration::from_millis(ms))
                    .reliability(reliability)
                    .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                    .build(),
            );
        }
        let response = gateway.submit(Request::new("svc")).unwrap();
        assert!(!response.success);
        assert_eq!(response.pruned, Some(PruneReason::DeadlineExceeded));
        assert_eq!(response.cost, 50.0, "leg b never started, never charged");
        let snapshot = gateway.telemetry().snapshot();
        assert_eq!(snapshot.service("svc").unwrap().deadline_exceeded, 1);
        assert!(gateway.telemetry().events().iter().any(|e| matches!(
            &e.kind,
            crate::telemetry::EventKind::DeadlineExceeded { service, .. } if service == "svc"
        )));
    }

    #[test]
    fn evict_during_in_flight_cancels_the_request_and_flushes_once() {
        use std::sync::atomic::AtomicU32;

        use crate::clock::VirtualClock;

        let clock = Arc::new(VirtualClock::new());
        let gateway = Gateway::with_clock(
            market_with(seq_script()),
            GatewayConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let gate = TestGate::new();
        let provider_gate = Arc::clone(&gate);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            50.0,
            move |_| {
                provider_gate.enter();
                Err(crate::message::InvokeError::ExecutionFailed {
                    reason: "noisy".to_string(),
                })
            },
        ));
        let b_calls = Arc::new(AtomicU32::new(0));
        let b_counter = Arc::clone(&b_calls);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-b",
            "cap-b",
            50.0,
            move |_| {
                b_counter.fetch_add(1, Ordering::SeqCst);
                Ok(vec![2])
            },
        ));
        std::thread::scope(|scope| {
            let in_flight = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            // The request is mid-leg-`a` when the service is evicted.
            gate.await_entered(1);
            gateway.evict_service("svc");
            assert!(gateway.slot_history("svc").is_empty(), "state dropped");
            // A second eviction finds nothing left to invalidate or flush.
            gateway.evict_service("svc");
            gate.open();
            let response = in_flight.join().unwrap();
            assert!(!response.success);
            assert_eq!(response.pruned, Some(PruneReason::Cancelled));
            assert_eq!(response.cost, 50.0, "only leg a was charged");
        });
        assert_eq!(
            b_calls.load(Ordering::SeqCst),
            0,
            "fail-over leg b was pruned by the eviction"
        );
        // The service restarts cleanly: a fresh invocation re-fetches the
        // script and, with the gate now open, fails over from a to b.
        let response = gateway.submit(Request::new("svc")).unwrap();
        assert!(response.success);
        assert_eq!(response.slot, 0, "fresh state");
        assert_eq!(response.pruned, None);
        assert_eq!(b_calls.load(Ordering::SeqCst), 1);
        let snapshot = gateway.telemetry().snapshot();
        assert_eq!(snapshot.market.fetches, 2, "evicted script re-fetched");
    }

    /// Satellite property test: smooth weighted round-robin never starves
    /// a queue that stays nonempty, whatever the (seeded pseudo-random)
    /// pattern of nonempty classes around it.
    #[test]
    fn weighted_dequeue_never_starves_a_nonempty_class() {
        let total_weight: i64 = QosClass::ALL.iter().map(|c| i64::from(c.weight())).sum();

        // With every queue backlogged, picks match the weights exactly.
        let mut wrr = [0i64; CLASS_COUNT];
        let mut picks = [0usize; CLASS_COUNT];
        for _ in 0..10 * total_weight {
            let picked = pick_class(&mut wrr, [true; CLASS_COUNT]).unwrap();
            picks[picked] += 1;
        }
        assert_eq!(picks, [80, 40, 20, 10], "10 cycles of 8/4/2/1");

        // Seeded LCG → deterministic "random" nonempty patterns.
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rand = move || {
            seed = seed
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (seed >> 33) as usize
        };
        let bound = (4 * total_weight) as usize;
        let mut wrr = [0i64; CLASS_COUNT];
        let mut unserved = [0usize; CLASS_COUNT];
        for round in 0..10_000 {
            let mask = (rand() & 0xF).max(1); // nonempty subset of the 4 classes
            let nonempty: [bool; CLASS_COUNT] = std::array::from_fn(|i| mask & (1 << i) != 0);
            let picked = pick_class(&mut wrr, nonempty).expect("subset is nonempty");
            assert!(nonempty[picked], "picked an empty queue in round {round}");
            for (class, gap) in unserved.iter_mut().enumerate() {
                if !nonempty[class] || class == picked {
                    // An empty queue cannot be starved; a served one isn't.
                    *gap = 0;
                } else {
                    *gap += 1;
                    assert!(
                        *gap <= bound,
                        "class {class} went {gap} picks unserved while nonempty (round {round})"
                    );
                }
            }
        }
        assert_eq!(pick_class(&mut wrr, [false; CLASS_COUNT]), None);
    }

    #[test]
    fn preemption_sheds_scavengers_first_and_lets_critical_preempt() {
        let victim = AdmissionGate::preemption_victim;
        let mut state = GateState::default();
        assert_eq!(victim(&state, QosClass::Critical), None, "empty queue");

        state.waiting[QosClass::Scavenger.index()].push_back(1);
        assert_eq!(
            victim(&state, QosClass::Bulk),
            Some(QosClass::Scavenger.index()),
            "a Scavenger slot sheds to any higher class"
        );
        assert_eq!(victim(&state, QosClass::Scavenger), None, "not to a peer");

        state.waiting[QosClass::Scavenger.index()].clear();
        state.waiting[QosClass::Bulk.index()].push_back(2);
        assert_eq!(
            victim(&state, QosClass::Interactive),
            None,
            "only Critical preempts non-Scavenger classes"
        );
        assert_eq!(
            victim(&state, QosClass::Critical),
            Some(QosClass::Bulk.index())
        );

        state.waiting[QosClass::Interactive.index()].push_back(3);
        assert_eq!(
            victim(&state, QosClass::Critical),
            Some(QosClass::Bulk.index()),
            "the lowest queued class is the victim"
        );
        state.waiting[QosClass::Bulk.index()].clear();
        assert_eq!(
            victim(&state, QosClass::Critical),
            Some(QosClass::Interactive.index())
        );

        state.waiting[QosClass::Interactive.index()].clear();
        state.waiting[QosClass::Critical.index()].push_back(4);
        assert_eq!(
            victim(&state, QosClass::Critical),
            None,
            "Critical never preempts Critical"
        );
    }

    #[test]
    fn critical_preempts_a_queued_scavenger_slot() {
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(1)
            .build();
        let gateway = Gateway::new(market_with(one_ms_script()), config);
        let gate = TestGate::new();
        let provider_gate = Arc::clone(&gate);
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            move |_| {
                provider_gate.enter();
                Ok(vec![1])
            },
        ));
        std::thread::scope(|scope| {
            let running = scope.spawn(|| gateway.submit(Request::new("svc")).unwrap());
            gate.await_entered(1);
            let scavenger =
                scope.spawn(|| gateway.submit(Request::new("svc").class(QosClass::Scavenger)));
            // The scavenger must be visibly parked in the (single-slot)
            // queue before the Critical arrival.
            while gateway
                .telemetry()
                .snapshot()
                .service("svc")
                .map_or(0, |s| s.admission_queue_peak)
                < 1
            {
                std::thread::yield_now();
            }
            let critical = scope.spawn(|| {
                gateway
                    .submit(Request::new("svc").class(QosClass::Critical))
                    .unwrap()
            });
            match scavenger.join().unwrap() {
                Err(RuntimeError::Overloaded {
                    service_id, class, ..
                }) => {
                    assert_eq!(service_id, "svc");
                    assert_eq!(class, QosClass::Scavenger, "the waiter was preempted");
                }
                other => panic!("scavenger should have been shed, got {other:?}"),
            }
            gate.open();
            assert!(running.join().unwrap().success);
            let response = critical.join().unwrap();
            assert!(response.success);
            assert_eq!(response.class, QosClass::Critical);
        });
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 1);
        assert_eq!(svc.class(QosClass::Scavenger).unwrap().shed, 1);
        assert_eq!(svc.class(QosClass::Critical).unwrap().shed, 0);
        assert_eq!(svc.class(QosClass::Critical).unwrap().requests, 1);
    }

    /// Satellite regression test: every `control()` override emits exactly
    /// one telemetry event and applies from the next admission decision.
    #[test]
    fn control_override_emits_one_event_and_applies_to_the_next_request() {
        use crate::telemetry::EventKind;

        let gateway = Gateway::new(market_with(one_ms_script()), GatewayConfig::default());
        gateway.registry().register(crate::device::FnProvider::new(
            "dev-a",
            "cap-a",
            10.0,
            |_| Ok(vec![1]),
        ));
        let before = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(before.class, QosClass::Interactive, "default class");

        gateway.control().set_class("svc", QosClass::Bulk);
        let override_events = gateway
            .telemetry()
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    EventKind::OverrideApplied { service, field, value }
                        if service == "svc" && field == "class" && value == "bulk"
                )
            })
            .count();
        assert_eq!(override_events, 1, "exactly one event per override");

        let after = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(
            after.class,
            QosClass::Bulk,
            "override applied to the next admission decision"
        );
        let explicit = gateway
            .submit(Request::new("svc").class(QosClass::Critical))
            .unwrap();
        assert_eq!(
            explicit.class,
            QosClass::Critical,
            "an explicit request class outranks the override"
        );

        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.overrides, 1);
        assert_eq!(svc.class(QosClass::Interactive).unwrap().requests, 1);
        assert_eq!(svc.class(QosClass::Bulk).unwrap().requests, 1);
        assert_eq!(svc.class(QosClass::Critical).unwrap().requests, 1);
    }

    #[test]
    fn requirement_override_retunes_the_advisory_without_replanning() {
        let gateway = Gateway::new(market_with(one_ms_script()), GatewayConfig::default());
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap-a", "cap-a")
                .cost(50.0)
                .latency(Duration::from_millis(1))
                .reliability(1.0)
                .build(),
        );
        gateway.submit(Request::new("svc")).unwrap();
        gateway.end_slot("svc");
        let calm = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(calm.slot, 1);
        assert!(calm.advisory.is_none(), "requirements are easily met");
        let replans_before = gateway
            .telemetry()
            .snapshot()
            .service("svc")
            .unwrap()
            .replans;

        // An (unmeetable) requirement override flips the advisory on the
        // very next request of the same slot — no re-plan involved.
        gateway
            .control()
            .set_requirement("svc", Requirements::new(0.01, 0.001, 0.9999).unwrap());
        let judged = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(judged.slot, 1, "same slot");
        assert!(
            judged.advisory.is_some(),
            "estimated QoS violates the overridden requirement"
        );
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.replans, replans_before, "no re-plan happened");
        assert_eq!(svc.overrides, 1);
    }

    /// Headline regression test (stale plan on live override): a
    /// requirement override mid-slot must invalidate the plans cached or
    /// warm-started under the old requirement — the next slot boundary
    /// must re-plan **cold** against the new requirement, not serve the
    /// pre-override winner. Pre-fix, the boundary re-planned with the
    /// script requirement (same cache key, nothing invalidated) and served
    /// the stale cached plan: `source` came back `Cached` and the response
    /// ran the old strategy, violating the overridden requirement.
    #[test]
    fn requirement_override_invalidates_plans_and_replans_cold() {
        use crate::clock::VirtualClock;
        use crate::telemetry::EventKind;
        use qce_strategy::PlanSource;

        let mut script = ServiceScript::new(
            "svc",
            vec![
                MsSpec {
                    name: "mCheap".into(),
                    capability: "cap-cheap".into(),
                    prior: Qos::new(10.0, 10.0, 0.9).unwrap(),
                },
                MsSpec {
                    name: "mFast".into(),
                    capability: "cap-fast".into(),
                    prior: Qos::new(200.0, 2.0, 0.9).unwrap(),
                },
            ],
            // Lenient: only the cheap microservice fits the cost budget.
            Requirements::new(50.0, 1000.0, 0.5).unwrap(),
        );
        script.slot_size = 1000; // boundaries driven by end_slot() only

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .generator_warm_start(true)
            .plan_cache(true)
            .build();
        let gateway = Gateway::with_clock(
            market_with(script),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        for (id, cap, cost, ms) in [
            ("dev/cheap", "cap-cheap", 10.0, 10u64),
            ("dev/fast", "cap-fast", 200.0, 2),
        ] {
            gateway.registry().register(
                SimulatedProvider::builder(id, cap)
                    .cost(cost)
                    .latency(Duration::from_millis(ms))
                    .reliability(1.0)
                    .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                    .build(),
            );
        }

        // Slot 0 (default parallel) seeds observations for both providers;
        // slot 1 is the first real search under the lenient requirement.
        gateway.submit(Request::new("svc")).unwrap();
        gateway.end_slot("svc");
        let lenient = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(lenient.slot, 1);
        assert!(lenient.advisory.is_none());
        assert_eq!(
            lenient.latency,
            Duration::from_millis(10),
            "under the lenient requirement the cheap (slow) leg wins"
        );

        // Mid-slot override: the operator now demands 5 ms end-to-end and
        // tolerates the expensive provider. Then cross a slot boundary.
        let strict = Requirements::new(500.0, 5.0, 0.5).unwrap();
        gateway.control().set_requirement("svc", strict);
        gateway.end_slot("svc");
        let judged = gateway.submit(Request::new("svc")).unwrap();
        assert_eq!(judged.slot, 2);
        assert!(
            judged.advisory.is_none(),
            "the new plan must satisfy the overridden requirement, got {:?}",
            judged.advisory
        );
        assert_eq!(
            judged.latency,
            Duration::from_millis(2),
            "the re-plan must switch to the fast leg"
        );

        // And the re-plan must be truly cold: the cached winner and the
        // warm-start incumbent were both won under the old requirement.
        let snapshot = gateway.telemetry().snapshot();
        let slot2_source = snapshot
            .recent_events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::SlotReplanned {
                    slot: 2, source, ..
                } => Some(*source),
                _ => None,
            })
            .next_back()
            .expect("slot 2 re-planned");
        assert_eq!(slot2_source, Some(PlanSource::Cold));
        let svc = snapshot.service("svc").unwrap();
        assert!(svc.plan_cache_stale >= 1, "old-requirement plans dropped");
    }

    #[test]
    fn critical_class_applies_its_default_deadline() {
        use crate::clock::VirtualClock;

        let clock = Arc::new(VirtualClock::new());
        let gateway = Gateway::with_clock(
            market_with(seq_script()),
            GatewayConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        // Leg `a` fails after 300 virtual ms — past Critical's 250 ms
        // default — so a Critical request prunes fail-over leg `b`, while
        // an Interactive request (no default deadline) fails over fine.
        for (cap, reliability, ms) in [("cap-a", 0.0, 300u64), ("cap-b", 1.0, 1)] {
            gateway.registry().register(
                SimulatedProvider::builder(format!("dev/{cap}"), cap)
                    .cost(50.0)
                    .latency(Duration::from_millis(ms))
                    .reliability(reliability)
                    .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                    .build(),
            );
        }
        let critical = gateway
            .submit(Request::new("svc").class(QosClass::Critical))
            .unwrap();
        assert!(!critical.success);
        assert_eq!(critical.pruned, Some(PruneReason::DeadlineExceeded));
        let detail = critical.prune_detail.expect("always present when pruned");
        assert_eq!(detail.class, QosClass::Critical);
        assert_eq!(detail.remaining, Some(Duration::ZERO));

        let interactive = gateway.submit(Request::new("svc")).unwrap();
        assert!(interactive.success, "no default deadline: fail-over runs");
        assert_eq!(interactive.pruned, None);

        assert!(gateway.telemetry().events().iter().any(|e| matches!(
            &e.kind,
            crate::telemetry::EventKind::DeadlineExceeded { service, class, .. }
                if service == "svc" && *class == QosClass::Critical
        )));
    }

    #[test]
    fn telemetry_counts_requests_and_replans() {
        let gateway = Gateway::new(market_with(script(3)), GatewayConfig::default());
        register_devices(&gateway, 1.0);
        for _ in 0..7 {
            gateway.submit(Request::new("temp")).unwrap();
        }
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("temp").unwrap();
        assert_eq!(svc.invocations, 7);
        assert_eq!(svc.successes, 7);
        assert_eq!(svc.replans, 3, "slots 0, 1 and 2 were each planned once");
        assert_eq!(svc.latency_ms.count, 7);
        assert_eq!(
            snapshot.market.fetches, 1,
            "script fetched once, then cached"
        );
    }

    /// Bugfix regression: a request whose effective deadline is zero used
    /// to enter the engine, reserve workers, and charge the cost of its
    /// started leaves before the first prune check rejected it. It must be
    /// rejected at admission — no queue slot, no invocation, no cost —
    /// and counted as exactly one deadline-exceeded event.
    #[test]
    fn zero_deadline_is_rejected_before_admission_and_counted_once() {
        use crate::clock::VirtualClock;

        let clock = Arc::new(VirtualClock::new());
        let gateway = Gateway::with_clock(
            market_with(one_ms_script()),
            GatewayConfig::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap-a", "cap-a")
                .cost(50.0)
                .latency(Duration::from_millis(1))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
        match gateway.submit(Request::new("svc").deadline(Duration::ZERO)) {
            Err(RuntimeError::DeadlineExceeded { service_id, class }) => {
                assert_eq!(service_id, "svc");
                assert_eq!(class, QosClass::Interactive);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.deadline_exceeded, 1, "counted exactly once");
        assert_eq!(svc.invocations, 0, "never entered the engine");
        assert_eq!(clock.now(), Duration::ZERO, "no virtual time consumed");

        // The same applies to a dead-on-arrival deadline set through the
        // control plane rather than the request.
        gateway.control().set_deadline("svc", Some(Duration::ZERO));
        assert!(matches!(
            gateway.submit(Request::new("svc")),
            Err(RuntimeError::DeadlineExceeded { .. })
        ));
        let snapshot = gateway.telemetry().snapshot();
        assert_eq!(snapshot.service("svc").unwrap().deadline_exceeded, 2);
        assert_eq!(snapshot.service("svc").unwrap().invocations, 0);

        // An explicit (positive) request deadline outranks the override
        // and the request executes normally.
        let response = gateway
            .submit(Request::new("svc").deadline(Duration::from_millis(100)))
            .unwrap();
        assert!(response.success);
    }

    /// Bugfix regression: handing out a queue slot used to
    /// `expect("victim class has waiters")` / `expect("class is
    /// nonempty")` on a queue snapshot. With asynchronous tickets a queued
    /// waiter can leave through a third door — its queue deadline
    /// cancelling the ticket — so preemption and release now re-check
    /// occupancy and fall through instead of panicking. Race cancellation
    /// against preemption and grant on every side of the gate.
    #[test]
    fn ticket_cancellation_racing_preemption_and_release_never_panics() {
        use std::sync::atomic::AtomicUsize;

        let gate = Arc::new(AdmissionGate::new(1, 2));
        // Occupy the single in-flight slot for the whole race so every
        // arrival goes through the queue paths.
        let permit = gate.admit(QosClass::Bulk, &WallClock::new(), |_, _, _| {});
        let permit = match permit {
            Ok(permit) => permit,
            Err(_) => panic!("empty gate admits"),
        };
        let fired = Arc::new(AtomicUsize::new(0));
        let rounds = 200;
        std::thread::scope(|scope| {
            // Scavengers queue asynchronously and their tickets are
            // cancelled concurrently (the queue-deadline path).
            let canceller = {
                let gate = Arc::clone(&gate);
                let fired = Arc::clone(&fired);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        let fired = Arc::clone(&fired);
                        match gate.admit_async(
                            QosClass::Scavenger,
                            Box::new(move |_| {
                                fired.fetch_add(1, Ordering::SeqCst);
                            }),
                            |_, _, _| {},
                        ) {
                            AsyncAdmission::Queued(ticket) => {
                                std::thread::yield_now();
                                if let Some(waker) =
                                    gate.cancel_ticket(QosClass::Scavenger, ticket, |_, _, _| {})
                                {
                                    waker(AdmitOutcome::Expired);
                                }
                            }
                            AsyncAdmission::Admitted(_) => {
                                panic!("the slot is held for the whole race")
                            }
                            AsyncAdmission::Shed(_, waker) => waker(AdmitOutcome::Shutdown),
                        }
                    }
                })
            };
            // Critical arrivals preempt whatever Scavenger is queued.
            let preemptor = {
                let gate = Arc::clone(&gate);
                let fired = Arc::clone(&fired);
                scope.spawn(move || {
                    for _ in 0..rounds {
                        let fired = Arc::clone(&fired);
                        match gate.admit_async(
                            QosClass::Critical,
                            Box::new(move |_| {
                                fired.fetch_add(1, Ordering::SeqCst);
                            }),
                            |_, _, _| {},
                        ) {
                            AsyncAdmission::Queued(ticket) => {
                                if let Some(waker) =
                                    gate.cancel_ticket(QosClass::Critical, ticket, |_, _, _| {})
                                {
                                    waker(AdmitOutcome::Expired);
                                }
                            }
                            AsyncAdmission::Admitted(_) => {
                                panic!("the slot is held for the whole race")
                            }
                            AsyncAdmission::Shed(_, waker) => waker(AdmitOutcome::Shutdown),
                        }
                    }
                })
            };
            canceller.join().unwrap();
            preemptor.join().unwrap();
        });
        // Every ticket's waker fired exactly once (cancelled, preempted,
        // or shed) or is still queued; nothing double-fired or vanished.
        let state = gate.state.lock().unwrap();
        assert_eq!(state.in_flight, 1, "the held slot is still counted");
        assert_eq!(
            state.queued(),
            state.wakers.len(),
            "every queued ticket still owns exactly one waker"
        );
        let queued = state.queued();
        drop(state);
        assert_eq!(
            fired.load(Ordering::SeqCst) + queued,
            2 * rounds,
            "each ticket resolved exactly once"
        );
        drop(permit);
    }

    /// An asynchronous submission is the same request as a blocking one:
    /// same planning, same execution, same telemetry — bit-identical
    /// response.
    #[test]
    fn submit_async_matches_blocking_submit_bit_for_bit() {
        use crate::clock::VirtualClock;

        let run = |blocking: bool| -> ServiceResponse {
            let clock = Arc::new(VirtualClock::new());
            let gateway = Arc::new(Gateway::with_clock(
                market_with(script(10)),
                GatewayConfig::default(),
                Arc::clone(&clock) as Arc<dyn Clock>,
            ));
            for (i, (cap, ms)) in [("read-temp", 2u64), ("est-temp", 3), ("loc-temp", 5)]
                .iter()
                .enumerate()
            {
                gateway.registry().register(
                    SimulatedProvider::builder(format!("dev{i}/{cap}"), *cap)
                        .cost(50.0)
                        .latency(Duration::from_millis(*ms))
                        .reliability(0.9)
                        .seed(i as u64)
                        .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                        .build(),
                );
            }
            if blocking {
                gateway.submit(Request::new("temp")).unwrap()
            } else {
                gateway
                    .submit_async(Request::new("temp"))
                    .unwrap()
                    .wait()
                    .unwrap()
            }
        };
        let blocking = run(true);
        let asynchronous = run(false);
        assert_eq!(blocking, asynchronous);
    }

    /// A queued asynchronous request whose deadline expires before a slot
    /// frees up fails with `DeadlineExceeded` without ever executing —
    /// and is counted exactly once even though both the queue-deadline
    /// timer and the continuation's own expiry check could observe it.
    #[test]
    fn queued_async_request_expires_without_executing() {
        use crate::clock::{VirtualClock, WorkerGuard};

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(4)
            .build();
        let gateway = Arc::new(Gateway::with_clock(
            market_with(one_ms_script()),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap-a", "cap-a")
                .cost(50.0)
                .latency(Duration::from_millis(10))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
        let (first, second) = {
            // Pin virtual time while both submissions land, so the second
            // is deterministically queued behind the first.
            let _pin = WorkerGuard::enter(&*clock);
            let first = gateway.submit_async(Request::new("svc")).unwrap();
            let second = gateway
                .submit_async(Request::new("svc").deadline(Duration::from_millis(2)))
                .unwrap();
            (first, second)
        };
        match second.wait() {
            Err(RuntimeError::DeadlineExceeded { service_id, class }) => {
                assert_eq!(service_id, "svc");
                assert_eq!(class, QosClass::Interactive);
            }
            other => panic!("expected queue-deadline expiry, got {other:?}"),
        }
        let first = first.wait().unwrap();
        assert!(first.success);
        assert_eq!(first.latency, Duration::from_millis(10));
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.deadline_exceeded, 1, "counted exactly once");
        assert_eq!(svc.invocations, 1, "the expired request never executed");
        assert_eq!(svc.latency_ms.count, 1, "only the first became a request");
    }

    /// The preemption contract carries over to asynchronous waiters: a
    /// queued async Scavenger preempted by a Critical arrival resolves its
    /// handle with `Overloaded` and is counted as shed.
    #[test]
    fn critical_arrival_preempts_a_queued_async_scavenger() {
        use crate::clock::{VirtualClock, WorkerGuard};

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(1)
            .build();
        let gateway = Arc::new(Gateway::with_clock(
            market_with(one_ms_script()),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap-a", "cap-a")
                .cost(50.0)
                .latency(Duration::from_millis(5))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
        let (running, scavenger, critical) = {
            let _pin = WorkerGuard::enter(&*clock);
            let running = gateway.submit_async(Request::new("svc")).unwrap();
            let scavenger = gateway
                .submit_async(Request::new("svc").class(QosClass::Scavenger))
                .unwrap();
            let critical = gateway
                .submit_async(Request::new("svc").class(QosClass::Critical))
                .unwrap();
            (running, scavenger, critical)
        };
        match scavenger.wait() {
            Err(RuntimeError::Overloaded {
                service_id, class, ..
            }) => {
                assert_eq!(service_id, "svc");
                assert_eq!(class, QosClass::Scavenger, "the waiter was preempted");
            }
            other => panic!("scavenger should have been shed, got {other:?}"),
        }
        assert!(running.wait().unwrap().success);
        let critical = critical.wait().unwrap();
        assert!(critical.success);
        assert_eq!(critical.class, QosClass::Critical);
        let snapshot = gateway.telemetry().snapshot();
        let svc = snapshot.service("svc").unwrap();
        assert_eq!(svc.requests_shed, 1);
        assert_eq!(svc.class(QosClass::Scavenger).unwrap().shed, 1);
        assert_eq!(svc.class(QosClass::Critical).unwrap().requests, 1);
    }

    /// Bugfix regression: dropping the gateway with requests in flight
    /// used to panic the engine (`pool.upgrade().expect("engine outlives
    /// its walk")`). Now every pending handle resolves with
    /// [`RuntimeError::Shutdown`] — in-flight requests via the core's
    /// shutdown sweep, queued admissions via their drained wakers — and
    /// nothing parks forever.
    #[test]
    fn dropping_the_gateway_resolves_in_flight_and_queued_handles() {
        use crate::clock::{VirtualClock, WorkerGuard};

        let clock = Arc::new(VirtualClock::new());
        let config = GatewayConfig::builder()
            .max_in_flight(1)
            .admission_queue(4)
            .build();
        let gateway = Arc::new(Gateway::with_clock(
            market_with(one_ms_script()),
            config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap-a", "cap-a")
                .cost(50.0)
                .latency(Duration::from_millis(5))
                .reliability(1.0)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build(),
        );
        // Pin virtual time for the gateway's whole lifetime: the leaf's
        // completion event can never fire, so the first request is
        // mid-flight and the second still queued when the gateway drops.
        let _pin = WorkerGuard::enter(&*clock);
        let in_flight = gateway.submit_async(Request::new("svc")).unwrap();
        let queued = gateway.submit_async(Request::new("svc")).unwrap();
        while gateway.engine_stats().in_flight < 1 {
            std::thread::yield_now();
        }
        drop(gateway);
        assert!(matches!(in_flight.wait(), Err(RuntimeError::Shutdown)));
        assert!(matches!(queued.wait(), Err(RuntimeError::Shutdown)));
    }
}

//! Time as a capability: every component that waits or timestamps does so
//! through a [`Clock`], so the whole runtime can run on either real time
//! ([`WallClock`]) or deterministic simulated time ([`VirtualClock`]).
//!
//! The virtual clock makes the test suite both *fast* (no real sleeping:
//! a 500 ms simulated latency costs microseconds) and *deterministic*
//! (latency assertions are exact equalities, not fuzzy bounds).
//!
//! # The advance protocol
//!
//! [`VirtualClock`] coordinates real OS threads over simulated time. It
//! tracks, per clock:
//!
//! * **workers** — threads currently doing runtime work. Registration is
//!   *thread-bound*: a worker slot is reserved with
//!   [`Clock::reserve_worker`] (or [`Clock::enter_worker`]) and bound to
//!   an OS thread with [`Clock::adopt_worker`], so the clock knows which
//!   threads count as workers.
//! * **worker sleepers** — registered worker threads blocked in
//!   [`Clock::sleep`]. Sleeps from *unregistered* threads (a market
//!   fetch on a caller thread, a test poking a provider directly) are
//!   tracked only for their deadlines and never count toward the advance
//!   threshold, so virtual time cannot jump while a registered worker is
//!   still computing just because some bystander thread went to sleep.
//! * **parked** — workers blocked in a *passive* wait (joining spawned
//!   children), which make no progress on their own.
//!
//! Virtual time advances — jumping straight to the earliest sleeping
//! deadline (registered or not) — exactly when no worker can make
//! progress: at least one sleeper exists and
//! `worker_sleepers + parked >= workers`. A thread that sleeps while no
//! workers are registered advances time immediately.
//!
//! Registered workers must never block outside [`Clock::sleep`] without
//! bracketing the wait in [`Clock::enter_passive`]/[`Clock::exit_passive`],
//! or virtual time stalls and every sleeper deadlocks. Use [`WorkerGuard`]
//! rather than calling `enter_worker`/`exit_worker` by hand: it
//! deregisters on drop, so a panicking provider cannot leak the worker
//! count and hang every later sleeper.
//!
//! A parked parent is indistinguishable from a blocked one, so if the
//! *last* child a parent is joining released its own slot on exit, there
//! would be a window — children done, parent notified but not yet
//! rescheduled — where `worker_sleepers + parked >= workers` holds
//! spuriously and time skips past the parent's pending continuation.
//! The slot-handoff rule closes it: a completing leg unbinds with
//! [`Clock::disown_worker`], and the last leg to finish *while the
//! parent is parked* leaves its slot counted for the parent to release
//! ([`Clock::release_worker`]) after [`Clock::exit_passive`], once it is
//! demonstrably running again. Every other leg — siblings outstanding,
//! or parent still active on its inline child — releases its own slot,
//! since a kept slot would then block the sleeps that legitimately drive
//! time forward.
//!
//! Multiple top-level invocations may share one `VirtualClock` (each
//! registers its own workers), but determinism then only extends to the
//! set of wake-ups, not their interleaving: concurrent invocations race
//! on OS scheduling exactly as concurrent wall-clock work would.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A source of time and sleep for the runtime.
///
/// `now` is an offset from the clock's epoch (construction time for
/// [`WallClock`], zero for [`VirtualClock`]); only differences between
/// `now` readings of the *same* clock are meaningful.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks the calling thread for `duration` of this clock's time.
    fn sleep(&self, duration: Duration);

    /// Registers the calling thread as an active worker — equivalent to
    /// [`reserve_worker`](Clock::reserve_worker) followed by
    /// [`adopt_worker`](Clock::adopt_worker). No-op for real-time clocks.
    fn enter_worker(&self) {}

    /// Reserves one worker slot *without* binding it to a thread. A parent
    /// calls this before spawning a child thread so the slot exists before
    /// the child runs; the child then binds itself with
    /// [`adopt_worker`](Clock::adopt_worker). No-op for real-time clocks.
    fn reserve_worker(&self) {}

    /// Binds the calling thread to a worker slot previously created with
    /// [`reserve_worker`](Clock::reserve_worker). No-op for real-time
    /// clocks.
    fn adopt_worker(&self) {}

    /// Unbinds the calling thread and releases one worker slot. No-op for
    /// real-time clocks.
    fn exit_worker(&self) {}

    /// Unbinds the calling thread from its worker slot *without* releasing
    /// the slot: the slot keeps counting toward the advance threshold until
    /// someone calls [`release_worker`](Clock::release_worker) for it. A
    /// completed parallel leg uses this to hand its slot to the joining
    /// parent, so virtual time cannot advance in the window between the
    /// leg's completion and the parent resuming from its passive wait.
    /// No-op for real-time clocks.
    fn disown_worker(&self) {}

    /// Releases one worker slot that is not bound to the calling thread —
    /// the counterpart of [`disown_worker`](Clock::disown_worker), called
    /// by whichever thread the slot was handed to. No-op for real-time
    /// clocks.
    fn release_worker(&self) {}

    /// Marks one worker as passively blocked (e.g. joining a spawned
    /// thread). No-op for real-time clocks.
    fn enter_passive(&self) {}

    /// Clears one passive mark. No-op for real-time clocks.
    fn exit_passive(&self) {}

    /// True when the calling thread is currently bound to a worker slot of
    /// *this* clock. Layers that may be entered by either registered or
    /// unregistered threads use this to compose: the engine skips its own
    /// registration for a caller that is already a worker, and the
    /// gateway's admission gate marks a registered caller's queue wait
    /// passive so it does not stall virtual time. Always `false` for
    /// real-time clocks (registration is a no-op there).
    fn thread_is_worker(&self) -> bool {
        false
    }

    /// Blocks until `ready()` returns true or — when `deadline` is `Some`
    /// — this clock reaches `deadline`, whichever comes first. This is the
    /// event loop's idle wait: `deadline` is the earliest scheduled
    /// completion event, and `ready` flips when another thread posts an
    /// event (the poster then calls
    /// [`notify_sleepers`](Clock::notify_sleepers)).
    ///
    /// `ready` may be invoked while the clock holds internal locks, so it
    /// must be cheap and must not call back into this clock — reading an
    /// atomic flag is the intended shape.
    ///
    /// On [`VirtualClock`] a waiting registered worker counts toward the
    /// advance threshold (like a sleeper when `deadline` is `Some`, like a
    /// passive parent when it is `None`), so an idle event loop never
    /// stalls virtual time. The default implementation brackets a polling
    /// wait in [`enter_passive`](Clock::enter_passive)/
    /// [`exit_passive`](Clock::exit_passive); clocks with their own wait
    /// machinery should override it with a real blocking wait.
    fn sleep_until_or(&self, deadline: Option<Duration>, ready: &dyn Fn() -> bool) {
        if ready() {
            return;
        }
        self.enter_passive();
        loop {
            if ready() {
                break;
            }
            if let Some(deadline) = deadline {
                if self.now() >= deadline {
                    break;
                }
            }
            std::thread::yield_now();
        }
        self.exit_passive();
    }

    /// Wakes every thread blocked in [`sleep_until_or`](Clock::sleep_until_or)
    /// so it can re-check its `ready` predicate. Posting an event and then
    /// calling this (in that order) guarantees the wakeup is never lost.
    fn notify_sleepers(&self) {}
}

/// True when `a` and `b` are the same clock object (pointer identity on
/// the underlying data, ignoring vtables). The engine uses this to decide
/// whether a provider's internal sleeps can be folded into a scheduled
/// completion event on the engine clock.
pub(crate) fn same_clock(a: &dyn Clock, b: &dyn Clock) -> bool {
    std::ptr::eq(
        a as *const dyn Clock as *const (),
        b as *const dyn Clock as *const (),
    )
}

/// RAII worker registration: deregisters on drop, so the worker count
/// unwinds correctly even when the guarded code panics.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Clock, VirtualClock, WorkerGuard};
///
/// let clock = VirtualClock::new();
/// {
///     let _worker = WorkerGuard::enter(&clock);
///     clock.sleep(Duration::from_millis(10)); // sole worker: advances
/// } // deregistered here, panic or not
/// assert_eq!(clock.now(), Duration::from_millis(10));
/// ```
#[derive(Debug)]
pub struct WorkerGuard<'a> {
    clock: &'a dyn Clock,
}

impl<'a> WorkerGuard<'a> {
    /// Registers the calling thread as a new worker.
    pub fn enter(clock: &'a dyn Clock) -> Self {
        clock.enter_worker();
        WorkerGuard { clock }
    }

    /// Binds the calling thread to a slot the parent already created with
    /// [`Clock::reserve_worker`].
    pub fn adopt(clock: &'a dyn Clock) -> Self {
        clock.adopt_worker();
        WorkerGuard { clock }
    }
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        self.clock.exit_worker();
    }
}

/// Real time: `now` measures from construction, `sleep` really sleeps.
///
/// This is the **only** place in the crate that touches
/// `std::time::Instant::now` and `std::thread::sleep` directly.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
    waiters: Mutex<()>,
    wake: Condvar,
}

impl WallClock {
    /// Creates a wall clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
            waiters: Mutex::new(()),
            wake: Condvar::new(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }

    fn sleep_until_or(&self, deadline: Option<Duration>, ready: &dyn Fn() -> bool) {
        let mut guard = self
            .waiters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            // Checked under the waiters lock, which `notify_sleepers` also
            // takes: a post-then-notify sequence can never slip between the
            // check and the wait.
            if ready() {
                return;
            }
            match deadline {
                Some(deadline) => {
                    let now = self.now();
                    if now >= deadline {
                        return;
                    }
                    let (next, _timed_out) = self
                        .wake
                        .wait_timeout(guard, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard = next;
                }
                None => {
                    guard = self
                        .wake
                        .wait(guard)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    fn notify_sleepers(&self) {
        let _guard = self
            .waiters
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        self.wake.notify_all();
    }
}

/// Distinguishes clocks in the per-thread worker-registration map, so two
/// `VirtualClock`s never see each other's bindings.
static NEXT_CLOCK_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Worker-registration depth of this thread, per clock id.
    static WORKER_DEPTH: RefCell<HashMap<u64, usize>> = RefCell::new(HashMap::new());
}

#[derive(Debug)]
struct VcState {
    now: Duration,
    workers: usize,
    parked: usize,
    /// Sleepers that are registered worker threads; only these count
    /// toward the advance threshold.
    worker_sleepers: usize,
    /// `(token, deadline)` per thread blocked in `sleep`, worker or not.
    sleepers: Vec<(u64, Duration)>,
    next_token: u64,
}

/// Deterministic simulated time (see the module docs for the advance
/// protocol).
///
/// # Examples
///
/// An unregistered thread's sleep advances time instantly when no workers
/// are registered:
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// clock.sleep(Duration::from_secs(3600)); // returns immediately
/// assert_eq!(clock.now(), Duration::from_secs(3600));
/// ```
#[derive(Debug)]
pub struct VirtualClock {
    id: u64,
    state: Mutex<VcState>,
    wake: Condvar,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock {
            id: NEXT_CLOCK_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(VcState {
                now: Duration::ZERO,
                workers: 0,
                parked: 0,
                worker_sleepers: 0,
                sleepers: Vec::new(),
                next_token: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Advances virtual time by `duration`, waking any sleeper whose
    /// deadline is reached. Use this from tests to move through scheduled
    /// fault windows without invoking anything.
    pub fn advance(&self, duration: Duration) {
        let mut state = self.lock();
        state.now = state.now.saturating_add(duration);
        self.wake.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VcState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adjusts the calling thread's registration depth for this clock.
    fn bind_thread(&self, delta: i64) {
        WORKER_DEPTH.with(|depths| {
            let mut depths = depths.borrow_mut();
            let depth = depths.entry(self.id).or_insert(0);
            if delta >= 0 {
                *depth += delta as usize;
            } else {
                *depth = depth.saturating_sub((-delta) as usize);
            }
            if *depth == 0 {
                depths.remove(&self.id);
            }
        });
    }

    /// Jumps to the earliest sleeping deadline if no worker can make
    /// progress. Call after any counter change that could block progress.
    fn try_advance(&self, state: &mut VcState) {
        if state.sleepers.is_empty() || state.worker_sleepers + state.parked < state.workers {
            return;
        }
        let earliest = state
            .sleepers
            .iter()
            .map(|&(_, deadline)| deadline)
            .min()
            .expect("sleepers is non-empty");
        // A deadline at or before `now` belongs to a sleeper that has been
        // woken but has not yet removed itself; it will re-trigger the
        // advance when it next blocks or exits.
        if earliest > state.now {
            state.now = earliest;
            self.wake.notify_all();
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.lock().now
    }

    fn sleep(&self, duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let is_worker = self.thread_is_worker();
        let mut state = self.lock();
        let deadline = state.now.saturating_add(duration);
        let token = state.next_token;
        state.next_token += 1;
        state.sleepers.push((token, deadline));
        if is_worker {
            state.worker_sleepers += 1;
        }
        self.try_advance(&mut state);
        while state.now < deadline {
            state = self
                .wake
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.sleepers.retain(|&(t, _)| t != token);
        if is_worker {
            state.worker_sleepers -= 1;
        }
        // A woken bystander leaving the sleeper set can unblock the
        // remaining sleepers (their earliest deadline just changed); a
        // woken worker re-entering computation makes the condition false,
        // so re-checking here is always safe.
        self.try_advance(&mut state);
    }

    fn enter_worker(&self) {
        self.reserve_worker();
        self.adopt_worker();
    }

    fn reserve_worker(&self) {
        self.lock().workers += 1;
    }

    fn adopt_worker(&self) {
        self.bind_thread(1);
    }

    fn exit_worker(&self) {
        self.bind_thread(-1);
        let mut state = self.lock();
        state.workers = state.workers.saturating_sub(1);
        self.try_advance(&mut state);
    }

    fn disown_worker(&self) {
        self.bind_thread(-1);
    }

    fn release_worker(&self) {
        let mut state = self.lock();
        state.workers = state.workers.saturating_sub(1);
        self.try_advance(&mut state);
    }

    fn enter_passive(&self) {
        let mut state = self.lock();
        state.parked += 1;
        self.try_advance(&mut state);
    }

    fn exit_passive(&self) {
        let mut state = self.lock();
        state.parked = state.parked.saturating_sub(1);
    }

    fn thread_is_worker(&self) -> bool {
        WORKER_DEPTH.with(|depths| depths.borrow().get(&self.id).is_some_and(|&d| d > 0))
    }

    fn sleep_until_or(&self, deadline: Option<Duration>, ready: &dyn Fn() -> bool) {
        let is_worker = self.thread_is_worker();
        let mut state = self.lock();
        match deadline {
            Some(deadline) => {
                // Wait like a sleeper: the deadline participates in the
                // earliest-deadline computation, and a waiting worker
                // counts toward the advance threshold.
                let token = state.next_token;
                state.next_token += 1;
                state.sleepers.push((token, deadline));
                if is_worker {
                    state.worker_sleepers += 1;
                }
                self.try_advance(&mut state);
                while state.now < deadline && !ready() {
                    state = self
                        .wake
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                state.sleepers.retain(|&(t, _)| t != token);
                if is_worker {
                    state.worker_sleepers -= 1;
                }
                self.try_advance(&mut state);
            }
            None => {
                // Nothing scheduled: wait like a parked parent so other
                // workers' sleeps can still advance time, but contribute
                // no deadline of our own.
                if is_worker {
                    state.parked += 1;
                    self.try_advance(&mut state);
                }
                while !ready() {
                    state = self
                        .wake
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                if is_worker {
                    state.parked = state.parked.saturating_sub(1);
                }
            }
        }
    }

    fn notify_sleepers(&self) {
        let _state = self.lock();
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_measures_real_time() {
        let clock = WallClock::new();
        let t0 = clock.now();
        clock.sleep(Duration::from_millis(5));
        assert!(clock.now() - t0 >= Duration::from_millis(4));
    }

    #[test]
    fn unregistered_sleep_advances_instantly() {
        let clock = VirtualClock::new();
        clock.sleep(Duration::from_secs(10));
        clock.sleep(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(15));
    }

    #[test]
    fn zero_sleep_is_a_no_op() {
        let clock = VirtualClock::new();
        clock.sleep(Duration::ZERO);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn advance_moves_time_forward() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
    }

    #[test]
    fn thread_is_worker_tracks_binding_per_clock() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        assert!(!a.thread_is_worker());
        a.enter_worker();
        assert!(a.thread_is_worker(), "bound after enter");
        assert!(!b.thread_is_worker(), "binding is per clock");
        assert!(
            !std::thread::scope(|s| s.spawn(|| a.thread_is_worker()).join().unwrap()),
            "binding is per thread"
        );
        a.disown_worker();
        assert!(!a.thread_is_worker(), "disown unbinds without releasing");
        a.release_worker();
    }

    #[test]
    fn registered_worker_sleep_advances_when_all_blocked() {
        let clock = VirtualClock::new();
        clock.enter_worker();
        // The only worker sleeping means nothing else can run: advance.
        clock.sleep(Duration::from_millis(30));
        assert_eq!(clock.now(), Duration::from_millis(30));
        clock.exit_worker();
    }

    #[test]
    fn parallel_sleepers_wake_in_deadline_order() {
        let clock = Arc::new(VirtualClock::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            // Reserve both slots before spawning either, or the first
            // sleeper could advance time while it is still alone.
            clock.reserve_worker();
            clock.reserve_worker();
            for &(name, ms) in &[("slow", 60u64), ("fast", 2)] {
                let clock = Arc::clone(&clock);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    clock.adopt_worker();
                    clock.sleep(Duration::from_millis(ms));
                    order.lock().push((name, clock.now()));
                    clock.exit_worker();
                });
            }
        });
        let order = order.lock();
        assert_eq!(order[0], ("fast", Duration::from_millis(2)));
        assert_eq!(order[1], ("slow", Duration::from_millis(60)));
    }

    #[test]
    fn passive_parent_lets_children_advance() {
        let clock = Arc::new(VirtualClock::new());
        clock.enter_worker(); // the "parent" worker
        clock.reserve_worker(); // reserve the child's slot
        let child = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                clock.adopt_worker();
                clock.sleep(Duration::from_millis(40));
                clock.exit_worker();
            })
        };
        clock.enter_passive();
        child.join().unwrap();
        clock.exit_passive();
        clock.exit_worker();
        assert_eq!(clock.now(), Duration::from_millis(40));
    }

    #[test]
    fn concurrent_unregistered_sleepers_all_wake() {
        let clock = Arc::new(VirtualClock::new());
        std::thread::scope(|scope| {
            for i in 1..=8u64 {
                let clock = Arc::clone(&clock);
                scope.spawn(move || clock.sleep(Duration::from_millis(i)));
            }
        });
        assert!(clock.now() >= Duration::from_millis(8));
    }

    #[test]
    fn bystander_sleep_does_not_advance_past_busy_worker() {
        // An unregistered thread sleeping must not fast-forward time while
        // a registered worker is still computing.
        let clock = Arc::new(VirtualClock::new());
        clock.enter_worker();
        let bystander = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || clock.sleep(Duration::from_millis(5)))
        };
        // Give the bystander ample real time to enter its sleep; virtual
        // time must hold at zero because the worker never blocked.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(clock.now(), Duration::ZERO);
        // Once the worker itself sleeps, time jumps to the earliest
        // deadline — the bystander's — and then to the worker's.
        clock.sleep(Duration::from_millis(20));
        assert_eq!(clock.now(), Duration::from_millis(20));
        bystander.join().unwrap();
        clock.exit_worker();
    }

    #[test]
    fn worker_guard_releases_on_panic() {
        let clock = Arc::new(VirtualClock::new());
        let result = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                let _guard = WorkerGuard::enter(&*clock);
                panic!("worker dies");
            })
            .join()
        };
        assert!(result.is_err());
        // The guard unwound the registration: an unregistered sleep now
        // advances instantly instead of deadlocking on a phantom worker.
        clock.sleep(Duration::from_millis(7));
        assert_eq!(clock.now(), Duration::from_millis(7));
    }

    #[test]
    fn sleep_until_or_advances_to_the_deadline() {
        let clock = VirtualClock::new();
        clock.enter_worker();
        // Sole worker waiting on a scheduled event: time jumps there.
        clock.sleep_until_or(Some(Duration::from_millis(25)), &|| false);
        assert_eq!(clock.now(), Duration::from_millis(25));
        clock.exit_worker();
    }

    #[test]
    fn sleep_until_or_returns_early_on_ready() {
        use std::sync::atomic::AtomicBool;
        let clock = Arc::new(VirtualClock::new());
        let ready = Arc::new(AtomicBool::new(false));
        let waker = {
            let clock = Arc::clone(&clock);
            let ready = Arc::clone(&ready);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                ready.store(true, Ordering::SeqCst);
                clock.notify_sleepers();
            })
        };
        // Unregistered waiter with no deadline: virtual time must hold
        // still, and the wait must end when the poster signals.
        clock.sleep_until_or(None, &|| ready.load(Ordering::SeqCst));
        assert_eq!(clock.now(), Duration::ZERO);
        waker.join().unwrap();
    }

    #[test]
    fn idle_event_wait_lets_other_workers_advance() {
        use std::sync::atomic::AtomicBool;
        let clock = Arc::new(VirtualClock::new());
        let done = Arc::new(AtomicBool::new(false));
        clock.enter_worker(); // the idle "event loop" worker
        clock.reserve_worker(); // a blocking leg's slot
        let leg = {
            let clock = Arc::clone(&clock);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                clock.adopt_worker();
                clock.sleep(Duration::from_millis(40));
                done.store(true, Ordering::SeqCst);
                clock.exit_worker();
                clock.notify_sleepers();
            })
        };
        // The loop has no timers (deadline None); its parked-style wait
        // must let the leg's sleep drive time to 40 ms.
        clock.sleep_until_or(None, &|| done.load(Ordering::SeqCst));
        assert_eq!(clock.now(), Duration::from_millis(40));
        leg.join().unwrap();
        clock.exit_worker();
    }

    #[test]
    fn wall_clock_sleep_until_or_times_out() {
        let clock = WallClock::new();
        let t0 = clock.now();
        clock.sleep_until_or(Some(t0 + Duration::from_millis(5)), &|| false);
        assert!(clock.now() - t0 >= Duration::from_millis(4));
    }

    #[test]
    fn same_clock_is_pointer_identity() {
        let a: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let b: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        assert!(same_clock(&*a, &*Arc::clone(&a)));
        assert!(!same_clock(&*a, &*b));
    }

    #[test]
    fn two_clocks_do_not_share_thread_bindings() {
        let a = VirtualClock::new();
        let b = VirtualClock::new();
        a.enter_worker();
        // The thread is a worker of `a` only: `b` sees an unregistered
        // sleep and advances instantly.
        b.sleep(Duration::from_millis(9));
        assert_eq!(b.now(), Duration::from_millis(9));
        a.exit_worker();
    }
}

//! Time as a capability: every component that waits or timestamps does so
//! through a [`Clock`], so the whole runtime can run on either real time
//! ([`WallClock`]) or deterministic simulated time ([`VirtualClock`]).
//!
//! The virtual clock makes the test suite both *fast* (no real sleeping:
//! a 500 ms simulated latency costs microseconds) and *deterministic*
//! (latency assertions are exact equalities, not fuzzy bounds).
//!
//! # The advance protocol
//!
//! [`VirtualClock`] coordinates real OS threads over simulated time. It
//! tracks three counters:
//!
//! * **workers** — threads currently doing runtime work (the executor
//!   registers the calling thread and every thread it spawns for a
//!   parallel `*` node);
//! * **sleepers** — workers (or unregistered threads) blocked in
//!   [`Clock::sleep`], each with an absolute deadline;
//! * **parked** — workers blocked in a *passive* wait (joining spawned
//!   children), which make no progress on their own.
//!
//! Virtual time advances — jumping straight to the earliest sleeper's
//! deadline — exactly when no worker can make progress: at least one
//! sleeper exists and `sleepers + parked >= workers`. A thread that never
//! registered (e.g. a test invoking a provider directly) sleeps with
//! `workers == 0`, so its sleep advances time immediately.
//!
//! Registered workers must never block outside [`Clock::sleep`] without
//! bracketing the wait in [`Clock::enter_passive`]/[`Clock::exit_passive`],
//! or virtual time stalls and every sleeper deadlocks.

use std::fmt;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A source of time and sleep for the runtime.
///
/// `now` is an offset from the clock's epoch (construction time for
/// [`WallClock`], zero for [`VirtualClock`]); only differences between
/// `now` readings of the *same* clock are meaningful.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;

    /// Blocks the calling thread for `duration` of this clock's time.
    fn sleep(&self, duration: Duration);

    /// Registers the calling context as an active worker (see the module
    /// docs). No-op for real-time clocks.
    fn enter_worker(&self) {}

    /// Deregisters one worker. No-op for real-time clocks.
    fn exit_worker(&self) {}

    /// Marks one worker as passively blocked (e.g. joining a spawned
    /// thread). No-op for real-time clocks.
    fn enter_passive(&self) {}

    /// Clears one passive mark. No-op for real-time clocks.
    fn exit_passive(&self) {}
}

/// Real time: `now` measures from construction, `sleep` really sleeps.
///
/// This is the **only** place in the crate that touches
/// `std::time::Instant::now` and `std::thread::sleep` directly.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Creates a wall clock whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

#[derive(Debug)]
struct VcState {
    now: Duration,
    workers: usize,
    parked: usize,
    /// `(token, deadline)` per thread blocked in `sleep`.
    sleepers: Vec<(u64, Duration)>,
    next_token: u64,
}

/// Deterministic simulated time (see the module docs for the advance
/// protocol).
///
/// # Examples
///
/// An unregistered thread's sleep advances time instantly:
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// clock.sleep(Duration::from_secs(3600)); // returns immediately
/// assert_eq!(clock.now(), Duration::from_secs(3600));
/// ```
#[derive(Debug)]
pub struct VirtualClock {
    state: Mutex<VcState>,
    wake: Condvar,
}

impl VirtualClock {
    /// Creates a virtual clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        VirtualClock {
            state: Mutex::new(VcState {
                now: Duration::ZERO,
                workers: 0,
                parked: 0,
                sleepers: Vec::new(),
                next_token: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// Advances virtual time by `duration`, waking any sleeper whose
    /// deadline is reached. Use this from tests to move through scheduled
    /// fault windows without invoking anything.
    pub fn advance(&self, duration: Duration) {
        let mut state = self.lock();
        state.now = state.now.saturating_add(duration);
        self.wake.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VcState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Jumps to the earliest sleeper's deadline if no worker can make
    /// progress. Call after any counter change that could block progress.
    fn try_advance(&self, state: &mut VcState) {
        if state.sleepers.is_empty() || state.sleepers.len() + state.parked < state.workers {
            return;
        }
        let earliest = state
            .sleepers
            .iter()
            .map(|&(_, deadline)| deadline)
            .min()
            .expect("sleepers is non-empty");
        // A deadline at or before `now` belongs to a sleeper that has been
        // woken but has not yet removed itself; it will re-trigger the
        // advance when it next blocks or exits.
        if earliest > state.now {
            state.now = earliest;
            self.wake.notify_all();
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        VirtualClock::new()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        self.lock().now
    }

    fn sleep(&self, duration: Duration) {
        if duration.is_zero() {
            return;
        }
        let mut state = self.lock();
        let deadline = state.now.saturating_add(duration);
        let token = state.next_token;
        state.next_token += 1;
        state.sleepers.push((token, deadline));
        self.try_advance(&mut state);
        while state.now < deadline {
            state = self
                .wake
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.sleepers.retain(|&(t, _)| t != token);
    }

    fn enter_worker(&self) {
        self.lock().workers += 1;
    }

    fn exit_worker(&self) {
        let mut state = self.lock();
        state.workers = state.workers.saturating_sub(1);
        self.try_advance(&mut state);
    }

    fn enter_passive(&self) {
        let mut state = self.lock();
        state.parked += 1;
        self.try_advance(&mut state);
    }

    fn exit_passive(&self) {
        let mut state = self.lock();
        state.parked = state.parked.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn wall_clock_measures_real_time() {
        let clock = WallClock::new();
        let t0 = clock.now();
        clock.sleep(Duration::from_millis(5));
        assert!(clock.now() - t0 >= Duration::from_millis(4));
    }

    #[test]
    fn unregistered_sleep_advances_instantly() {
        let clock = VirtualClock::new();
        clock.sleep(Duration::from_secs(10));
        clock.sleep(Duration::from_secs(5));
        assert_eq!(clock.now(), Duration::from_secs(15));
    }

    #[test]
    fn zero_sleep_is_a_no_op() {
        let clock = VirtualClock::new();
        clock.sleep(Duration::ZERO);
        assert_eq!(clock.now(), Duration::ZERO);
    }

    #[test]
    fn advance_moves_time_forward() {
        let clock = VirtualClock::new();
        clock.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
    }

    #[test]
    fn registered_worker_sleep_advances_when_all_blocked() {
        let clock = VirtualClock::new();
        clock.enter_worker();
        // The only worker sleeping means nothing else can run: advance.
        clock.sleep(Duration::from_millis(30));
        assert_eq!(clock.now(), Duration::from_millis(30));
        clock.exit_worker();
    }

    #[test]
    fn parallel_sleepers_wake_in_deadline_order() {
        let clock = Arc::new(VirtualClock::new());
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            // Register both workers before spawning either, or the first
            // sleeper could advance time while it is still alone.
            clock.enter_worker();
            clock.enter_worker();
            for &(name, ms) in &[("slow", 60u64), ("fast", 2)] {
                let clock = Arc::clone(&clock);
                let order = Arc::clone(&order);
                scope.spawn(move || {
                    clock.sleep(Duration::from_millis(ms));
                    order.lock().push((name, clock.now()));
                    clock.exit_worker();
                });
            }
        });
        let order = order.lock();
        assert_eq!(order[0], ("fast", Duration::from_millis(2)));
        assert_eq!(order[1], ("slow", Duration::from_millis(60)));
    }

    #[test]
    fn passive_parent_lets_children_advance() {
        let clock = Arc::new(VirtualClock::new());
        clock.enter_worker(); // the "parent" worker
        clock.enter_worker(); // pre-register the child
        let child = {
            let clock = Arc::clone(&clock);
            std::thread::spawn(move || {
                clock.sleep(Duration::from_millis(40));
                clock.exit_worker();
            })
        };
        clock.enter_passive();
        child.join().unwrap();
        clock.exit_passive();
        clock.exit_worker();
        assert_eq!(clock.now(), Duration::from_millis(40));
    }

    #[test]
    fn concurrent_unregistered_sleepers_all_wake() {
        let clock = Arc::new(VirtualClock::new());
        std::thread::scope(|scope| {
            for i in 1..=8u64 {
                let clock = Arc::clone(&clock);
                scope.spawn(move || clock.sleep(Duration::from_millis(i)));
            }
        });
        assert!(clock.now() >= Duration::from_millis(8));
    }
}

//! Invocation protocol types exchanged between the gateway and edge
//! devices, plus the runtime's error types.

use std::error::Error as StdError;
use std::fmt;
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A microservice invocation request sent by the gateway's strategy
/// executor to a provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Invocation {
    /// Correlates the invocation with a client service request.
    pub request_id: u64,
    /// Capability being invoked (e.g. `"detect-smoke-camera"`).
    pub capability: String,
    /// Opaque request payload.
    pub payload: Vec<u8>,
}

impl Invocation {
    /// Creates an invocation.
    #[must_use]
    pub fn new(request_id: u64, capability: impl Into<String>, payload: Vec<u8>) -> Self {
        Invocation {
            request_id,
            capability: capability.into(),
            payload,
        }
    }
}

/// Why a microservice invocation failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InvokeError {
    /// The device executed the microservice but it reported failure
    /// (e.g. the speech recognizer was defeated by noise).
    ExecutionFailed {
        /// Human-readable failure reason.
        reason: String,
    },
    /// The device was unreachable (moved away, asleep, powered down).
    DeviceUnavailable,
    /// The device does not host the requested capability.
    UnknownCapability {
        /// The capability that was requested.
        capability: String,
    },
    /// The device is at its concurrency capacity and rejected the
    /// invocation immediately (scarce shared resources — paper §VII).
    Overloaded,
}

impl fmt::Display for InvokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvokeError::ExecutionFailed { reason } => write!(f, "execution failed: {reason}"),
            InvokeError::DeviceUnavailable => write!(f, "device unavailable"),
            InvokeError::UnknownCapability { capability } => {
                write!(f, "unknown capability {capability:?}")
            }
            InvokeError::Overloaded => write!(f, "device at capacity"),
        }
    }
}

impl StdError for InvokeError {}

/// The result of one microservice invocation as observed by the executor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationOutcome {
    /// Provider that served (or failed to serve) the invocation.
    pub provider_id: String,
    /// Capability invoked.
    pub capability: String,
    /// `Some(payload)` on success, `None` on failure.
    pub payload: Option<Vec<u8>>,
    /// Wall-clock time the invocation took.
    pub latency: Duration,
    /// Cost charged (full provider cost — Assumption 2).
    pub cost: f64,
    /// Whether the invocation succeeded.
    pub success: bool,
}

/// Errors surfaced to gateway/client callers.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The service script could not be found in the market.
    UnknownService {
        /// The requested service id.
        service_id: String,
    },
    /// The market transport failed (e.g. unreadable script file).
    Market {
        /// Description of the failure.
        reason: String,
    },
    /// A script references a capability for which no device has registered
    /// a provider.
    NoProvider {
        /// The unprovided capability.
        capability: String,
    },
    /// The script's strategy expression or QoS values are malformed.
    InvalidScript {
        /// Description of the problem.
        reason: String,
    },
    /// Strategy generation failed.
    Generation {
        /// Description of the problem.
        reason: String,
    },
    /// The gateway shed the request: the service was at its in-flight
    /// limit and its admission queue was full (or the request was
    /// preempted out of a queue slot by a higher class). Carries the
    /// request's class and the queue depth at shed time so callers can
    /// react per class — back off a Scavenger, retry a Critical —
    /// without string matching.
    Overloaded {
        /// The service whose admission queue rejected the request.
        service_id: String,
        /// Traffic class of the shed request.
        class: crate::request::QosClass,
        /// Requests waiting in the admission queue when the shed happened.
        queue_depth: u64,
    },
    /// The request's deadline had already passed when it reached the
    /// gateway (a zero or stale deadline), or expired while the request
    /// was still queued for admission — it was rejected before charging
    /// any invocation cost.
    DeadlineExceeded {
        /// The service the request targeted.
        service_id: String,
        /// Traffic class of the expired request.
        class: crate::request::QosClass,
    },
    /// The gateway (or engine) was shut down or the service evicted while
    /// the request was in flight; the request was abandoned without a
    /// result.
    Shutdown,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnknownService { service_id } => {
                write!(f, "service {service_id:?} not found in the market")
            }
            RuntimeError::Market { reason } => write!(f, "market error: {reason}"),
            RuntimeError::NoProvider { capability } => {
                write!(f, "no registered provider for capability {capability:?}")
            }
            RuntimeError::InvalidScript { reason } => {
                write!(f, "invalid service script: {reason}")
            }
            RuntimeError::Generation { reason } => {
                write!(f, "strategy generation failed: {reason}")
            }
            RuntimeError::Overloaded {
                service_id,
                class,
                queue_depth,
            } => {
                write!(
                    f,
                    "service {service_id:?} overloaded: {class} request shed \
                     ({queue_depth} queued)"
                )
            }
            RuntimeError::DeadlineExceeded { service_id, class } => {
                write!(
                    f,
                    "service {service_id:?}: {class} request deadline expired \
                     before execution"
                )
            }
            RuntimeError::Shutdown => {
                write!(f, "runtime shut down while the request was in flight")
            }
        }
    }
}

impl StdError for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invocation_constructor() {
        let inv = Invocation::new(7, "detect-fire", vec![1, 2]);
        assert_eq!(inv.request_id, 7);
        assert_eq!(inv.capability, "detect-fire");
        assert_eq!(inv.payload, vec![1, 2]);
    }

    #[test]
    fn error_displays() {
        assert!(InvokeError::DeviceUnavailable
            .to_string()
            .contains("unavailable"));
        assert!(InvokeError::ExecutionFailed {
            reason: "noise".into()
        }
        .to_string()
        .contains("noise"));
        assert!(InvokeError::UnknownCapability {
            capability: "x".into()
        }
        .to_string()
        .contains('x'));
        assert!(RuntimeError::UnknownService {
            service_id: "s".into()
        }
        .to_string()
        .contains('s'));
        assert!(RuntimeError::NoProvider {
            capability: "c".into()
        }
        .to_string()
        .contains('c'));
        assert!(RuntimeError::Market {
            reason: "io".into()
        }
        .to_string()
        .contains("io"));
        assert!(RuntimeError::InvalidScript {
            reason: "bad".into()
        }
        .to_string()
        .contains("bad"));
        assert!(RuntimeError::Generation {
            reason: "none".into()
        }
        .to_string()
        .contains("none"));
        let overloaded = RuntimeError::Overloaded {
            service_id: "svc".into(),
            class: crate::request::QosClass::Scavenger,
            queue_depth: 3,
        }
        .to_string();
        assert!(overloaded.contains("shed"), "{overloaded}");
        assert!(overloaded.contains("scavenger"), "{overloaded}");
        assert!(overloaded.contains('3'), "{overloaded}");
        let expired = RuntimeError::DeadlineExceeded {
            service_id: "svc".into(),
            class: crate::request::QosClass::Critical,
        }
        .to_string();
        assert!(expired.contains("deadline"), "{expired}");
        assert!(expired.contains("critical"), "{expired}");
        assert!(RuntimeError::Shutdown.to_string().contains("shut down"));
    }

    #[test]
    fn serde_round_trips() {
        let inv = Invocation::new(1, "cap", vec![9]);
        let back: Invocation = serde_json::from_str(&serde_json::to_string(&inv).unwrap()).unwrap();
        assert_eq!(inv, back);
        let err = InvokeError::DeviceUnavailable;
        let back: InvokeError =
            serde_json::from_str(&serde_json::to_string(&err).unwrap()).unwrap();
        assert_eq!(err, back);
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InvokeError>();
        assert_send_sync::<RuntimeError>();
        assert_send_sync::<InvocationOutcome>();
    }
}

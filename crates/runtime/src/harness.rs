//! A one-line test harness: market + gateway + (possibly faulty) simulated
//! devices, all sharing one [`VirtualClock`].
//!
//! Integration tests of the feedback loop keep rebuilding the same rig: an
//! [`InMemoryMarket`] with a script, a [`Gateway`], a handful of
//! [`SimulatedProvider`]s, and — for fault-injection scenarios — a
//! [`FaultPlan`] per device. [`Harness::builder`] wires all of that to a
//! single shared virtual clock so the whole simulation is deterministic
//! and never sleeps for real.

use std::collections::HashMap;
use std::sync::Arc;

use crate::clock::{Clock, VirtualClock};
use crate::device::{Provider, SimulatedProvider, SimulatedProviderBuilder};
use crate::fault::{FaultPlan, FaultyProvider};
use crate::gateway::{Gateway, GatewayConfig, ServiceResponse};
use crate::market::InMemoryMarket;
use crate::message::RuntimeError;
use crate::request::Request;
use crate::script::ServiceScript;

/// A fully wired virtual-time testbed.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Clock, Harness, MsSpec, ServiceScript, SimulatedProvider};
/// use qce_strategy::{Qos, Requirements};
///
/// let script = ServiceScript::new(
///     "detect-temperature",
///     vec![
///         MsSpec { name: "readTempSensor".into(), capability: "read-temp".into(),
///                  prior: Qos::new(50.0, 5.0, 0.7)? },
///         MsSpec { name: "estTemp".into(), capability: "est-temp".into(),
///                  prior: Qos::new(50.0, 8.0, 0.7)? },
///     ],
///     Requirements::new(150.0, 100.0, 0.9)?,
/// );
/// let harness = Harness::builder()
///     .script(script)
///     .provider(SimulatedProvider::builder("pi/read-temp", "read-temp")
///         .latency(Duration::from_millis(2)).cost(50.0))
///     .provider(SimulatedProvider::builder("m92p/est-temp", "est-temp")
///         .latency(Duration::from_millis(15)).cost(50.0))
///     .build();
///
/// let response = harness.invoke("detect-temperature")?;
/// assert!(response.success);
/// // Simulated time passed; real time (almost) did not.
/// assert!(harness.clock().now() >= Duration::from_millis(2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Harness {
    clock: Arc<VirtualClock>,
    gateway: Arc<Gateway>,
    providers: HashMap<String, Arc<SimulatedProvider>>,
}

impl Harness {
    /// Starts building a harness.
    #[must_use]
    pub fn builder() -> HarnessBuilder {
        HarnessBuilder {
            scripts: Vec::new(),
            config: GatewayConfig::default(),
            providers: Vec::new(),
        }
    }

    /// The shared virtual clock (advance it to move through fault
    /// windows).
    #[must_use]
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// The gateway under test.
    #[must_use]
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// The gateway's telemetry (shorthand for
    /// [`Gateway::telemetry`](crate::Gateway::telemetry)).
    #[must_use]
    pub fn telemetry(&self) -> &Arc<crate::telemetry::Telemetry> {
        self.gateway.telemetry()
    }

    /// The simulated device behind `provider_id` (the inner device when
    /// the provider was registered with a fault plan), for turning knobs
    /// and reading counters.
    ///
    /// # Panics
    ///
    /// Panics if no provider with that id was registered.
    #[must_use]
    pub fn provider(&self, provider_id: &str) -> &Arc<SimulatedProvider> {
        self.providers
            .get(provider_id)
            .unwrap_or_else(|| panic!("harness has no provider {provider_id:?}"))
    }

    /// Invokes `service_id` through the gateway with a bare (classless)
    /// request.
    ///
    /// # Errors
    ///
    /// As [`Gateway::submit`].
    pub fn invoke(&self, service_id: &str) -> Result<ServiceResponse, RuntimeError> {
        self.gateway.submit(Request::new(service_id))
    }

    /// Submits a typed [`Request`] through the gateway.
    ///
    /// # Errors
    ///
    /// As [`Gateway::submit`].
    pub fn submit(&self, request: Request) -> Result<ServiceResponse, RuntimeError> {
        self.gateway.submit(request)
    }
}

/// Builder for [`Harness`].
#[derive(Debug)]
pub struct HarnessBuilder {
    scripts: Vec<ServiceScript>,
    config: GatewayConfig,
    providers: Vec<(SimulatedProviderBuilder, Option<FaultPlan>)>,
}

impl HarnessBuilder {
    /// Publishes `script` to the harness market.
    #[must_use]
    pub fn script(mut self, script: ServiceScript) -> Self {
        self.scripts.push(script);
        self
    }

    /// Overrides the gateway configuration (default:
    /// [`GatewayConfig::default`]).
    #[must_use]
    pub fn config(mut self, config: GatewayConfig) -> Self {
        self.config = config;
        self
    }

    /// Registers a healthy simulated device. The builder's clock is
    /// overridden with the harness clock.
    #[must_use]
    pub fn provider(mut self, builder: SimulatedProviderBuilder) -> Self {
        self.providers.push((builder, None));
        self
    }

    /// Registers a simulated device subjected to `plan` (see
    /// [`FaultyProvider`]).
    #[must_use]
    pub fn faulty(mut self, builder: SimulatedProviderBuilder, plan: FaultPlan) -> Self {
        self.providers.push((builder, Some(plan)));
        self
    }

    /// Wires everything to one fresh [`VirtualClock`] and returns the
    /// harness.
    ///
    /// # Panics
    ///
    /// Panics if a script fails validation (tests should fail loudly, not
    /// propagate configuration mistakes).
    #[must_use]
    pub fn build(self) -> Harness {
        let clock = Arc::new(VirtualClock::new());
        let market = InMemoryMarket::new();
        for script in self.scripts {
            market
                .publish(script)
                .unwrap_or_else(|e| panic!("invalid harness script: {e}"));
        }
        let gateway = Arc::new(Gateway::with_clock(
            Box::new(market),
            self.config,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let mut providers = HashMap::new();
        for (builder, plan) in self.providers {
            let device = builder.clock(Arc::clone(&clock) as Arc<dyn Clock>).build();
            providers.insert(device.id().to_string(), Arc::clone(&device));
            match plan {
                Some(plan) => gateway.registry().register(FaultyProvider::with_telemetry(
                    device,
                    Arc::clone(&clock) as Arc<dyn Clock>,
                    plan,
                    Arc::clone(gateway.telemetry()),
                )),
                None => gateway.registry().register(device),
            }
        }
        Harness {
            clock,
            gateway,
            providers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::MsSpec;
    use qce_strategy::{Qos, Requirements};
    use std::time::Duration;

    fn script() -> ServiceScript {
        ServiceScript::new(
            "svc",
            vec![MsSpec {
                name: "m".into(),
                capability: "cap".into(),
                prior: Qos::new(1.0, 1.0, 0.9).unwrap(),
            }],
            Requirements::new(10.0, 10.0, 0.5).unwrap(),
        )
    }

    #[test]
    fn builds_and_serves_on_virtual_time() {
        let h = Harness::builder()
            .script(script())
            .provider(SimulatedProvider::builder("d/cap", "cap").latency(Duration::from_millis(7)))
            .build();
        let response = h.invoke("svc").unwrap();
        assert!(response.success);
        assert_eq!(response.latency, Duration::from_millis(7));
        assert_eq!(h.clock().now(), Duration::from_millis(7));
        assert_eq!(h.provider("d/cap").invocations(), 1);
    }

    #[test]
    fn faulty_provider_keeps_inner_reachable() {
        let h = Harness::builder()
            .script(script())
            .faulty(
                SimulatedProvider::builder("d/cap", "cap").latency(Duration::ZERO),
                FaultPlan::none(),
            )
            .build();
        assert!(h.invoke("svc").unwrap().success);
        assert_eq!(h.provider("d/cap").invocations(), 1);
    }

    #[test]
    #[should_panic(expected = "no provider")]
    fn unknown_provider_panics() {
        let h = Harness::builder().script(script()).build();
        let _ = h.provider("ghost/cap");
    }

    #[test]
    #[should_panic(expected = "invalid harness script")]
    fn invalid_script_panics() {
        let mut bad = script();
        bad.slot_size = 0;
        let _ = Harness::builder().script(bad).build();
    }

    #[test]
    fn registered_providers_serve_by_capability() {
        let h = Harness::builder()
            .script(script())
            .provider(SimulatedProvider::builder("a/cap", "cap").cost(5.0))
            .build();
        assert_eq!(h.provider("a/cap").capability(), "cap");
    }
}

//! The QoS collector of the gateway's feedback loop (paper Section IV.B).
//!
//! The collector "keeps updating the QoS characteristics of microservices
//! until their executions complete": every completed invocation is recorded
//! against its provider, and the generator reads back windowed averages.
//! Until a provider has observations, the script's *prior* QoS is used —
//! that is why the first time slot runs the default strategy.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use qce_strategy::Qos;

/// One completed invocation, as recorded by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutionRecord {
    /// Whether the invocation succeeded.
    pub success: bool,
    /// Wall-clock latency of the invocation.
    pub latency: Duration,
    /// Cost charged for the invocation.
    pub cost: f64,
}

/// Windowed statistics for one provider.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProviderStats {
    /// Number of observations in the window.
    pub count: usize,
    /// Fraction of successful invocations.
    pub success_rate: f64,
    /// Mean latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Mean charged cost.
    pub mean_cost: f64,
}

impl ProviderStats {
    /// Converts the stats into the estimator's QoS representation
    /// (latency in milliseconds).
    ///
    /// # Panics
    ///
    /// Panics if the recorded values are out of domain. Prefer
    /// [`ProviderStats::checked_qos`] anywhere a degenerate window (e.g. a
    /// provider that advertised a non-finite cost) must not take the
    /// gateway down.
    #[must_use]
    pub fn as_qos(&self) -> Qos {
        self.checked_qos()
            .expect("recorded statistics are in domain")
    }

    /// Converts the stats into the estimator's QoS representation, or
    /// `None` when the window's aggregates are out of the QoS domain
    /// (non-finite or negative mean cost/latency).
    ///
    /// A window can be degenerate even though every [`ExecutionRecord`] was
    /// accepted: records carry raw `f64` costs, so one invocation of a
    /// provider advertising `NaN` poisons the mean. Planning must treat
    /// such a window like "no history" rather than panic or leak `NaN`
    /// into `plan_slot` and the plan-cache quantizer.
    #[must_use]
    pub fn checked_qos(&self) -> Option<Qos> {
        Qos::new(self.mean_cost, self.mean_latency_ms, self.success_rate).ok()
    }
}

/// The QoS to assume for a provider with no (usable) history: the script's
/// prior with the provider's advertised cost substituted — but only when
/// that advertised cost is in the QoS domain. Devices self-report costs, so
/// a hostile or buggy registration (`NaN`, `-1.0`, `∞`) must not bypass
/// [`Qos::new`] validation via struct-update and reach the planner.
pub(crate) fn prior_with_advertised_cost(prior: &Qos, advertised: f64) -> Qos {
    if advertised.is_finite() && advertised >= 0.0 {
        Qos {
            cost: advertised,
            ..*prior
        }
    } else {
        *prior
    }
}

/// Thread-safe, windowed QoS statistics keyed by provider id.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use qce_runtime::{Collector, ExecutionRecord};
///
/// let collector = Collector::new(100);
/// collector.record("pi/read-temp-sensor", ExecutionRecord {
///     success: true,
///     latency: Duration::from_millis(30),
///     cost: 50.0,
/// });
/// let stats = collector.stats("pi/read-temp-sensor").unwrap();
/// assert_eq!(stats.count, 1);
/// assert_eq!(stats.mean_cost, 50.0);
/// ```
#[derive(Debug)]
pub struct Collector {
    window: usize,
    records: RwLock<HashMap<String, VecDeque<ExecutionRecord>>>,
}

impl Collector {
    /// Creates a collector that keeps the most recent `window` observations
    /// per provider.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must hold at least one record");
        Collector {
            window,
            records: RwLock::new(HashMap::new()),
        }
    }

    /// The configured window size.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Records one completed invocation for `provider_id`.
    pub fn record(&self, provider_id: &str, record: ExecutionRecord) {
        let mut map = self.records.write();
        let ring = map.entry(provider_id.to_string()).or_default();
        if ring.len() == self.window {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Windowed statistics for `provider_id`, or `None` if it has no
    /// observations yet.
    #[must_use]
    pub fn stats(&self, provider_id: &str) -> Option<ProviderStats> {
        let map = self.records.read();
        let ring = map.get(provider_id)?;
        if ring.is_empty() {
            return None;
        }
        let count = ring.len();
        let successes = ring.iter().filter(|r| r.success).count();
        let mean_latency_ms = ring
            .iter()
            .map(|r| r.latency.as_secs_f64() * 1e3)
            .sum::<f64>()
            / count as f64;
        let mean_cost = ring.iter().map(|r| r.cost).sum::<f64>() / count as f64;
        Some(ProviderStats {
            count,
            success_rate: successes as f64 / count as f64,
            mean_latency_ms,
            mean_cost,
        })
    }

    /// The QoS the generator should assume for `provider_id`: windowed
    /// measurements when available, the script's `prior` otherwise.
    ///
    /// Total: a degenerate window (see [`ProviderStats::checked_qos`])
    /// falls back to the prior instead of panicking, so a total-blackout
    /// slot or a poisoned cost can never abort planning.
    #[must_use]
    pub fn qos_or_prior(&self, provider_id: &str, prior: &Qos) -> Qos {
        self.stats(provider_id)
            .and_then(|s| s.checked_qos())
            .unwrap_or(*prior)
    }

    /// Number of observations currently stored for `provider_id`.
    #[must_use]
    pub fn observation_count(&self, provider_id: &str) -> usize {
        self.records
            .read()
            .get(provider_id)
            .map_or(0, VecDeque::len)
    }

    /// Forgets every observation for `provider_id` (e.g. when a device
    /// re-registers after leaving the environment).
    pub fn reset(&self, provider_id: &str) {
        self.records.write().remove(provider_id);
    }

    /// Forgets all observations.
    pub fn reset_all(&self) {
        self.records.write().clear();
    }

    /// Ids of all providers with at least one observation.
    #[must_use]
    pub fn provider_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .records
            .read()
            .iter()
            .filter(|(_, ring)| !ring.is_empty())
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(success: bool, ms: u64, cost: f64) -> ExecutionRecord {
        ExecutionRecord {
            success,
            latency: Duration::from_millis(ms),
            cost,
        }
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = Collector::new(0);
    }

    #[test]
    fn empty_collector_has_no_stats() {
        let c = Collector::new(10);
        assert!(c.stats("x").is_none());
        assert_eq!(c.observation_count("x"), 0);
        assert!(c.provider_ids().is_empty());
    }

    #[test]
    fn stats_aggregate_correctly() {
        let c = Collector::new(10);
        c.record("p", rec(true, 10, 5.0));
        c.record("p", rec(false, 30, 7.0));
        let s = c.stats("p").unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.success_rate, 0.5);
        assert!((s.mean_latency_ms - 20.0).abs() < 1e-9);
        assert_eq!(s.mean_cost, 6.0);
        let qos = s.as_qos();
        assert_eq!(qos.reliability.value(), 0.5);
    }

    #[test]
    fn window_evicts_oldest() {
        let c = Collector::new(3);
        for i in 0..5 {
            c.record("p", rec(true, 10 * (i + 1), 1.0));
        }
        let s = c.stats("p").unwrap();
        assert_eq!(s.count, 3);
        // Only records 3, 4, 5 remain: latencies 30, 40, 50.
        assert!((s.mean_latency_ms - 40.0).abs() < 1e-9);
    }

    #[test]
    fn window_reflects_reliability_shift() {
        // A reliability drop becomes visible once old successes age out —
        // the mechanism behind the Fig. 8 adaptation.
        let c = Collector::new(10);
        for _ in 0..10 {
            c.record("p", rec(true, 10, 1.0));
        }
        assert_eq!(c.stats("p").unwrap().success_rate, 1.0);
        for _ in 0..10 {
            c.record("p", rec(false, 10, 1.0));
        }
        assert_eq!(c.stats("p").unwrap().success_rate, 0.0);
    }

    #[test]
    fn prior_used_until_observations_arrive() {
        let c = Collector::new(10);
        let prior = Qos::new(50.0, 60.0, 0.7).unwrap();
        assert_eq!(c.qos_or_prior("p", &prior), prior);
        c.record("p", rec(true, 10, 5.0));
        let qos = c.qos_or_prior("p", &prior);
        assert_eq!(qos.cost, 5.0);
        assert_eq!(qos.reliability.value(), 1.0);
    }

    #[test]
    fn reset_forgets() {
        let c = Collector::new(10);
        c.record("p", rec(true, 10, 5.0));
        c.record("q", rec(true, 10, 5.0));
        assert_eq!(c.provider_ids(), vec!["p".to_string(), "q".to_string()]);
        c.reset("p");
        assert!(c.stats("p").is_none());
        assert!(c.stats("q").is_some());
        c.reset_all();
        assert!(c.provider_ids().is_empty());
    }

    #[test]
    fn poisoned_cost_window_falls_back_to_prior() {
        // Regression (scenario suite): a provider that advertises a NaN
        // cost gets that cost recorded verbatim by the engine; the window
        // mean is then NaN. `qos_or_prior` used to call the panicking
        // `as_qos()` here, taking the whole planning path down during a
        // blackout-storm slot. It must fall back to the prior instead.
        let c = Collector::new(10);
        let prior = Qos::new(50.0, 60.0, 0.7).unwrap();
        c.record("p", rec(false, 0, f64::NAN));
        let s = c.stats("p").unwrap();
        assert!(s.mean_cost.is_nan());
        assert!(s.checked_qos().is_none());
        assert_eq!(c.qos_or_prior("p", &prior), prior);

        // Same for an infinite advertised cost.
        c.reset("p");
        c.record("p", rec(true, 5, f64::INFINITY));
        assert_eq!(c.qos_or_prior("p", &prior), prior);
    }

    #[test]
    fn advertised_cost_substitution_is_validated() {
        let prior = Qos::new(50.0, 60.0, 0.7).unwrap();
        assert_eq!(prior_with_advertised_cost(&prior, 5.0).cost, 5.0);
        assert_eq!(prior_with_advertised_cost(&prior, f64::NAN).cost, 50.0);
        assert_eq!(prior_with_advertised_cost(&prior, -1.0).cost, 50.0);
        assert_eq!(prior_with_advertised_cost(&prior, f64::INFINITY).cost, 50.0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let c = Arc::new(Collector::new(1000));
        std::thread::scope(|scope| {
            for t in 0..8 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..100 {
                        c.record("shared", rec((t + i) % 2 == 0, 5, 1.0));
                    }
                });
            }
        });
        assert_eq!(c.observation_count("shared"), 800);
        let s = c.stats("shared").unwrap();
        assert_eq!(s.success_rate, 0.5);
    }
}

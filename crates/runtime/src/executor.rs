//! The gateway's strategy executor: real threads, real invocations.
//!
//! Executes an execution strategy against resolved providers with the
//! paper's semantics:
//!
//! * `-` invokes operands in order, falling through on failure;
//! * `*` invokes operands on parallel threads; the first success wins;
//! * a success anywhere **short-circuits** the strategy: invocations that
//!   have not started yet are abandoned, invocations already in flight
//!   cannot be recalled (Assumption 2: their full cost is charged and the
//!   collector still records their eventual completion).
//!
//! The executor joins every spawned thread before returning, so cost
//! accounting and collector state are complete and race-free when the
//! caller sees the outcome; the reported `latency` is the instant the
//! winning invocation completed, not the join time.
//!
//! Since the unification of the strategy walkers, these entry points are
//! thin wrappers over [`engine::execute_scoped`](crate::engine): the
//! engine walks the same tree with [`CompletionPolicy::FirstSuccess`] and
//! an unlimited [`Budget`], which is bit-for-bit
//! the historical behaviour. Deadline- or cancellation-scoped execution,
//! and pooled (rather than per-leg scoped) threading, are available
//! through [`ExecutionEngine`](crate::engine::ExecutionEngine).

use std::sync::Arc;
use std::time::Duration;

use qce_strategy::{CompletionPolicy, Strategy};

use crate::clock::{Clock, WallClock};
use crate::collector::Collector;
use crate::device::Provider;
use crate::engine::{self, Budget, Completion};
use crate::message::{Invocation, InvocationOutcome, RuntimeError};
use crate::telemetry::Telemetry;

/// The observable result of executing a strategy for one service request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// Whether any microservice succeeded.
    pub success: bool,
    /// Payload of the earliest successful invocation.
    pub payload: Option<Vec<u8>>,
    /// Time from request start to the earliest success (or, on total
    /// failure, to the completion of the last invocation).
    pub latency: Duration,
    /// Total cost charged across all started invocations (Assumption 2).
    pub cost: f64,
    /// Every invocation that started, in completion order.
    pub invocations: Vec<InvocationOutcome>,
}

impl From<engine::EngineOutcome> for ServiceOutcome {
    fn from(outcome: engine::EngineOutcome) -> Self {
        let (success, payload) = match outcome.completion {
            Completion::First { success, payload } => (success, payload),
            Completion::Agreement {
                agreed, payload, ..
            } => (agreed, payload),
        };
        ServiceOutcome {
            success,
            payload,
            latency: outcome.latency,
            cost: outcome.cost,
            invocations: outcome.invocations,
        }
    }
}

/// Executes `strategy` over `providers` (indexed by
/// [`MsId`](qce_strategy::MsId)), recording completed invocations into
/// `collector` when provided.
///
/// # Errors
///
/// Returns [`RuntimeError::NoProvider`] if the strategy references an index
/// with no resolved provider.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use qce_runtime::{execute_strategy, Invocation, Provider, SimulatedProvider};
/// use qce_strategy::Strategy;
///
/// let fast = SimulatedProvider::builder("d1/fast", "fast")
///     .latency(Duration::from_millis(2))
///     .cost(10.0)
///     .build();
/// let slow = SimulatedProvider::builder("d2/slow", "slow")
///     .latency(Duration::from_millis(50))
///     .cost(20.0)
///     .build();
/// let providers: Vec<Arc<dyn Provider>> = vec![fast, slow];
///
/// let outcome = execute_strategy(
///     &Strategy::parse("a*b")?,
///     &providers,
///     &Invocation::new(1, "", vec![]),
///     None,
/// )?;
/// assert!(outcome.success);
/// assert_eq!(outcome.cost, 30.0); // both started: both charged
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn execute_strategy(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
) -> Result<ServiceOutcome, RuntimeError> {
    execute_strategy_with_clock(strategy, providers, request, collector, &WallClock::new())
}

/// [`execute_strategy`] on an explicit [`Clock`], allowing deterministic
/// virtual-time execution (see [`VirtualClock`](crate::VirtualClock)).
///
/// The calling thread is registered as a clock worker for the duration of
/// the call, and every thread spawned for a parallel node is registered
/// before it starts, so a virtual clock only advances when the whole
/// execution is blocked.
///
/// # Errors
///
/// As [`execute_strategy`].
pub fn execute_strategy_with_clock(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    clock: &dyn Clock,
) -> Result<ServiceOutcome, RuntimeError> {
    execute_strategy_instrumented(strategy, providers, request, collector, clock, None)
}

/// [`execute_strategy_with_clock`] that additionally records every
/// completed invocation (per-provider counters and latency/cost
/// histograms) into `telemetry` when provided. Recording is a handful of
/// relaxed atomic increments on the invocation's own thread — no lock is
/// held across provider calls.
///
/// # Errors
///
/// As [`execute_strategy`].
pub fn execute_strategy_instrumented(
    strategy: &Strategy,
    providers: &[Arc<dyn Provider>],
    request: &Invocation,
    collector: Option<&Collector>,
    clock: &dyn Clock,
    telemetry: Option<&Telemetry>,
) -> Result<ServiceOutcome, RuntimeError> {
    engine::execute_scoped(
        strategy,
        providers,
        request,
        collector,
        clock,
        telemetry,
        &Budget::unlimited(),
        CompletionPolicy::FirstSuccess,
    )
    .map(ServiceOutcome::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimulatedProvider;
    use qce_strategy::Strategy;
    use std::sync::atomic::Ordering;

    fn provider(id: &str, latency_ms: u64, reliability: f64, cost: f64) -> Arc<dyn Provider> {
        SimulatedProvider::builder(id, id)
            .latency(Duration::from_millis(latency_ms))
            .reliability(reliability)
            .cost(cost)
            .seed(1)
            .build()
    }

    fn req() -> Invocation {
        Invocation::new(1, "", vec![])
    }

    #[test]
    fn single_provider_success() {
        let providers = vec![provider("a", 5, 1.0, 10.0)];
        let out =
            execute_strategy(&Strategy::parse("a").unwrap(), &providers, &req(), None).unwrap();
        assert!(out.success);
        assert_eq!(out.cost, 10.0);
        assert_eq!(out.invocations.len(), 1);
        assert!(out.latency >= Duration::from_millis(4));
    }

    #[test]
    fn missing_provider_is_an_error() {
        let providers = vec![provider("a", 1, 1.0, 1.0)];
        assert!(matches!(
            execute_strategy(&Strategy::parse("a*b").unwrap(), &providers, &req(), None),
            Err(RuntimeError::NoProvider { .. })
        ));
    }

    #[test]
    fn failover_skips_backup_on_success() {
        let providers = vec![provider("a", 2, 1.0, 10.0), provider("b", 2, 1.0, 99.0)];
        let out =
            execute_strategy(&Strategy::parse("a-b").unwrap(), &providers, &req(), None).unwrap();
        assert!(out.success);
        assert_eq!(out.cost, 10.0, "backup never invoked");
        assert_eq!(out.invocations.len(), 1);
    }

    #[test]
    fn failover_uses_backup_on_failure() {
        let providers = vec![provider("a", 2, 0.0, 10.0), provider("b", 2, 1.0, 20.0)];
        let out =
            execute_strategy(&Strategy::parse("a-b").unwrap(), &providers, &req(), None).unwrap();
        assert!(out.success);
        assert_eq!(out.cost, 30.0);
        assert_eq!(out.invocations.len(), 2);
        assert!(!out.invocations[0].success);
        assert!(out.invocations[1].success);
    }

    #[test]
    fn total_failure_reports_failure() {
        let providers = vec![provider("a", 1, 0.0, 10.0), provider("b", 1, 0.0, 20.0)];
        let out =
            execute_strategy(&Strategy::parse("a*b").unwrap(), &providers, &req(), None).unwrap();
        assert!(!out.success);
        assert!(out.payload.is_none());
        assert_eq!(out.cost, 30.0);
    }

    #[test]
    fn parallel_returns_fastest_success() {
        let providers = vec![
            provider("slow", 60, 1.0, 10.0),
            provider("fast", 2, 1.0, 20.0),
        ];
        let out =
            execute_strategy(&Strategy::parse("a*b").unwrap(), &providers, &req(), None).unwrap();
        assert!(out.success);
        // The fast provider's completion defines the latency even though we
        // join the slow one before returning.
        assert!(
            out.latency < Duration::from_millis(40),
            "latency {:?}",
            out.latency
        );
        assert_eq!(out.cost, 30.0, "both started — both charged");
        assert_eq!(
            out.invocations.len(),
            2,
            "loser still completes and records"
        );
    }

    #[test]
    fn short_circuit_prevents_new_invocations() {
        // (a-b)*c: a fails slowly (30 ms), c succeeds fast (2 ms). By the
        // time a fails, the strategy is won: b must never start.
        let providers = vec![
            provider("a", 30, 0.0, 10.0),
            provider("b", 1, 1.0, 99.0),
            provider("c", 2, 1.0, 20.0),
        ];
        let out = execute_strategy(
            &Strategy::parse("(a-b)*c").unwrap(),
            &providers,
            &req(),
            None,
        )
        .unwrap();
        assert!(out.success);
        assert_eq!(out.cost, 30.0, "b was cancelled before starting");
        assert_eq!(out.invocations.len(), 2);
        assert!(out.invocations.iter().all(|i| i.provider_id != "b"));
    }

    #[test]
    fn sequential_fallback_runs_when_parallel_loser_needed() {
        // (a-b)*c: c fails fast, a fails fast → b runs and succeeds.
        let providers = vec![
            provider("a", 2, 0.0, 10.0),
            provider("b", 2, 1.0, 15.0),
            provider("c", 2, 0.0, 20.0),
        ];
        let out = execute_strategy(
            &Strategy::parse("(a-b)*c").unwrap(),
            &providers,
            &req(),
            None,
        )
        .unwrap();
        assert!(out.success);
        assert_eq!(out.cost, 45.0);
        assert_eq!(out.invocations.len(), 3);
    }

    #[test]
    fn payload_comes_from_the_winner() {
        let fast = SimulatedProvider::builder("fast", "fast")
            .latency(Duration::from_millis(2))
            .response(vec![1])
            .build();
        let slow = SimulatedProvider::builder("slow", "slow")
            .latency(Duration::from_millis(40))
            .response(vec![2])
            .build();
        let providers: Vec<Arc<dyn Provider>> = vec![slow, fast];
        // a = slow, b = fast; parallel → fast's payload wins.
        let out =
            execute_strategy(&Strategy::parse("a*b").unwrap(), &providers, &req(), None).unwrap();
        assert_eq!(out.payload, Some(vec![1]));
    }

    #[test]
    fn collector_records_every_completed_invocation() {
        let collector = Collector::new(100);
        let providers = vec![provider("a", 1, 0.0, 10.0), provider("b", 1, 1.0, 20.0)];
        let out = execute_strategy(
            &Strategy::parse("a-b").unwrap(),
            &providers,
            &req(),
            Some(&collector),
        )
        .unwrap();
        assert!(out.success);
        assert_eq!(collector.observation_count("a"), 1);
        assert_eq!(collector.observation_count("b"), 1);
        assert_eq!(collector.stats("a").unwrap().success_rate, 0.0);
        assert_eq!(collector.stats("b").unwrap().success_rate, 1.0);
    }

    #[test]
    fn five_way_parallel_completes() {
        let providers: Vec<Arc<dyn Provider>> = (0..5)
            .map(|i| provider(&format!("p{i}"), 2 + i, 0.5, 1.0))
            .collect();
        let out = execute_strategy(
            &Strategy::parse("a*b*c*d*e").unwrap(),
            &providers,
            &req(),
            None,
        )
        .unwrap();
        assert_eq!(out.invocations.len(), 5, "all started simultaneously");
    }

    #[test]
    fn nested_strategy_executes() {
        let providers: Vec<Arc<dyn Provider>> = vec![
            provider("a", 2, 0.0, 1.0),
            provider("b", 2, 0.0, 1.0),
            provider("c", 2, 1.0, 1.0),
            provider("d", 2, 0.0, 1.0),
            provider("e", 2, 0.0, 1.0),
        ];
        let out = execute_strategy(
            &Strategy::parse("c*(a*b-d*e)").unwrap(),
            &providers,
            &req(),
            None,
        )
        .unwrap();
        assert!(out.success);
    }

    #[test]
    fn outcome_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ServiceOutcome>();
    }

    /// Regression test: once the strategy is won, a `Seq` chain must not
    /// descend into its remaining legs. Descending into the `b*c` leg is
    /// observable as extra [`Clock::reserve_worker`] calls: the engine
    /// reserves one worker slot per started blocking leaf (the spy hides
    /// the providers' own clock, so every leaf takes the blocking path).
    /// Only `a` and `d` start — exactly 2 reserves — and the loser's
    /// unreached legs are never invoked or charged.
    #[test]
    fn cancelled_seq_leg_never_descends_into_parallel_legs() {
        use crate::clock::VirtualClock;
        use std::sync::atomic::AtomicUsize;

        #[derive(Debug)]
        struct ReserveSpy {
            inner: Arc<VirtualClock>,
            reserves: AtomicUsize,
            releases: AtomicUsize,
        }

        impl Clock for ReserveSpy {
            fn now(&self) -> Duration {
                self.inner.now()
            }
            fn sleep(&self, duration: Duration) {
                self.inner.sleep(duration);
            }
            fn enter_worker(&self) {
                self.inner.enter_worker();
            }
            fn reserve_worker(&self) {
                self.reserves.fetch_add(1, Ordering::SeqCst);
                self.inner.reserve_worker();
            }
            fn adopt_worker(&self) {
                self.inner.adopt_worker();
            }
            fn exit_worker(&self) {
                self.inner.exit_worker();
            }
            fn disown_worker(&self) {
                self.inner.disown_worker();
            }
            fn release_worker(&self) {
                self.releases.fetch_add(1, Ordering::SeqCst);
                self.inner.release_worker();
            }
            fn enter_passive(&self) {
                self.inner.enter_passive();
            }
            fn exit_passive(&self) {
                self.inner.exit_passive();
            }
            fn thread_is_worker(&self) -> bool {
                self.inner.thread_is_worker()
            }
            fn sleep_until_or(&self, deadline: Option<Duration>, ready: &dyn Fn() -> bool) {
                self.inner.sleep_until_or(deadline, ready);
            }
            fn notify_sleepers(&self) {
                self.inner.notify_sleepers();
            }
        }

        let clock = Arc::new(VirtualClock::new());
        let spy = ReserveSpy {
            inner: Arc::clone(&clock),
            reserves: AtomicUsize::new(0),
            releases: AtomicUsize::new(0),
        };
        // (a-(b*c))*d in virtual time: d wins at t=2 ms, a fails at
        // t=30 ms. By the time the Seq leg moves past a, the strategy is
        // won — b*c must not start.
        let timed = |id: &str, latency_ms: u64, reliability: f64, cost: f64| -> Arc<dyn Provider> {
            SimulatedProvider::builder(id, id)
                .latency(Duration::from_millis(latency_ms))
                .reliability(reliability)
                .cost(cost)
                .seed(1)
                .clock(Arc::clone(&clock) as Arc<dyn Clock>)
                .build()
        };
        let providers = vec![
            timed("a", 30, 0.0, 10.0),
            timed("b", 1, 1.0, 99.0),
            timed("c", 1, 1.0, 99.0),
            timed("d", 2, 1.0, 20.0),
        ];
        let out = execute_strategy_with_clock(
            &Strategy::parse("(a-(b*c))*d").unwrap(),
            &providers,
            &req(),
            None,
            &spy,
        )
        .unwrap();
        assert!(out.success);
        assert_eq!(
            out.cost, 30.0,
            "only a and d charged; the unreached b*c leg costs nothing"
        );
        assert_eq!(out.invocations.len(), 2);
        assert!(
            out.invocations
                .iter()
                .all(|i| i.provider_id != "b" && i.provider_id != "c"),
            "unreached legs must never be invoked"
        );
        // Reservations cover the two started leaves (a, d) plus the event
        // core's wake-signal holds, whose count depends on driver timing —
        // so the discipline is checked as balance: every reserved slot is
        // returned, and (per the invocation asserts above) the cancelled
        // Seq leg never started a leaf that could reserve one.
        let reserves = spy.reserves.load(Ordering::SeqCst);
        let releases = spy.releases.load(Ordering::SeqCst);
        assert!(reserves >= 2, "the two started leaves (a, d) reserve slots");
        assert_eq!(
            reserves, releases,
            "every reserved worker slot must be released by walk teardown"
        );
    }

    #[test]
    fn panicking_provider_propagates_and_releases_the_clock() {
        use crate::clock::VirtualClock;
        use crate::device::FnProvider;

        // a = panics immediately, b = sleeps 10 ms of virtual time. The
        // panic must reach the caller (not be masked as a failed node) and
        // must release the worker slot, or the next sleeper on this clock
        // would hang forever.
        let clock = Arc::new(VirtualClock::new());
        let bomb: Arc<dyn Provider> = FnProvider::new(
            "bomb",
            "cap",
            1.0,
            |_| -> Result<Vec<u8>, crate::message::InvokeError> { panic!("provider exploded") },
        );
        let sleeper = SimulatedProvider::builder("sleeper", "cap")
            .latency(Duration::from_millis(10))
            .clock(Arc::clone(&clock) as Arc<dyn Clock>)
            .build();
        let providers: Vec<Arc<dyn Provider>> = vec![bomb, sleeper];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_strategy_with_clock(
                &Strategy::parse("a*b").unwrap(),
                &providers,
                &req(),
                None,
                &*clock,
            )
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // Worker accounting unwound: a fresh unregistered sleep advances
        // instantly instead of deadlocking on a leaked worker.
        clock.sleep(Duration::from_millis(3));
        assert!(clock.now() >= Duration::from_millis(3));
    }
}

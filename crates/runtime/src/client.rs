//! Client-side view of the gateway (paper Fig. 4: "a client device sends
//! edge service requests, identified by a unique ServiceID, to its
//! connected gateway").
//!
//! The client wraps a shared gateway handle and implements the advisory
//! protocol of Section IV.C: when the gateway reports that the generated
//! strategy cannot meet the QoS requirements, a configurable policy decides
//! whether the request proceeds.

use std::sync::Arc;

use crate::gateway::{Gateway, QosAdvisory, ServiceResponse};
use crate::message::RuntimeError;
use crate::request::Request;

/// What a client does when the gateway warns that requirements cannot be
/// met.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdvisoryPolicy {
    /// Proceed with the degraded QoS (best-effort — the paper's default
    /// stance for edge applications that have no alternative).
    #[default]
    Continue,
    /// Abort the request instead of accepting degraded QoS.
    Abort,
}

/// Error returned when a request is aborted under
/// [`AdvisoryPolicy::Abort`].
#[derive(Debug, Clone, PartialEq)]
pub struct QosRejected {
    /// The advisory that triggered the abort.
    pub advisory: QosAdvisory,
}

impl std::fmt::Display for QosRejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request aborted: estimated QoS {} misses {} requirement(s)",
            self.advisory.estimated,
            self.advisory.violations.len()
        )
    }
}

impl std::error::Error for QosRejected {}

/// Errors surfaced by [`Client::invoke`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// Gateway-side failure.
    Runtime(RuntimeError),
    /// The advisory policy rejected the degraded QoS.
    Rejected(QosRejected),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Runtime(e) => write!(f, "{e}"),
            ClientError::Rejected(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Runtime(e) => Some(e),
            ClientError::Rejected(e) => Some(e),
        }
    }
}

impl From<RuntimeError> for ClientError {
    fn from(e: RuntimeError) -> Self {
        ClientError::Runtime(e)
    }
}

/// A client bound to a gateway.
#[derive(Debug, Clone)]
pub struct Client {
    gateway: Arc<Gateway>,
    policy: AdvisoryPolicy,
}

impl Client {
    /// Creates a client with the default best-effort advisory policy.
    #[must_use]
    pub fn new(gateway: Arc<Gateway>) -> Self {
        Client {
            gateway,
            policy: AdvisoryPolicy::default(),
        }
    }

    /// Sets the advisory policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdvisoryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Invokes an edge service by id with an empty payload.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Runtime`] on gateway failures, or
    /// [`ClientError::Rejected`] when the advisory policy is
    /// [`AdvisoryPolicy::Abort`] and the gateway expects the requirements
    /// to be missed.
    pub fn invoke(&self, service_id: &str) -> Result<ServiceResponse, ClientError> {
        self.submit(Request::new(service_id))
    }

    /// Invokes an edge service by id.
    ///
    /// # Errors
    ///
    /// See [`Client::invoke`].
    pub fn invoke_with_payload(
        &self,
        service_id: &str,
        payload: Vec<u8>,
    ) -> Result<ServiceResponse, ClientError> {
        self.submit(Request::new(service_id).payload(payload))
    }

    /// Submits a typed [`Request`], applying the client's advisory policy
    /// to the response.
    ///
    /// # Errors
    ///
    /// See [`Client::invoke`].
    pub fn submit(&self, request: Request) -> Result<ServiceResponse, ClientError> {
        let response = self.gateway.submit(request)?;
        if let (AdvisoryPolicy::Abort, Some(advisory)) = (self.policy, &response.advisory) {
            return Err(ClientError::Rejected(QosRejected {
                advisory: advisory.clone(),
            }));
        }
        Ok(response)
    }

    /// The underlying gateway handle.
    #[must_use]
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SimulatedProvider;
    use crate::gateway::GatewayConfig;
    use crate::market::InMemoryMarket;
    use crate::script::{MsSpec, ServiceScript};
    use qce_strategy::{Qos, Requirements};
    use std::time::Duration;

    fn gateway(requirements: Requirements, reliability: f64) -> Arc<Gateway> {
        let market = InMemoryMarket::new();
        let mut script = ServiceScript::new(
            "svc",
            vec![MsSpec {
                name: "only".into(),
                capability: "cap".into(),
                prior: Qos::new(50.0, 5.0, 0.7).unwrap(),
            }],
            requirements,
        );
        script.slot_size = 2;
        market.publish(script).unwrap();
        let gateway = Gateway::new(Box::new(market), GatewayConfig::default());
        gateway.registry().register(
            SimulatedProvider::builder("dev/cap", "cap")
                .cost(50.0)
                .latency(Duration::from_millis(1))
                .reliability(reliability)
                .build(),
        );
        Arc::new(gateway)
    }

    #[test]
    fn continue_policy_returns_degraded_responses() {
        let gw = gateway(Requirements::new(1.0, 1.0, 0.999).unwrap(), 0.5);
        let client = Client::new(gw);
        // Burn through slot 0 (default strategy, no generation advisory
        // logic needed) into generated slots.
        for _ in 0..4 {
            let _ = client.invoke("svc");
        }
        let response = client.invoke("svc").expect("best-effort continues");
        assert!(response.advisory.is_some());
    }

    #[test]
    fn abort_policy_rejects_degraded_responses() {
        let gw = gateway(Requirements::new(1.0, 1.0, 0.999).unwrap(), 0.5);
        let client = Client::new(Arc::clone(&gw)).with_policy(AdvisoryPolicy::Abort);
        for _ in 0..4 {
            let _ = gw.submit(Request::new("svc"));
        }
        let err = client.invoke("svc").unwrap_err();
        match err {
            ClientError::Rejected(rejected) => {
                assert!(!rejected.advisory.violations.is_empty());
                assert!(rejected.to_string().contains("aborted"));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn satisfiable_requirements_never_reject() {
        let gw = gateway(Requirements::new(1000.0, 1000.0, 0.1).unwrap(), 1.0);
        let client = Client::new(gw).with_policy(AdvisoryPolicy::Abort);
        for _ in 0..6 {
            assert!(client.invoke("svc").is_ok());
        }
    }

    #[test]
    fn runtime_errors_propagate() {
        let gw = gateway(Requirements::new(10.0, 10.0, 0.5).unwrap(), 1.0);
        let client = Client::new(gw);
        assert!(matches!(
            client.invoke("missing"),
            Err(ClientError::Runtime(RuntimeError::UnknownService { .. }))
        ));
    }

    #[test]
    fn error_display_and_source() {
        let err = ClientError::from(RuntimeError::Market {
            reason: "io".into(),
        });
        assert!(err.to_string().contains("io"));
        assert!(std::error::Error::source(&err).is_some());
    }
}

//! Adversarial scenario suite: a declarative DSL for trace-driven
//! workloads, its compiler, and a deterministic virtual-time replayer.
//!
//! The paper's evaluation (Section V) drives the gateway with hand-rolled
//! scripts; this module replaces those with a data-driven pipeline:
//!
//! 1. [`model`] — the [`Scenario`] DSL: diurnal load curves and flash
//!    crowds, correlated failure storms, device churn, background fault
//!    noise, and a heterogeneous service market, all serde-round-trippable
//!    JSON with typed [`ScenarioError`] validation;
//! 2. [`compile`](mod@self::compile) — turns a scenario into per-provider
//!    [`FaultPlan`](crate::FaultPlan)s (storm windows unioned with seeded
//!    background crash windows) plus a time-ordered virtual-clock
//!    schedule;
//! 3. [`runner`] — replays the schedule through a [`Harness`](crate::Harness)
//!    with zero real sleeps and aggregates per-slot QoS-consistency
//!    metrics: requirement satisfaction rate, shed rate, p99 latency, and
//!    post-storm adaptation lag.
//!
//! Same scenario + same seed ⇒ byte-identical outcome; see DESIGN.md §13
//! for the determinism argument (including why burst phases constrain
//! microservice reliabilities to {0, 1}).
//!
//! # Examples
//!
//! ```
//! use qce_runtime::scenario::{run_scenario, Scenario};
//!
//! let scenario = Scenario::from_json(r#"{
//!     "name": "smoke", "seed": 7,
//!     "slots": 2, "slot_ms": 100, "requests_per_slot": 4,
//!     "services": [{
//!         "name": "svc",
//!         "microservices": [
//!             {"name": "a", "cost": 10.0, "latency_ms": 4.0, "reliability": 1.0}
//!         ],
//!         "require": {"cost": 100.0, "latency_ms": 50.0, "reliability": 0.9}
//!     }]
//! }"#)?;
//! let run = run_scenario(&scenario)?;
//! assert_eq!(run.outcome.total_requests, 8);
//! assert_eq!(run.outcome.satisfaction_rate(), 1.0);
//! # Ok::<(), qce_runtime::scenario::ScenarioError>(())
//! ```

pub mod compile;
pub mod model;
pub mod runner;

pub use compile::{compile, merge_crash_windows, Action, CompiledScenario, ScheduledEvent};
pub use model::{
    BackgroundFaults, Churn, GatewayKnobs, LoadPhase, MsDef, Require, Scenario, ScenarioError,
    ServiceDef, Storm, DEFAULT_PENALTY_K,
};
pub use runner::{
    run_scenario, ClassMetrics, ScenarioOutcome, ScenarioRun, SlotMetrics, StormSpan,
};

//! The scenario DSL: a serde-round-trippable description of an
//! adversarial workload.
//!
//! A [`Scenario`] declares *what the world does* — diurnal load curves and
//! flash crowds ([`LoadPhase`]), correlated failure storms ([`Storm`]),
//! device churn ([`Churn`]), background fault noise ([`BackgroundFaults`]),
//! and a heterogeneous service market ([`ServiceDef`], mixed `M` and mixed
//! requirements) — without saying anything about *how* it is executed.
//! Compilation into per-provider fault plans and a virtual-clock schedule
//! lives in [`compile`](mod@super::compile); deterministic replay lives in
//! [`runner`](super::runner).
//!
//! All times in the DSL are integer milliseconds of *virtual* time, so
//! scenario files are exactly reproducible across platforms. Validation
//! returns typed [`ScenarioError`]s — a malformed scenario must never
//! panic the process that loads it.

use std::collections::BTreeSet;
use std::error::Error as StdError;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::request::QosClass;

/// Penalty factor `k` used when a [`ServiceDef`] does not override it.
pub const DEFAULT_PENALTY_K: f64 = 2.0;

/// A complete adversarial scenario.
///
/// Time is divided into `slots` slots of `slot_ms` virtual milliseconds.
/// Each slot issues `requests_per_slot` requests *per service*, scaled by
/// the [`LoadPhase`] covering the slot (1.0 when uncovered). Provider ids
/// follow the convention `"{service}/{microservice}"`; storms and churn
/// reference providers by those ids.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (reports and telemetry markers).
    pub name: String,
    /// Master seed: background fault plans and provider behaviour derive
    /// from it. Same seed ⇒ byte-identical replay.
    pub seed: u64,
    /// Number of time slots.
    pub slots: u32,
    /// Virtual duration of one slot, in milliseconds.
    pub slot_ms: u64,
    /// Baseline requests per slot, per service (before load scaling).
    pub requests_per_slot: u32,
    /// Load curve: phases scaling the baseline (diurnal curves, flash
    /// crowds). Phases must not overlap; uncovered slots run at 1.0.
    #[serde(default)]
    pub load: Vec<LoadPhase>,
    /// The service market (mixed `M`, mixed requirements).
    pub services: Vec<ServiceDef>,
    /// Correlated failure storms: named groups crashing together.
    #[serde(default)]
    pub storms: Vec<Storm>,
    /// Device churn: providers leaving (and possibly re-joining) mid-run.
    #[serde(default)]
    pub churn: Vec<Churn>,
    /// Seeded background fault noise applied to every provider.
    #[serde(default)]
    pub background: Option<BackgroundFaults>,
    /// Gateway knob overrides (admission limits, collector window, …).
    #[serde(default)]
    pub gateway: GatewayKnobs,
}

/// One phase of the load curve, covering slots `[from_slot, to_slot)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadPhase {
    /// First slot of the phase (inclusive).
    pub from_slot: u32,
    /// One past the last slot of the phase (exclusive).
    pub to_slot: u32,
    /// Multiplier applied to `requests_per_slot` (0.0 = lull, 8.0 = flash
    /// crowd). Must be finite and non-negative.
    pub multiplier: f64,
    /// Concurrency of the phase: requests are issued in simultaneous
    /// batches of this size (0 or 1 = strictly sequential). Batches larger
    /// than the admission capacity exercise shedding. Phases with
    /// `burst > 1` require every microservice reliability to be exactly
    /// 0.0 or 1.0, keeping replay deterministic (see DESIGN.md §13).
    #[serde(default)]
    pub burst: u32,
    /// Traffic-class pattern for requests issued during this phase: request
    /// `i` of a slot (per service) is stamped `classes[i % classes.len()]`.
    /// Empty (the default) falls back to the service's
    /// [`class`](ServiceDef::class).
    #[serde(default)]
    pub classes: Vec<QosClass>,
}

/// One service in the market.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceDef {
    /// Service id (unique within the scenario).
    pub name: String,
    /// The equivalent microservices (the paper's `M`). One simulated
    /// provider is created per entry, with id `"{service}/{name}"`.
    pub microservices: Vec<MsDef>,
    /// QoS requirements the service must meet.
    pub require: Require,
    /// Utility penalty factor `k` (> 1); [`DEFAULT_PENALTY_K`] when absent.
    #[serde(default)]
    pub penalty_k: Option<f64>,
    /// Quorum size for agreement execution (§VII); `None` keeps
    /// first-success semantics.
    #[serde(default)]
    pub quorum: Option<usize>,
    /// Traffic class stamped on this service's requests when the covering
    /// load phase declares no [`classes`](LoadPhase::classes) pattern.
    /// `None` issues bare (classless) requests, which the gateway treats
    /// as [`QosClass::Interactive`].
    #[serde(default)]
    pub class: Option<QosClass>,
}

/// One equivalent microservice and the simulated device providing it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsDef {
    /// Microservice name (unique within its service).
    pub name: String,
    /// Cost charged per invocation.
    pub cost: f64,
    /// Execution latency in virtual milliseconds.
    pub latency_ms: f64,
    /// Per-invocation success probability in `[0, 1]`.
    pub reliability: f64,
}

/// Service QoS requirements (the script's `Requirements`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Require {
    /// Maximum acceptable per-request cost.
    pub cost: f64,
    /// Maximum acceptable latency, in virtual milliseconds.
    pub latency_ms: f64,
    /// Minimum acceptable reliability in `(0, 1]`.
    pub reliability: f64,
}

/// A correlated failure storm: every provider in `group` crashes at
/// `from_ms` and recovers at `to_ms` (half-open window, virtual time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Storm {
    /// Storm name (telemetry markers, lag reporting).
    pub name: String,
    /// Provider ids (`"{service}/{microservice}"`) sharing the failed
    /// radio link or power domain.
    pub group: Vec<String>,
    /// Onset, in virtual milliseconds.
    pub from_ms: u64,
    /// Recovery, in virtual milliseconds (exclusive; must exceed
    /// `from_ms` and fit the horizon).
    pub to_ms: u64,
}

/// Device churn for one provider: it leaves at `leave_ms` and, if
/// `rejoin_ms` is set, re-joins then.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Churn {
    /// Provider id (`"{service}/{microservice}"`).
    pub provider: String,
    /// Departure instant, in virtual milliseconds.
    pub leave_ms: u64,
    /// Re-join instant (must exceed `leave_ms`); `None` = gone for good.
    #[serde(default)]
    pub rejoin_ms: Option<u64>,
}

/// Seeded background fault noise, applied to every provider on top of the
/// storms (see [`FaultProfile`](crate::FaultProfile)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackgroundFaults {
    /// Mean healthy time between fault onsets, in virtual milliseconds.
    pub mean_time_between_ms: u64,
    /// Mean fault-window duration, in virtual milliseconds.
    pub mean_duration_ms: u64,
    /// Relative weight of crash faults.
    pub crash_weight: u32,
    /// Relative weight of latency-spike faults.
    pub latency_weight: u32,
    /// Extra latency during a spike, in virtual milliseconds.
    #[serde(default)]
    pub latency_spike_ms: u64,
}

/// Gateway configuration overrides. Absent knobs keep
/// [`GatewayConfig::default`](crate::GatewayConfig) values.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GatewayKnobs {
    /// Collector sliding-window size.
    #[serde(default)]
    pub collector_window: Option<u32>,
    /// Maximum concurrent invocations per service (0 = unlimited).
    #[serde(default)]
    pub max_in_flight: Option<u32>,
    /// Admission-queue capacity per service.
    #[serde(default)]
    pub admission_queue: Option<u32>,
    /// Worker-pool size for strategy execution.
    #[serde(default)]
    pub worker_pool: Option<u32>,
}

/// Typed validation/parsing errors for scenarios. Malformed input returns
/// one of these — never a panic.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// The JSON text could not be parsed into a scenario.
    Parse {
        /// Parser diagnostic.
        reason: String,
    },
    /// A required collection or dimension is empty (no services, zero
    /// slots, a service without microservices, …).
    Empty {
        /// What is empty.
        what: String,
    },
    /// Two entities share a name that must be unique.
    Duplicate {
        /// The colliding name and its namespace.
        what: String,
    },
    /// A numeric field is NaN or infinite.
    NonFinite {
        /// The offending field.
        field: String,
    },
    /// A numeric field is outside its legal domain.
    OutOfRange {
        /// The offending field.
        field: String,
        /// Why it is rejected.
        reason: String,
    },
    /// A storm's provider group is empty.
    EmptyStormGroup {
        /// The storm's name.
        storm: String,
    },
    /// A storm or churn entry references a provider id that no service
    /// defines.
    UnknownProvider {
        /// Where the reference appears.
        context: String,
        /// The unresolved provider id.
        provider: String,
    },
    /// A time window is empty, reversed, or exceeds the horizon.
    BadWindow {
        /// Which window is malformed and why.
        context: String,
    },
    /// Two churn windows for the same provider overlap.
    OverlappingChurn {
        /// The provider with overlapping windows.
        provider: String,
    },
    /// A load phase with `burst > 1` covers a microservice whose
    /// reliability is not exactly 0 or 1, which would make concurrent
    /// replay nondeterministic.
    NondeterministicBurst {
        /// The offending microservice (`"{service}/{name}"`).
        microservice: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { reason } => write!(f, "scenario parse error: {reason}"),
            ScenarioError::Empty { what } => write!(f, "scenario has empty {what}"),
            ScenarioError::Duplicate { what } => write!(f, "duplicate {what}"),
            ScenarioError::NonFinite { field } => {
                write!(f, "field {field} must be a finite number")
            }
            ScenarioError::OutOfRange { field, reason } => {
                write!(f, "field {field} out of range: {reason}")
            }
            ScenarioError::EmptyStormGroup { storm } => {
                write!(f, "storm {storm:?} has an empty provider group")
            }
            ScenarioError::UnknownProvider { context, provider } => {
                write!(f, "{context} references unknown provider {provider:?}")
            }
            ScenarioError::BadWindow { context } => write!(f, "bad time window: {context}"),
            ScenarioError::OverlappingChurn { provider } => {
                write!(f, "overlapping churn windows for provider {provider:?}")
            }
            ScenarioError::NondeterministicBurst { microservice } => write!(
                f,
                "burst phases require reliability 0 or 1, but {microservice:?} has a \
                 fractional reliability (deterministic replay would be lost)"
            ),
        }
    }
}

impl StdError for ScenarioError {}

fn ensure_finite(value: f64, field: &str) -> Result<(), ScenarioError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(ScenarioError::NonFinite {
            field: field.to_string(),
        })
    }
}

impl Scenario {
    /// The total virtual horizon, in milliseconds.
    #[must_use]
    pub fn horizon_ms(&self) -> u64 {
        u64::from(self.slots) * self.slot_ms
    }

    /// All provider ids defined by the service market
    /// (`"{service}/{microservice}"`), sorted.
    #[must_use]
    pub fn provider_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .services
            .iter()
            .flat_map(|s| {
                s.microservices
                    .iter()
                    .map(move |m| format!("{}/{}", s.name, m.name))
            })
            .collect();
        ids.sort();
        ids
    }

    /// The load phase covering `slot`, if any.
    #[must_use]
    pub fn phase_for(&self, slot: u32) -> Option<&LoadPhase> {
        self.load
            .iter()
            .find(|p| p.from_slot <= slot && slot < p.to_slot)
    }

    /// Requests to issue in `slot` for each service: the baseline scaled
    /// by the covering load phase.
    #[must_use]
    pub fn requests_in_slot(&self, slot: u32) -> u32 {
        let multiplier = self.phase_for(slot).map_or(1.0, |p| p.multiplier);
        let scaled = (f64::from(self.requests_per_slot) * multiplier).round();
        if scaled <= 0.0 {
            0
        } else {
            scaled as u32
        }
    }

    /// Validates the scenario. Every reachable inconsistency maps to a
    /// typed [`ScenarioError`]; valid scenarios compile and replay without
    /// panicking.
    ///
    /// # Errors
    ///
    /// See [`ScenarioError`].
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.is_empty() {
            return Err(ScenarioError::Empty {
                what: "name".to_string(),
            });
        }
        if self.slots == 0 {
            return Err(ScenarioError::Empty {
                what: "slots".to_string(),
            });
        }
        if self.slot_ms == 0 {
            return Err(ScenarioError::Empty {
                what: "slot_ms".to_string(),
            });
        }
        if self.services.is_empty() {
            return Err(ScenarioError::Empty {
                what: "services".to_string(),
            });
        }
        self.validate_services()?;
        self.validate_load()?;
        let known: BTreeSet<String> = self.provider_ids().into_iter().collect();
        self.validate_storms(&known)?;
        self.validate_churn(&known)?;
        self.validate_background()?;
        Ok(())
    }

    fn validate_services(&self) -> Result<(), ScenarioError> {
        let mut service_names = BTreeSet::new();
        for service in &self.services {
            if service.name.is_empty() {
                return Err(ScenarioError::Empty {
                    what: "service name".to_string(),
                });
            }
            if !service_names.insert(&service.name) {
                return Err(ScenarioError::Duplicate {
                    what: format!("service {:?}", service.name),
                });
            }
            if service.microservices.is_empty() {
                return Err(ScenarioError::Empty {
                    what: format!("microservices of service {:?}", service.name),
                });
            }
            let mut ms_names = BTreeSet::new();
            for ms in &service.microservices {
                let field = format!("{}/{}", service.name, ms.name);
                if ms.name.is_empty() {
                    return Err(ScenarioError::Empty {
                        what: format!("microservice name in service {:?}", service.name),
                    });
                }
                if !ms_names.insert(&ms.name) {
                    return Err(ScenarioError::Duplicate {
                        what: format!("microservice {field:?}"),
                    });
                }
                ensure_finite(ms.cost, &format!("{field}.cost"))?;
                ensure_finite(ms.latency_ms, &format!("{field}.latency_ms"))?;
                ensure_finite(ms.reliability, &format!("{field}.reliability"))?;
                if ms.cost < 0.0 {
                    return Err(ScenarioError::OutOfRange {
                        field: format!("{field}.cost"),
                        reason: "must be non-negative".to_string(),
                    });
                }
                if ms.latency_ms < 0.0 {
                    return Err(ScenarioError::OutOfRange {
                        field: format!("{field}.latency_ms"),
                        reason: "must be non-negative".to_string(),
                    });
                }
                if !(0.0..=1.0).contains(&ms.reliability) {
                    return Err(ScenarioError::OutOfRange {
                        field: format!("{field}.reliability"),
                        reason: "must be a probability in [0, 1]".to_string(),
                    });
                }
            }
            let req = &service.require;
            let prefix = format!("{}.require", service.name);
            ensure_finite(req.cost, &format!("{prefix}.cost"))?;
            ensure_finite(req.latency_ms, &format!("{prefix}.latency_ms"))?;
            ensure_finite(req.reliability, &format!("{prefix}.reliability"))?;
            if req.cost <= 0.0 || req.latency_ms <= 0.0 {
                return Err(ScenarioError::OutOfRange {
                    field: prefix,
                    reason: "cost and latency requirements must be positive".to_string(),
                });
            }
            if !(0.0 < req.reliability && req.reliability <= 1.0) {
                return Err(ScenarioError::OutOfRange {
                    field: format!("{prefix}.reliability"),
                    reason: "must lie in (0, 1]".to_string(),
                });
            }
            if let Some(k) = service.penalty_k {
                ensure_finite(k, &format!("{}.penalty_k", service.name))?;
                if k <= 1.0 {
                    return Err(ScenarioError::OutOfRange {
                        field: format!("{}.penalty_k", service.name),
                        reason: "penalty must exceed 1".to_string(),
                    });
                }
            }
            if let Some(q) = service.quorum {
                if q == 0 || q > service.microservices.len() {
                    return Err(ScenarioError::OutOfRange {
                        field: format!("{}.quorum", service.name),
                        reason: format!(
                            "must lie in [1, {}] (the service's M)",
                            service.microservices.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn validate_load(&self) -> Result<(), ScenarioError> {
        let mut sorted: Vec<&LoadPhase> = self.load.iter().collect();
        sorted.sort_by_key(|p| p.from_slot);
        for phase in &sorted {
            let context = format!("load phase [{}, {})", phase.from_slot, phase.to_slot);
            if phase.from_slot >= phase.to_slot {
                return Err(ScenarioError::BadWindow {
                    context: format!("{context} is empty or reversed"),
                });
            }
            if phase.to_slot > self.slots {
                return Err(ScenarioError::BadWindow {
                    context: format!("{context} exceeds the {}-slot horizon", self.slots),
                });
            }
            ensure_finite(phase.multiplier, &format!("{context}.multiplier"))?;
            if phase.multiplier < 0.0 {
                return Err(ScenarioError::OutOfRange {
                    field: format!("{context}.multiplier"),
                    reason: "must be non-negative".to_string(),
                });
            }
        }
        for pair in sorted.windows(2) {
            if pair[1].from_slot < pair[0].to_slot {
                return Err(ScenarioError::BadWindow {
                    context: format!(
                        "load phases [{}, {}) and [{}, {}) overlap",
                        pair[0].from_slot, pair[0].to_slot, pair[1].from_slot, pair[1].to_slot
                    ),
                });
            }
        }
        // Concurrent batches replay deterministically only when per-leg
        // outcomes cannot depend on which client drew first from a
        // provider's RNG — i.e. the provider never flips coins.
        if self.load.iter().any(|p| p.burst > 1) {
            for service in &self.services {
                for ms in &service.microservices {
                    if ms.reliability != 0.0 && ms.reliability != 1.0 {
                        return Err(ScenarioError::NondeterministicBurst {
                            microservice: format!("{}/{}", service.name, ms.name),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_storms(&self, known: &BTreeSet<String>) -> Result<(), ScenarioError> {
        let horizon = self.horizon_ms();
        let mut names = BTreeSet::new();
        for storm in &self.storms {
            if !names.insert(&storm.name) {
                return Err(ScenarioError::Duplicate {
                    what: format!("storm {:?}", storm.name),
                });
            }
            if storm.group.is_empty() {
                return Err(ScenarioError::EmptyStormGroup {
                    storm: storm.name.clone(),
                });
            }
            for provider in &storm.group {
                if !known.contains(provider) {
                    return Err(ScenarioError::UnknownProvider {
                        context: format!("storm {:?}", storm.name),
                        provider: provider.clone(),
                    });
                }
            }
            if storm.from_ms >= storm.to_ms || storm.to_ms > horizon {
                return Err(ScenarioError::BadWindow {
                    context: format!(
                        "storm {:?} window [{}, {}) (horizon {horizon} ms)",
                        storm.name, storm.from_ms, storm.to_ms
                    ),
                });
            }
        }
        Ok(())
    }

    fn validate_churn(&self, known: &BTreeSet<String>) -> Result<(), ScenarioError> {
        let horizon = self.horizon_ms();
        let mut by_provider: std::collections::BTreeMap<&str, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for churn in &self.churn {
            if !known.contains(&churn.provider) {
                return Err(ScenarioError::UnknownProvider {
                    context: "churn entry".to_string(),
                    provider: churn.provider.clone(),
                });
            }
            let end = churn.rejoin_ms.unwrap_or(horizon);
            if churn.leave_ms >= end || end > horizon {
                return Err(ScenarioError::BadWindow {
                    context: format!(
                        "churn of {:?}: [{}, {end}) (horizon {horizon} ms)",
                        churn.provider, churn.leave_ms
                    ),
                });
            }
            by_provider
                .entry(churn.provider.as_str())
                .or_default()
                .push((churn.leave_ms, end));
        }
        for (provider, mut windows) in by_provider {
            windows.sort_unstable();
            if windows.windows(2).any(|pair| pair[1].0 < pair[0].1) {
                return Err(ScenarioError::OverlappingChurn {
                    provider: provider.to_string(),
                });
            }
        }
        Ok(())
    }

    fn validate_background(&self) -> Result<(), ScenarioError> {
        if let Some(bg) = &self.background {
            if bg.mean_time_between_ms == 0 || bg.mean_duration_ms == 0 {
                return Err(ScenarioError::OutOfRange {
                    field: "background".to_string(),
                    reason: "fault process means must be positive".to_string(),
                });
            }
            if bg.crash_weight == 0 && bg.latency_weight == 0 {
                return Err(ScenarioError::OutOfRange {
                    field: "background".to_string(),
                    reason: "at least one fault weight must be positive".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Serializes the scenario to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenarios always serialize")
    }

    /// Parses and validates a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] on malformed JSON; any other
    /// [`ScenarioError`] from [`Scenario::validate`].
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let scenario: Scenario = serde_json::from_str(text).map_err(|e| ScenarioError::Parse {
            reason: e.to_string(),
        })?;
        scenario.validate()?;
        Ok(scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn small() -> Scenario {
        Scenario {
            name: "unit".to_string(),
            seed: 7,
            slots: 4,
            slot_ms: 100,
            requests_per_slot: 10,
            load: vec![LoadPhase {
                from_slot: 1,
                to_slot: 3,
                multiplier: 2.0,
                burst: 0,
                classes: Vec::new(),
            }],
            services: vec![ServiceDef {
                name: "svc".to_string(),
                microservices: vec![
                    MsDef {
                        name: "a".to_string(),
                        cost: 10.0,
                        latency_ms: 4.0,
                        reliability: 0.9,
                    },
                    MsDef {
                        name: "b".to_string(),
                        cost: 20.0,
                        latency_ms: 8.0,
                        reliability: 0.95,
                    },
                ],
                require: Require {
                    cost: 100.0,
                    latency_ms: 50.0,
                    reliability: 0.9,
                },
                penalty_k: None,
                quorum: None,
                class: None,
            }],
            storms: vec![Storm {
                name: "radio".to_string(),
                group: vec!["svc/a".to_string(), "svc/b".to_string()],
                from_ms: 150,
                to_ms: 250,
            }],
            churn: vec![Churn {
                provider: "svc/b".to_string(),
                leave_ms: 310,
                rejoin_ms: Some(360),
            }],
            background: None,
            gateway: GatewayKnobs::default(),
        }
    }

    #[test]
    fn valid_scenario_passes() {
        small().validate().unwrap();
    }

    #[test]
    fn round_trips_through_json() {
        let s = small();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn load_scaling_and_phases() {
        let s = small();
        assert_eq!(s.requests_in_slot(0), 10);
        assert_eq!(s.requests_in_slot(1), 20);
        assert_eq!(s.requests_in_slot(2), 20);
        assert_eq!(s.requests_in_slot(3), 10);
        assert_eq!(s.horizon_ms(), 400);
        assert_eq!(s.provider_ids(), vec!["svc/a", "svc/b"]);
    }

    #[test]
    fn rejects_empty_storm_group() {
        let mut s = small();
        s.storms[0].group.clear();
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::EmptyStormGroup { storm }) if storm == "radio"
        ));
    }

    #[test]
    fn rejects_overlapping_churn() {
        let mut s = small();
        s.churn.push(Churn {
            provider: "svc/b".to_string(),
            leave_ms: 350,
            rejoin_ms: Some(390),
        });
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::OverlappingChurn { provider }) if provider == "svc/b"
        ));
    }

    #[test]
    fn rejects_nan_load_multiplier() {
        let mut s = small();
        s.load[0].multiplier = f64::NAN;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::NonFinite { field }) if field.contains("multiplier")
        ));
    }

    #[test]
    fn rejects_unknown_storm_provider() {
        let mut s = small();
        s.storms[0].group.push("ghost/x".to_string());
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::UnknownProvider { provider, .. }) if provider == "ghost/x"
        ));
    }

    #[test]
    fn rejects_burst_with_fractional_reliability() {
        let mut s = small();
        s.load[0].burst = 8;
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::NondeterministicBurst { microservice }) if microservice == "svc/a"
        ));
    }

    #[test]
    fn classes_round_trip_and_pre_class_json_still_parses() {
        // Pre-class scenario files carry no class keys; they must parse
        // with every request defaulting to bare/Interactive.
        let parsed = Scenario::from_json(
            r#"{
                "name": "legacy", "seed": 1,
                "slots": 1, "slot_ms": 100, "requests_per_slot": 1,
                "load": [{"from_slot": 0, "to_slot": 1, "multiplier": 1.0}],
                "services": [{
                    "name": "svc",
                    "microservices": [
                        {"name": "a", "cost": 1.0, "latency_ms": 1.0, "reliability": 1.0}
                    ],
                    "require": {"cost": 10.0, "latency_ms": 10.0, "reliability": 0.5}
                }]
            }"#,
        )
        .unwrap();
        assert_eq!(parsed.services[0].class, None);
        assert!(parsed.load[0].classes.is_empty());

        let mut s = small();
        s.services[0].class = Some(QosClass::Bulk);
        s.load[0].classes = vec![QosClass::Critical, QosClass::Scavenger];
        let text = s.to_json();
        assert!(text.contains("\"bulk\""));
        assert!(text.contains("\"critical\""));
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn rejects_malformed_json_with_typed_error() {
        assert!(matches!(
            Scenario::from_json("{ not json"),
            Err(ScenarioError::Parse { .. })
        ));
    }

    #[test]
    fn errors_render_usefully() {
        let e = ScenarioError::OverlappingChurn {
            provider: "svc/a".to_string(),
        };
        assert!(e.to_string().contains("svc/a"));
        let e = ScenarioError::BadWindow {
            context: "storm".to_string(),
        };
        assert!(e.to_string().contains("storm"));
    }
}

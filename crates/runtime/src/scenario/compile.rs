//! The scenario compiler: from a validated [`Scenario`] to per-provider
//! [`FaultPlan`]s and a time-ordered virtual-clock schedule.
//!
//! Compilation is pure and deterministic: the same scenario always yields
//! the same plans and the same schedule, byte for byte. Correlated storms
//! become per-leaf crash windows — the crash timeline of each provider is
//! the *union* of its storm windows and the crash windows of its seeded
//! background plan, re-emitted as canonical non-overlapping
//! `Crash`/`Recover` pairs (naively concatenating events would let a
//! background `Recover` punch a hole in an enclosing storm). Non-crash
//! background faults (latency spikes) are orthogonal device state and pass
//! through untouched.

use std::collections::BTreeMap;
use std::time::Duration;

use crate::fault::{FaultEvent, FaultKind, FaultPlan, FaultProfile};
use crate::request::QosClass;

use super::model::{Scenario, ScenarioError};

/// What happens at one instant of the compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// A slot boundary: the runner forces `end_slot` on every service.
    EndSlot,
    /// A storm's recovery marker (providers are back).
    StormRecovered {
        /// Storm name.
        storm: String,
        /// Providers restored together.
        providers: Vec<String>,
    },
    /// A churned provider re-joins the environment.
    Rejoin {
        /// Provider id.
        provider: String,
    },
    /// A provider leaves the environment.
    Leave {
        /// Provider id.
        provider: String,
    },
    /// A storm's onset marker (providers just crashed together).
    StormOnset {
        /// Storm name.
        storm: String,
        /// Providers taken down together.
        providers: Vec<String>,
    },
    /// One client request to `service`. Requests sharing a timestamp are
    /// issued concurrently by the runner (burst phases).
    Request {
        /// Service id to invoke.
        service: String,
        /// Traffic class stamped at compile time: the covering phase's
        /// [`classes`](super::model::LoadPhase::classes) pattern when
        /// non-empty, else the service's
        /// [`class`](super::model::ServiceDef::class), else
        /// [`QosClass::Interactive`].
        class: QosClass,
    },
}

impl Action {
    /// Deterministic ordering rank for actions sharing a timestamp: slot
    /// boundaries first, then recoveries/rejoins (capacity returns before
    /// demand), then departures/onsets, then requests.
    fn rank(&self) -> u8 {
        match self {
            Action::EndSlot => 0,
            Action::StormRecovered { .. } => 1,
            Action::Rejoin { .. } => 2,
            Action::Leave { .. } => 3,
            Action::StormOnset { .. } => 4,
            Action::Request { .. } => 5,
        }
    }
}

/// One entry of the compiled schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent {
    /// Virtual instant of the action.
    pub at: Duration,
    /// The slot the action belongs to (for requests: the slot metrics
    /// attribute them to, independent of how long they run).
    pub slot: u32,
    /// The action.
    pub action: Action,
}

/// A scenario compiled for deterministic replay.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// Total virtual horizon.
    pub horizon: Duration,
    /// Per-provider fault plans (storm windows ∪ background faults),
    /// keyed by provider id. Providers without faults map to an empty
    /// plan.
    pub plans: BTreeMap<String, FaultPlan>,
    /// The time-ordered schedule.
    pub schedule: Vec<ScheduledEvent>,
    /// Total requests the schedule issues (all services).
    pub total_requests: u64,
}

/// Stable 64-bit FNV-1a over a provider id, folded into the master seed so
/// every provider gets an independent — but reproducible — fault stream.
pub(crate) fn provider_seed(master: u64, provider_id: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in provider_id.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    master ^ hash
}

/// Extracts the crash windows of `plan` as half-open intervals, plus the
/// pass-through non-crash events.
fn split_plan(plan: &FaultPlan, horizon: Duration) -> (Vec<(Duration, Duration)>, Vec<FaultEvent>) {
    let mut crashes = Vec::new();
    let mut others = Vec::new();
    let mut open: Option<Duration> = None;
    for event in plan.events() {
        match event.kind {
            FaultKind::Crash => {
                if open.is_none() {
                    open = Some(event.at);
                }
            }
            FaultKind::Recover => {
                if let Some(start) = open.take() {
                    if event.at > start {
                        crashes.push((start, event.at));
                    }
                }
            }
            _ => others.push(event.clone()),
        }
    }
    if let Some(start) = open {
        if horizon > start {
            crashes.push((start, horizon));
        }
    }
    (crashes, others)
}

/// Unions half-open intervals into a canonical sorted, disjoint set.
fn union_intervals(mut intervals: Vec<(Duration, Duration)>) -> Vec<(Duration, Duration)> {
    intervals.sort_unstable();
    let mut merged: Vec<(Duration, Duration)> = Vec::with_capacity(intervals.len());
    for (start, end) in intervals {
        match merged.last_mut() {
            Some(last) if start <= last.1 => last.1 = last.1.max(end),
            _ => merged.push((start, end)),
        }
    }
    merged
}

/// Unions `extra` half-open crash windows into `base`'s crash timeline,
/// re-emitting canonical non-overlapping `Crash`/`Recover` pairs.
/// Non-crash events of `base` (latency spikes, byzantine windows) pass
/// through untouched. A crash left open at the end of `base` is treated as
/// lasting until `horizon`.
///
/// This is how a storm becomes per-leaf fault plans: every member of the
/// storm's group gets the same windows merged into its own background
/// plan, which is what makes the failures *correlated*.
#[must_use]
pub fn merge_crash_windows(
    base: &FaultPlan,
    extra: &[(Duration, Duration)],
    horizon: Duration,
) -> FaultPlan {
    let (mut crash_intervals, mut events) = split_plan(base, horizon);
    crash_intervals.extend(extra.iter().copied());
    for (start, end) in union_intervals(crash_intervals) {
        events.push(FaultEvent {
            at: start,
            kind: FaultKind::Crash,
        });
        events.push(FaultEvent {
            at: end,
            kind: FaultKind::Recover,
        });
    }
    FaultPlan::new(events)
}

/// Builds the fault plan of one provider: the union of its storm windows
/// and background crash windows, plus pass-through background events.
fn provider_plan(
    scenario: &Scenario,
    provider_id: &str,
    background: Option<&FaultProfile>,
    horizon: Duration,
) -> FaultPlan {
    let storm_windows: Vec<(Duration, Duration)> = scenario
        .storms
        .iter()
        .filter(|s| s.group.iter().any(|p| p == provider_id))
        .map(|s| {
            (
                Duration::from_millis(s.from_ms),
                Duration::from_millis(s.to_ms),
            )
        })
        .collect();
    let base = background.map_or_else(FaultPlan::none, |profile| {
        FaultPlan::seeded(provider_seed(scenario.seed, provider_id), horizon, profile)
    });
    merge_crash_windows(&base, &storm_windows, horizon)
}

/// Compiles `scenario` into fault plans and a schedule.
///
/// # Errors
///
/// Any [`ScenarioError`] from [`Scenario::validate`] — compilation always
/// validates first, so an invalid scenario can never panic downstream.
pub fn compile(scenario: &Scenario) -> Result<CompiledScenario, ScenarioError> {
    scenario.validate()?;
    let horizon = Duration::from_millis(scenario.horizon_ms());

    let background = scenario.background.as_ref().map(|bg| FaultProfile {
        mean_time_between_faults: Duration::from_millis(bg.mean_time_between_ms),
        mean_fault_duration: Duration::from_millis(bg.mean_duration_ms),
        crash_weight: bg.crash_weight,
        latency_weight: bg.latency_weight,
        byzantine_weight: 0,
        latency_spike: Duration::from_millis(bg.latency_spike_ms),
        byzantine_payload: Vec::new(),
    });

    let mut plans = BTreeMap::new();
    for provider_id in scenario.provider_ids() {
        plans.insert(
            provider_id.clone(),
            provider_plan(scenario, &provider_id, background.as_ref(), horizon),
        );
    }

    let slot_of = |at_ms: u64| -> u32 {
        // Instants on the horizon boundary attribute to the last slot.
        ((at_ms / scenario.slot_ms) as u32).min(scenario.slots - 1)
    };

    let mut schedule: Vec<ScheduledEvent> = Vec::new();
    for slot in 1..scenario.slots {
        schedule.push(ScheduledEvent {
            at: Duration::from_millis(u64::from(slot) * scenario.slot_ms),
            slot,
            action: Action::EndSlot,
        });
    }
    for storm in &scenario.storms {
        schedule.push(ScheduledEvent {
            at: Duration::from_millis(storm.from_ms),
            slot: slot_of(storm.from_ms),
            action: Action::StormOnset {
                storm: storm.name.clone(),
                providers: storm.group.clone(),
            },
        });
        schedule.push(ScheduledEvent {
            at: Duration::from_millis(storm.to_ms),
            slot: slot_of(storm.to_ms),
            action: Action::StormRecovered {
                storm: storm.name.clone(),
                providers: storm.group.clone(),
            },
        });
    }
    for churn in &scenario.churn {
        schedule.push(ScheduledEvent {
            at: Duration::from_millis(churn.leave_ms),
            slot: slot_of(churn.leave_ms),
            action: Action::Leave {
                provider: churn.provider.clone(),
            },
        });
        if let Some(rejoin_ms) = churn.rejoin_ms {
            schedule.push(ScheduledEvent {
                at: Duration::from_millis(rejoin_ms),
                slot: slot_of(rejoin_ms),
                action: Action::Rejoin {
                    provider: churn.provider.clone(),
                },
            });
        }
    }

    let mut total_requests = 0u64;
    for slot in 0..scenario.slots {
        let n = scenario.requests_in_slot(slot);
        if n == 0 {
            continue;
        }
        let phase = scenario.phase_for(slot);
        let burst = phase.map_or(0, |p| p.burst).max(1);
        let pattern = phase.map_or(&[] as &[QosClass], |p| p.classes.as_slice());
        let groups = n.div_ceil(burst);
        let slot_start = u128::from(u64::from(slot) * scenario.slot_ms) * 1_000_000;
        let slot_nanos = u128::from(scenario.slot_ms) * 1_000_000;
        for service in &scenario.services {
            total_requests += u64::from(n);
            for i in 0..n {
                // Spread batch leaders evenly through the slot; members of
                // one batch share their leader's instant, so the runner
                // issues them concurrently.
                let group = i / burst;
                let at_nanos = slot_start + slot_nanos * u128::from(group) / u128::from(groups);
                let class = if pattern.is_empty() {
                    service.class.unwrap_or_default()
                } else {
                    pattern[i as usize % pattern.len()]
                };
                schedule.push(ScheduledEvent {
                    at: Duration::from_nanos(at_nanos as u64),
                    slot,
                    action: Action::Request {
                        service: service.name.clone(),
                        class,
                    },
                });
            }
        }
    }

    // Stable sort: construction order breaks remaining ties (services in
    // declaration order, storms/churn in declaration order).
    schedule.sort_by(|a, b| a.at.cmp(&b.at).then(a.action.rank().cmp(&b.action.rank())));

    Ok(CompiledScenario {
        horizon,
        plans,
        schedule,
        total_requests,
    })
}

#[cfg(test)]
mod tests {
    use super::super::model::{
        BackgroundFaults, Churn, GatewayKnobs, LoadPhase, MsDef, Require, Scenario, ServiceDef,
        Storm,
    };
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            name: "compile-unit".to_string(),
            seed: 11,
            slots: 3,
            slot_ms: 100,
            requests_per_slot: 4,
            load: vec![LoadPhase {
                from_slot: 1,
                to_slot: 2,
                multiplier: 2.0,
                burst: 4,
                classes: Vec::new(),
            }],
            services: vec![ServiceDef {
                name: "svc".to_string(),
                microservices: vec![
                    MsDef {
                        name: "a".to_string(),
                        cost: 10.0,
                        latency_ms: 4.0,
                        reliability: 1.0,
                    },
                    MsDef {
                        name: "b".to_string(),
                        cost: 20.0,
                        latency_ms: 8.0,
                        reliability: 1.0,
                    },
                ],
                require: Require {
                    cost: 100.0,
                    latency_ms: 50.0,
                    reliability: 0.9,
                },
                penalty_k: None,
                quorum: None,
                class: None,
            }],
            storms: vec![Storm {
                name: "radio".to_string(),
                group: vec!["svc/a".to_string()],
                from_ms: 120,
                to_ms: 180,
            }],
            churn: vec![Churn {
                provider: "svc/b".to_string(),
                leave_ms: 210,
                rejoin_ms: Some(260),
            }],
            background: None,
            gateway: GatewayKnobs::default(),
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let a = compile(&scenario()).unwrap();
        let b = compile(&scenario()).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.plans, b.plans);
        assert_eq!(a.total_requests, 16, "4 + 8 + 4 requests");
    }

    #[test]
    fn storm_becomes_per_leaf_crash_window() {
        let compiled = compile(&scenario()).unwrap();
        let plan = &compiled.plans["svc/a"];
        assert_eq!(
            plan.events(),
            &[
                FaultEvent {
                    at: Duration::from_millis(120),
                    kind: FaultKind::Crash
                },
                FaultEvent {
                    at: Duration::from_millis(180),
                    kind: FaultKind::Recover
                },
            ]
        );
        assert!(compiled.plans["svc/b"].events().is_empty());
    }

    #[test]
    fn schedule_is_time_ordered_with_boundaries_first() {
        let compiled = compile(&scenario()).unwrap();
        for pair in compiled.schedule.windows(2) {
            assert!(pair[0].at <= pair[1].at, "schedule must be time-ordered");
        }
        // The slot-1 boundary sorts before the slot-1 burst at the same
        // instant.
        let boundary = compiled
            .schedule
            .iter()
            .position(|e| e.action == Action::EndSlot && e.at == Duration::from_millis(100))
            .unwrap();
        assert!(matches!(
            compiled.schedule[boundary + 1].action,
            Action::Request { .. }
        ));
    }

    #[test]
    fn burst_groups_share_an_instant() {
        let compiled = compile(&scenario()).unwrap();
        let slot1: Vec<&ScheduledEvent> = compiled
            .schedule
            .iter()
            .filter(|e| e.slot == 1 && matches!(e.action, Action::Request { .. }))
            .collect();
        assert_eq!(slot1.len(), 8);
        // burst = 4 ⇒ two batches of four sharing their instants.
        assert_eq!(slot1[0].at, slot1[3].at);
        assert_eq!(slot1[4].at, slot1[7].at);
        assert!(slot1[0].at < slot1[4].at);
    }

    #[test]
    fn storm_windows_union_with_background_crashes() {
        // A storm overlapping a background crash window must not let the
        // background Recover punch a hole in the storm: the compiled plan
        // has canonical disjoint windows.
        let mut s = scenario();
        s.load.clear(); // allow fractional reliabilities irrelevant here
        s.background = Some(BackgroundFaults {
            mean_time_between_ms: 40,
            mean_duration_ms: 30,
            crash_weight: 1,
            latency_weight: 1,
            latency_spike_ms: 64,
        });
        let compiled = compile(&s).unwrap();
        for plan in compiled.plans.values() {
            let mut depth = 0i32;
            let mut last_crash_at = None;
            for event in plan.events() {
                match event.kind {
                    FaultKind::Crash => {
                        depth += 1;
                        assert_eq!(depth, 1, "crash windows must not nest");
                        last_crash_at = Some(event.at);
                    }
                    FaultKind::Recover => {
                        depth -= 1;
                        assert_eq!(depth, 0, "recover must close an open window");
                        assert!(Some(event.at) > last_crash_at);
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "all crash windows must close");
        }
    }

    #[test]
    fn classes_stamp_from_phase_pattern_then_service_default() {
        let mut s = scenario();
        s.services[0].class = Some(QosClass::Bulk);
        s.load[0].classes = vec![
            QosClass::Critical,
            QosClass::Scavenger,
            QosClass::Scavenger,
            QosClass::Scavenger,
        ];
        let compiled = compile(&s).unwrap();
        let classes_in = |slot: u32| -> Vec<QosClass> {
            compiled
                .schedule
                .iter()
                .filter(|e| e.slot == slot)
                .filter_map(|e| match &e.action {
                    Action::Request { class, .. } => Some(*class),
                    _ => None,
                })
                .collect()
        };
        // Slot 0 has no phase: the service default applies.
        assert_eq!(classes_in(0), vec![QosClass::Bulk; 4]);
        // Slot 1's phase pattern cycles over the 8 scaled requests.
        assert_eq!(
            classes_in(1),
            vec![
                QosClass::Critical,
                QosClass::Scavenger,
                QosClass::Scavenger,
                QosClass::Scavenger,
                QosClass::Critical,
                QosClass::Scavenger,
                QosClass::Scavenger,
                QosClass::Scavenger,
            ]
        );
        // No class anywhere: everything is Interactive.
        let bare = compile(&scenario()).unwrap();
        assert!(bare.schedule.iter().all(|e| match &e.action {
            Action::Request { class, .. } => *class == QosClass::Interactive,
            _ => true,
        }));
    }

    #[test]
    fn invalid_scenarios_do_not_compile() {
        let mut s = scenario();
        s.slots = 0;
        assert!(compile(&s).is_err());
    }

    #[test]
    fn provider_seeds_differ_per_provider() {
        assert_ne!(provider_seed(1, "svc/a"), provider_seed(1, "svc/b"));
        assert_eq!(provider_seed(1, "svc/a"), provider_seed(1, "svc/a"));
    }
}

//! Deterministic scenario replay: drives a compiled scenario through a
//! [`Harness`] on virtual time and aggregates per-slot QoS-consistency
//! metrics.
//!
//! The runner walks the compiled schedule in order, advancing the shared
//! [`VirtualClock`](crate::VirtualClock) to each event's instant. Requests
//! sharing an instant (burst phases) are issued concurrently from scoped
//! threads registered as clock workers — the same idiom the throughput
//! bench uses — so admission limits and shedding behave exactly as they
//! would under real concurrency, with zero real sleeps. All per-request
//! records are sorted by a total order before any float is summed, so the
//! aggregated metrics are byte-identical across runs of the same scenario.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::time::Duration;

use qce_strategy::{Qos, Requirements};

use crate::clock::{Clock, WorkerGuard};
use crate::device::{Provider, SimulatedProvider};
use crate::fault::FaultPlan;
use crate::gateway::{GatewayConfig, ServiceResponse};
use crate::harness::Harness;
use crate::message::RuntimeError;
use crate::request::{QosClass, Request};
use crate::script::{MsSpec, ServiceScript};

use super::compile::{compile, provider_seed, Action, CompiledScenario, ScheduledEvent};
use super::model::{Require, Scenario, ScenarioError, DEFAULT_PENALTY_K};

/// Per-slot QoS-consistency metrics, aggregated over every service.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMetrics {
    /// Slot index.
    pub slot: u32,
    /// Requests attributed to the slot (including shed ones).
    pub requests: u64,
    /// Requests that completed successfully *within* their service's cost
    /// and latency requirements.
    pub satisfied: u64,
    /// Requests shed by admission control ([`RuntimeError::Overloaded`]).
    pub shed: u64,
    /// Requests that errored for any other reason.
    pub failed: u64,
    /// `satisfied / requests`; defined as 1.0 for an idle slot.
    pub satisfaction_rate: f64,
    /// Nearest-rank p99 latency over completed requests, in virtual
    /// milliseconds (0.0 when nothing completed).
    pub p99_latency_ms: f64,
    /// Mean cost over completed requests (0.0 when nothing completed).
    pub mean_cost: f64,
    /// Per-class breakout, highest priority first; only classes that saw
    /// requests appear (empty for a classless scenario's all-Interactive
    /// traffic is *not* elided — Interactive still appears).
    pub classes: Vec<ClassMetrics>,
}

impl SlotMetrics {
    /// The slot's breakout for `class`, if that class saw requests.
    #[must_use]
    pub fn class(&self, class: QosClass) -> Option<&ClassMetrics> {
        self.classes.iter().find(|c| c.class == class)
    }
}

/// One traffic class's slice of the metrics (per slot or whole-run).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The traffic class.
    pub class: QosClass,
    /// Requests of this class (including shed ones).
    pub requests: u64,
    /// Requests satisfied within their service's requirements.
    pub satisfied: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Requests failing with a non-shed error.
    pub failed: u64,
    /// `satisfied / requests` for this class.
    pub satisfaction_rate: f64,
    /// Nearest-rank p99 latency over this class's completed requests, in
    /// virtual milliseconds (0.0 when nothing completed).
    pub p99_latency_ms: f64,
}

/// The slots a storm touches (inclusive on both ends).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormSpan {
    /// Storm name.
    pub storm: String,
    /// First slot the outage window touches.
    pub from_slot: u32,
    /// Last slot the outage window touches.
    pub to_slot: u32,
}

/// Aggregated result of one scenario replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Per-slot metrics, one entry per slot in order.
    pub per_slot: Vec<SlotMetrics>,
    /// Slot spans of the scenario's storms, in declaration order.
    pub storms: Vec<StormSpan>,
    /// Total requests issued.
    pub total_requests: u64,
    /// Total satisfied requests.
    pub total_satisfied: u64,
    /// Total shed requests.
    pub total_shed: u64,
    /// Total requests failing with a non-shed error.
    pub total_failed: u64,
    /// Whole-run per-class breakout, highest priority first; only classes
    /// that saw requests appear.
    pub classes: Vec<ClassMetrics>,
}

impl ScenarioOutcome {
    /// The run's breakout for `class`, if that class saw requests.
    #[must_use]
    pub fn class(&self, class: QosClass) -> Option<&ClassMetrics> {
        self.classes.iter().find(|c| c.class == class)
    }

    /// The fraction of all shed requests that belonged to `class`
    /// (defined as 1.0 when nothing was shed, so "Scavenger absorbed the
    /// sheds" holds vacuously on a calm run).
    #[must_use]
    pub fn shed_share(&self, class: QosClass) -> f64 {
        if self.total_shed == 0 {
            1.0
        } else {
            self.class(class).map_or(0, |c| c.shed) as f64 / self.total_shed as f64
        }
    }

    /// Overall requirement-satisfaction rate (1.0 for an empty run).
    #[must_use]
    pub fn satisfaction_rate(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            self.total_satisfied as f64 / self.total_requests as f64
        }
    }

    /// Overall shed rate (0.0 for an empty run).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.total_shed as f64 / self.total_requests as f64
        }
    }

    /// Whether `slot` lies inside any storm's touched span.
    #[must_use]
    pub fn is_storm_slot(&self, slot: u32) -> bool {
        self.storms
            .iter()
            .any(|s| s.from_slot <= slot && slot <= s.to_slot)
    }

    /// Adaptation lag per storm: the number of post-storm slots whose
    /// satisfaction rate stays below `floor` before the first slot at or
    /// above it. `Some(0)` means the service recovered in the very first
    /// slot after the storm; `None` means satisfaction never recovered
    /// within the horizon (or the storm ran to the end of it).
    #[must_use]
    pub fn adaptation_lags(&self, floor: f64) -> Vec<(String, Option<u32>)> {
        self.storms
            .iter()
            .map(|span| {
                let lag = self
                    .per_slot
                    .iter()
                    .filter(|m| m.slot > span.to_slot && m.requests > 0)
                    .position(|m| m.satisfaction_rate >= floor)
                    .map(|slots_below| slots_below as u32);
                (span.storm.clone(), lag)
            })
            .collect()
    }
}

/// A completed scenario replay: the aggregated outcome plus the harness it
/// ran on (for telemetry snapshots and post-mortem inspection).
#[derive(Debug)]
pub struct ScenarioRun {
    /// Aggregated per-slot metrics.
    pub outcome: ScenarioOutcome,
    /// The harness the scenario ran on.
    pub harness: Harness,
}

/// One classified request.
#[derive(Debug, Clone)]
struct RequestRecord {
    slot: u32,
    service: String,
    class: QosClass,
    /// 0 = completed ok, 1 = completed with failure, 2 = shed, 3 = error.
    kind: u8,
    latency_ms: f64,
    cost: f64,
    satisfied: bool,
}

fn classify(
    slot: u32,
    service: &str,
    class: QosClass,
    require: &Require,
    result: &Result<ServiceResponse, RuntimeError>,
) -> RequestRecord {
    match result {
        Ok(response) => {
            let latency_ms = response.latency.as_secs_f64() * 1_000.0;
            let satisfied = response.success
                && latency_ms <= require.latency_ms
                && response.cost <= require.cost;
            RequestRecord {
                slot,
                service: service.to_string(),
                class,
                kind: u8::from(!response.success),
                latency_ms,
                cost: response.cost,
                satisfied,
            }
        }
        Err(RuntimeError::Overloaded { .. }) => RequestRecord {
            slot,
            service: service.to_string(),
            class,
            kind: 2,
            latency_ms: 0.0,
            cost: 0.0,
            satisfied: false,
        },
        Err(_) => RequestRecord {
            slot,
            service: service.to_string(),
            class,
            kind: 3,
            latency_ms: 0.0,
            cost: 0.0,
            satisfied: false,
        },
    }
}

fn build_harness(scenario: &Scenario, compiled: &CompiledScenario) -> Harness {
    let knobs = &scenario.gateway;
    let mut config = GatewayConfig::builder();
    if let Some(v) = knobs.collector_window {
        config = config.collector_window(v as usize);
    }
    if let Some(v) = knobs.max_in_flight {
        config = config.max_in_flight(v as usize);
    }
    if let Some(v) = knobs.admission_queue {
        config = config.admission_queue(v as usize);
    }
    if let Some(v) = knobs.worker_pool {
        config = config.worker_pool(v as usize);
    }

    let mut builder = Harness::builder().config(config.build());
    for service in &scenario.services {
        let specs = service
            .microservices
            .iter()
            .map(|ms| MsSpec {
                name: ms.name.clone(),
                capability: format!("{}/{}", service.name, ms.name),
                prior: Qos::new(ms.cost, ms.latency_ms, ms.reliability)
                    .expect("validated microservice QoS is in domain"),
            })
            .collect();
        let requirements = Requirements::new(
            service.require.cost,
            service.require.latency_ms,
            service.require.reliability,
        )
        .expect("validated requirements are in domain");
        let mut script = ServiceScript::new(service.name.clone(), specs, requirements);
        script.penalty_k = service.penalty_k.unwrap_or(DEFAULT_PENALTY_K);
        script.quorum = service.quorum;
        // Slots are driven by the schedule's forced boundaries, never by
        // request counts.
        script.slot_size = u32::MAX;
        builder = builder.script(script);

        for ms in &service.microservices {
            let id = format!("{}/{}", service.name, ms.name);
            let plan = compiled
                .plans
                .get(&id)
                .cloned()
                .unwrap_or_else(FaultPlan::none);
            let device = SimulatedProvider::builder(&id, &id)
                .cost(ms.cost)
                .latency(Duration::from_secs_f64(ms.latency_ms / 1_000.0))
                .reliability(ms.reliability)
                .seed(provider_seed(scenario.seed, &id));
            builder = builder.faulty(device, plan);
        }
    }
    builder.build()
}

/// Issues a batch of same-instant requests concurrently, throughput-bench
/// style: every client thread registers as a clock worker *before* the
/// barrier releases, so virtual time only advances once all of them are
/// accounted for.
fn run_batch<'a>(
    harness: &Harness,
    batch: &'a [ScheduledEvent],
) -> Vec<(&'a ScheduledEvent, Result<ServiceResponse, RuntimeError>)> {
    let barrier = Barrier::new(batch.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = batch
            .iter()
            .map(|event| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let Action::Request { service, class } = &event.action else {
                        unreachable!("request batches only hold requests");
                    };
                    let _worker = WorkerGuard::enter(harness.clock().as_ref());
                    barrier.wait();
                    (
                        event,
                        harness
                            .gateway()
                            .submit(Request::new(service).class(*class)),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("scenario client thread panicked"))
            .collect()
    })
}

/// Nearest-rank p99 over the completed (kind <= 1) records of `slice`.
fn p99_of(slice: &[&RequestRecord]) -> f64 {
    let mut latencies: Vec<f64> = slice
        .iter()
        .filter(|r| r.kind <= 1)
        .map(|r| r.latency_ms)
        .collect();
    latencies.sort_by(f64::total_cmp);
    if latencies.is_empty() {
        0.0
    } else {
        let rank = ((0.99 * latencies.len() as f64).ceil() as usize).max(1);
        latencies[rank - 1]
    }
}

/// Per-class breakout of `slice`, highest priority first; classes without
/// requests are omitted.
fn class_breakout(slice: &[&RequestRecord]) -> Vec<ClassMetrics> {
    QosClass::ALL
        .iter()
        .filter_map(|&class| {
            let of_class: Vec<&RequestRecord> =
                slice.iter().filter(|r| r.class == class).copied().collect();
            if of_class.is_empty() {
                return None;
            }
            let requests = of_class.len() as u64;
            let satisfied = of_class.iter().filter(|r| r.satisfied).count() as u64;
            Some(ClassMetrics {
                class,
                requests,
                satisfied,
                shed: of_class.iter().filter(|r| r.kind == 2).count() as u64,
                failed: of_class.iter().filter(|r| r.kind == 3).count() as u64,
                satisfaction_rate: satisfied as f64 / requests as f64,
                p99_latency_ms: p99_of(&of_class),
            })
        })
        .collect()
}

fn aggregate(scenario: &Scenario, mut records: Vec<RequestRecord>) -> ScenarioOutcome {
    // Total order before any float is summed: aggregation must not depend
    // on which thread finished first inside a burst.
    records.sort_by(|a, b| {
        a.slot
            .cmp(&b.slot)
            .then_with(|| a.service.cmp(&b.service))
            .then(a.class.cmp(&b.class))
            .then(a.kind.cmp(&b.kind))
            .then(a.latency_ms.total_cmp(&b.latency_ms))
            .then(a.cost.total_cmp(&b.cost))
    });

    let mut per_slot = Vec::with_capacity(scenario.slots as usize);
    for slot in 0..scenario.slots {
        let slice: Vec<&RequestRecord> = records.iter().filter(|r| r.slot == slot).collect();
        let requests = slice.len() as u64;
        let satisfied = slice.iter().filter(|r| r.satisfied).count() as u64;
        let shed = slice.iter().filter(|r| r.kind == 2).count() as u64;
        let failed = slice.iter().filter(|r| r.kind == 3).count() as u64;
        let completed: Vec<&&RequestRecord> = slice.iter().filter(|r| r.kind <= 1).collect();
        let p99_latency_ms = p99_of(&slice);
        let mean_cost = if completed.is_empty() {
            0.0
        } else {
            completed.iter().map(|r| r.cost).sum::<f64>() / completed.len() as f64
        };
        per_slot.push(SlotMetrics {
            slot,
            requests,
            satisfied,
            shed,
            failed,
            satisfaction_rate: if requests == 0 {
                1.0
            } else {
                satisfied as f64 / requests as f64
            },
            p99_latency_ms,
            mean_cost,
            classes: class_breakout(&slice),
        });
    }

    let last_slot = scenario.slots - 1;
    let storms = scenario
        .storms
        .iter()
        .map(|storm| StormSpan {
            storm: storm.name.clone(),
            from_slot: ((storm.from_ms / scenario.slot_ms) as u32).min(last_slot),
            to_slot: ((storm.to_ms.saturating_sub(1) / scenario.slot_ms) as u32).min(last_slot),
        })
        .collect();

    let all: Vec<&RequestRecord> = records.iter().collect();
    ScenarioOutcome {
        name: scenario.name.clone(),
        total_requests: records.len() as u64,
        total_satisfied: records.iter().filter(|r| r.satisfied).count() as u64,
        total_shed: records.iter().filter(|r| r.kind == 2).count() as u64,
        total_failed: records.iter().filter(|r| r.kind == 3).count() as u64,
        classes: class_breakout(&all),
        per_slot,
        storms,
    }
}

/// Compiles and replays `scenario` deterministically on virtual time.
///
/// # Errors
///
/// Any [`ScenarioError`] from validation; replay itself cannot fail.
///
/// # Panics
///
/// Panics if a scenario client thread panics (a gateway bug — scenarios
/// are validated precisely so this cannot happen from bad input).
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioRun, ScenarioError> {
    let compiled = compile(scenario)?;
    let harness = build_harness(scenario, &compiled);

    // Snapshot the registered (fault-wrapped) providers up front so churn
    // can re-register the same instance on rejoin.
    let mut wrapped: HashMap<String, Arc<dyn Provider>> = HashMap::new();
    for capability in harness.gateway().registry().capabilities() {
        for provider in harness.gateway().registry().providers_for(&capability) {
            wrapped.insert(provider.id().to_string(), provider);
        }
    }
    let requires: HashMap<&str, &Require> = scenario
        .services
        .iter()
        .map(|s| (s.name.as_str(), &s.require))
        .collect();

    let mut records: Vec<RequestRecord> = Vec::with_capacity(compiled.total_requests as usize);
    let clock = harness.clock();
    let gateway = harness.gateway();
    let mut i = 0;
    while i < compiled.schedule.len() {
        let event = &compiled.schedule[i];
        let now = clock.now();
        if event.at > now {
            clock.advance(event.at - now);
        }
        match &event.action {
            Action::EndSlot => {
                for service in &scenario.services {
                    gateway.end_slot(&service.name);
                }
            }
            Action::StormOnset { storm, providers } => {
                gateway.telemetry().record_storm_onset(storm, providers);
            }
            Action::StormRecovered { storm, providers } => {
                gateway.telemetry().record_storm_recovered(storm, providers);
            }
            Action::Leave { provider } => {
                let _ = gateway.provider_left(provider);
            }
            Action::Rejoin { provider } => {
                if let Some(arc) = wrapped.get(provider) {
                    gateway.provider_joined(Arc::clone(arc));
                }
            }
            Action::Request { service, class } => {
                let mut j = i;
                while j < compiled.schedule.len()
                    && compiled.schedule[j].at == event.at
                    && matches!(compiled.schedule[j].action, Action::Request { .. })
                {
                    j += 1;
                }
                let batch = &compiled.schedule[i..j];
                if batch.len() == 1 {
                    let require = requires[service.as_str()];
                    let result = gateway.submit(Request::new(service).class(*class));
                    records.push(classify(event.slot, service, *class, require, &result));
                } else {
                    for (batched, result) in run_batch(&harness, batch) {
                        let Action::Request { service, class } = &batched.action else {
                            unreachable!("request batches only hold requests");
                        };
                        let require = requires[service.as_str()];
                        records.push(classify(batched.slot, service, *class, require, &result));
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }
    // Flush the final slot so its collector window and telemetry
    // final-stats are sealed like every other slot's.
    for service in &scenario.services {
        gateway.end_slot(&service.name);
    }

    let outcome = aggregate(scenario, records);
    Ok(ScenarioRun { outcome, harness })
}

#[cfg(test)]
mod tests {
    use super::super::model::{
        Churn, GatewayKnobs, LoadPhase, MsDef, Require, Scenario, ServiceDef, Storm,
    };
    use super::*;

    fn base() -> Scenario {
        Scenario {
            name: "runner-unit".to_string(),
            seed: 21,
            slots: 5,
            slot_ms: 100,
            requests_per_slot: 8,
            load: Vec::new(),
            services: vec![ServiceDef {
                name: "svc".to_string(),
                microservices: vec![
                    MsDef {
                        name: "a".to_string(),
                        cost: 10.0,
                        latency_ms: 2.0,
                        reliability: 1.0,
                    },
                    MsDef {
                        name: "b".to_string(),
                        cost: 20.0,
                        latency_ms: 4.0,
                        reliability: 1.0,
                    },
                ],
                require: Require {
                    cost: 100.0,
                    latency_ms: 50.0,
                    reliability: 0.8,
                },
                penalty_k: None,
                quorum: None,
                class: None,
            }],
            storms: Vec::new(),
            churn: Vec::new(),
            background: None,
            gateway: GatewayKnobs::default(),
        }
    }

    #[test]
    fn calm_scenario_satisfies_every_slot() {
        let run = run_scenario(&base()).unwrap();
        let outcome = &run.outcome;
        assert_eq!(outcome.per_slot.len(), 5);
        assert_eq!(outcome.total_requests, 40);
        assert_eq!(outcome.total_shed, 0);
        for slot in &outcome.per_slot {
            assert_eq!(slot.requests, 8);
            assert_eq!(slot.satisfaction_rate, 1.0);
            assert!(slot.p99_latency_ms > 0.0);
        }
        assert_eq!(outcome.satisfaction_rate(), 1.0);
    }

    #[test]
    fn replay_is_deterministic_including_fractional_reliability() {
        let mut s = base();
        s.services[0].microservices[0].reliability = 0.7;
        s.services[0].microservices[1].reliability = 0.85;
        let a = run_scenario(&s).unwrap().outcome;
        let b = run_scenario(&s).unwrap().outcome;
        assert_eq!(a, b);
    }

    #[test]
    fn total_blackout_storm_zeroes_satisfaction_then_recovers() {
        let mut s = base();
        s.storms.push(Storm {
            name: "blackout".to_string(),
            group: vec!["svc/a".to_string(), "svc/b".to_string()],
            from_ms: 100,
            to_ms: 200,
        });
        let run = run_scenario(&s).unwrap();
        let outcome = &run.outcome;
        assert_eq!(outcome.storms.len(), 1);
        assert_eq!(outcome.storms[0].from_slot, 1);
        assert_eq!(outcome.storms[0].to_slot, 1);
        assert_eq!(outcome.per_slot[1].satisfaction_rate, 0.0);
        assert!(outcome.per_slot[0].satisfaction_rate == 1.0);
        let lags = outcome.adaptation_lags(0.9);
        assert_eq!(lags.len(), 1);
        let (name, lag) = &lags[0];
        assert_eq!(name, "blackout");
        assert!(
            lag.is_some() && lag.unwrap() <= 1,
            "satisfaction must recover shortly after the storm, got {lag:?}"
        );
        let snapshot = run.harness.telemetry().snapshot();
        assert_eq!(snapshot.storms.onsets, 1);
        assert_eq!(snapshot.storms.recoveries, 1);
    }

    #[test]
    fn churned_provider_leaves_and_rejoins_without_breaking_service() {
        let mut s = base();
        s.churn.push(Churn {
            provider: "svc/a".to_string(),
            leave_ms: 110,
            rejoin_ms: Some(310),
        });
        let run = run_scenario(&s).unwrap();
        // Requests routed to the departed provider fail until the next
        // slot's re-plan; after that the surviving provider carries the
        // service, and the rejoin must not disturb it.
        assert!(run.outcome.satisfaction_rate() > 0.7);
        assert_eq!(run.outcome.per_slot[0].satisfaction_rate, 1.0);
        for slot in &run.outcome.per_slot[2..] {
            assert_eq!(
                slot.satisfaction_rate, 1.0,
                "slot {} should have adapted to the departure",
                slot.slot
            );
        }
        let snapshot = run.harness.telemetry().snapshot();
        let provider = snapshot.provider("svc/a").unwrap();
        assert_eq!(provider.departures, 1);
        assert_eq!(provider.rejoins, 1);
    }

    #[test]
    fn burst_load_with_admission_limits_sheds_deterministically() {
        let mut s = base();
        s.load.push(LoadPhase {
            from_slot: 1,
            to_slot: 3,
            multiplier: 2.0,
            burst: 8,
            classes: Vec::new(),
        });
        s.gateway.max_in_flight = Some(2);
        s.gateway.admission_queue = Some(2);
        let a = run_scenario(&s).unwrap().outcome;
        let b = run_scenario(&s).unwrap().outcome;
        assert_eq!(a, b, "burst replay must be deterministic");
        assert!(a.total_shed > 0, "tight admission limits must shed bursts");
        assert!(a.shed_rate() > 0.0);
    }

    #[test]
    fn classless_traffic_aggregates_as_interactive() {
        let outcome = run_scenario(&base()).unwrap().outcome;
        assert_eq!(outcome.classes.len(), 1);
        let interactive = outcome.class(QosClass::Interactive).unwrap();
        assert_eq!(interactive.requests, outcome.total_requests);
        assert_eq!(interactive.satisfaction_rate, 1.0);
        assert_eq!(outcome.shed_share(QosClass::Scavenger), 1.0, "vacuous");
        for slot in &outcome.per_slot {
            assert!(slot.class(QosClass::Interactive).is_some());
            assert!(slot.class(QosClass::Critical).is_none());
        }
    }

    #[test]
    fn mixed_class_bursts_shed_scavengers_and_spare_criticals() {
        // 16 requests/slot issued in bursts of 8 against a 2-in-flight /
        // 2-deep gate, each group carrying 2 Critical + 6 Scavenger: every
        // full group must shed exactly 4 Scavengers and zero Criticals,
        // regardless of thread interleaving.
        let mut s = base();
        s.requests_per_slot = 16;
        s.load.push(LoadPhase {
            from_slot: 1,
            to_slot: 3,
            multiplier: 1.0,
            burst: 8,
            classes: vec![
                QosClass::Critical,
                QosClass::Scavenger,
                QosClass::Scavenger,
                QosClass::Scavenger,
            ],
        });
        s.gateway.max_in_flight = Some(2);
        s.gateway.admission_queue = Some(2);
        let a = run_scenario(&s).unwrap().outcome;
        let b = run_scenario(&s).unwrap().outcome;
        assert_eq!(a, b, "mixed-class burst replay must be deterministic");

        let critical = a.class(QosClass::Critical).unwrap();
        assert_eq!(critical.shed, 0, "criticals preempt, they are never shed");
        assert_eq!(critical.satisfaction_rate, 1.0);
        let scavenger = a.class(QosClass::Scavenger).unwrap();
        // Two burst slots, two groups each, 4 Scavengers shed per group.
        assert_eq!(scavenger.shed, 16);
        assert_eq!(a.total_shed, 16);
        assert_eq!(a.shed_share(QosClass::Scavenger), 1.0);
        for slot in &a.per_slot[1..3] {
            assert_eq!(
                slot.class(QosClass::Critical).unwrap().satisfaction_rate,
                1.0
            );
            assert_eq!(slot.class(QosClass::Scavenger).unwrap().shed, 8);
        }
    }

    #[test]
    fn invalid_scenario_is_rejected_not_run() {
        let mut s = base();
        s.services.clear();
        assert!(run_scenario(&s).is_err());
    }
}
